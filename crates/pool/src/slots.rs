//! Worker-indexed storage: one resident value per pool worker.
//!
//! [`WorkerSlots`] replaces the `Mutex<Vec<T>>` "grab any free one"
//! pattern for expensive resident state (incremental evaluation
//! sessions, scratch arenas). Under that pattern every borrow funnels
//! through one lock and values migrate between threads, so per-thread
//! warm state (caches, resident netlists) keeps landing on a thread it
//! was not warmed for. Here each pool worker owns a dedicated slot
//! addressed by [`WorkerPool::current_worker`]; non-worker threads
//! (sequential callers, the dispatcher) share a spill stack, which for
//! the common one-sequential-searcher case degenerates to a single
//! always-warm resident value.
//!
//! Check-out moves the value out of its slot, so a panic while using it
//! simply drops it — the slot is left empty and the next checkout
//! starts fresh. Nothing is ever left half-mutated in a slot.

use crate::WorkerPool;
use std::sync::Mutex;

/// Per-worker resident storage with a spill stack for non-worker
/// threads. See the module docs for the design rationale.
pub struct WorkerSlots<T> {
    slots: Vec<Mutex<Option<T>>>,
    spill: Mutex<Vec<T>>,
}

impl<T> WorkerSlots<T> {
    /// Storage with `workers` dedicated slots. Workers with an index
    /// beyond `workers` (a pool larger than anticipated) fall back to
    /// the spill stack — correct, just not resident.
    pub fn new(workers: usize) -> Self {
        WorkerSlots {
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Number of dedicated worker slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn lock<'a, U>(m: &'a Mutex<U>) -> std::sync::MutexGuard<'a, U> {
        // Poisoning cannot leave a half-mutated value here (values are
        // moved out before use), so recover instead of propagating.
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current thread's dedicated slot, when it is a pool worker
    /// with an in-range index.
    fn own_slot(&self) -> Option<&Mutex<Option<T>>> {
        WorkerPool::current_worker().and_then(|w| self.slots.get(w))
    }

    /// Takes the resident value: a worker takes from its own slot, any
    /// other thread pops the spill stack. Returns `None` when nothing is
    /// resident — the caller creates a fresh value and later returns it
    /// via [`WorkerSlots::checkin`].
    pub fn checkout(&self) -> Option<T> {
        self.checkout_where(|_| false)
    }

    /// [`WorkerSlots::checkout`], but a non-worker thread first scans
    /// the spill stack for a value matching `prefer` (e.g. a session
    /// whose resident state matches a delta-evaluation hint) before
    /// falling back to the most recently checked-in one. A worker's own
    /// slot is always taken as-is: it holds that worker's warm state by
    /// construction.
    pub fn checkout_where(&self, prefer: impl Fn(&T) -> bool) -> Option<T> {
        if let Some(slot) = self.own_slot() {
            return Self::lock(slot).take();
        }
        let mut spill = Self::lock(&self.spill);
        match spill.iter().position(&prefer) {
            // `remove`, not `swap_remove`: the stack stays LIFO-ordered
            // (warmest last) for the next preference miss.
            Some(i) => Some(spill.remove(i)),
            None => spill.pop(),
        }
    }

    /// Returns a value: a worker parks it in its own slot (spilling only
    /// if the slot is somehow occupied), any other thread pushes it onto
    /// the spill stack.
    pub fn checkin(&self, value: T) {
        if let Some(slot) = self.own_slot() {
            let mut guard = Self::lock(slot);
            if guard.is_none() {
                *guard = Some(value);
                return;
            }
        }
        Self::lock(&self.spill).push(value);
    }
}

impl<T> std::fmt::Debug for WorkerSlots<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSlots")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn non_worker_threads_use_the_spill_stack() {
        let slots: WorkerSlots<u32> = WorkerSlots::new(4);
        assert_eq!(slots.capacity(), 4);
        assert!(slots.checkout().is_none());
        slots.checkin(7);
        slots.checkin(9);
        // LIFO: the most recently checked-in value is the warmest.
        assert_eq!(slots.checkout(), Some(9));
        assert_eq!(slots.checkout_where(|v| *v == 7), Some(7));
        assert!(slots.checkout().is_none());
    }

    #[test]
    fn checkout_where_prefers_matching_spill_values() {
        let slots: WorkerSlots<u32> = WorkerSlots::new(1);
        slots.checkin(1);
        slots.checkin(2);
        slots.checkin(3);
        assert_eq!(slots.checkout_where(|v| *v == 1), Some(1));
        assert_eq!(slots.checkout(), Some(3), "no match falls back to LIFO");
    }

    #[test]
    fn workers_keep_their_own_resident_value() {
        let pool = WorkerPool::new(4);
        let slots: WorkerSlots<usize> = WorkerSlots::new(4);
        // First epoch: every slot is empty; each worker checks in a
        // value tagged with its own id.
        pool.run(4, |t| {
            assert!(slots.checkout().is_none(), "task {t}: slot starts empty");
            let id = WorkerPool::current_worker().expect("task runs on a worker");
            assert_eq!(id, t % 4, "static assignment maps task to worker");
            slots.checkin(id);
        });
        // Second epoch: each worker gets its own value back.
        let matches = AtomicUsize::new(0);
        pool.run(4, |_| {
            let id = WorkerPool::current_worker().unwrap();
            let got = slots.checkout().expect("value is resident");
            if got == id {
                matches.fetch_add(1, Ordering::Relaxed);
            }
            slots.checkin(got);
        });
        assert_eq!(
            matches.load(Ordering::Relaxed),
            4,
            "residency is per-worker"
        );
        // The dispatcher never sees worker-slot values.
        assert!(slots.checkout().is_none());
    }

    #[test]
    fn out_of_range_workers_spill_instead_of_panicking() {
        let pool = WorkerPool::new(3);
        let slots: WorkerSlots<usize> = WorkerSlots::new(1);
        pool.run(3, |t| slots.checkin(t));
        // Worker 0 parked in its slot; workers 1 and 2 spilled.
        let mut spilled = Vec::new();
        while let Some(v) = slots.checkout() {
            spilled.push(v);
        }
        spilled.sort_unstable();
        assert_eq!(spilled, vec![1, 2]);
        let resident = AtomicUsize::new(usize::MAX);
        // Three tasks so the dispatch actually fans out (a single task
        // runs inline on the dispatcher); only worker 0's matters.
        pool.run(3, |t| {
            if t == 0 {
                if let Some(v) = slots.checkout() {
                    resident.store(v, Ordering::Relaxed);
                    slots.checkin(v);
                }
            }
        });
        assert_eq!(resident.load(Ordering::Relaxed), 0, "slot 0 kept its value");
    }

    #[test]
    fn dropped_checkouts_leave_the_slot_empty() {
        // A panic between checkout and checkin drops the value: the next
        // checkout sees an empty slot rather than stale state.
        let pool = WorkerPool::new(2);
        let slots: WorkerSlots<String> = WorkerSlots::new(2);
        pool.run(2, |_| slots.checkin("warm".to_string()));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, |_| {
                let _v = slots.checkout().expect("resident");
                panic!("evaluation failed");
            });
        }));
        assert!(r.is_err());
        let refreshed = AtomicUsize::new(0);
        pool.run(2, |_| {
            if slots.checkout().is_none() {
                refreshed.fetch_add(1, Ordering::Relaxed);
            }
            slots.checkin("fresh".to_string());
        });
        assert_eq!(refreshed.load(Ordering::Relaxed), 2);
    }
}
