//! A reusable worker pool with deterministic chunked work assignment.
//!
//! Every hot path in the workspace that previously spawned fresh
//! `std::thread::scope` threads per call (GEMM row blocks, data-parallel
//! gradient accumulation, batched evaluation, campaign grids) dispatches
//! onto one set of long-lived workers instead. The pool's contract is
//! the determinism contract of DESIGN.md Contract 9:
//!
//! * **Static assignment** ([`WorkerPool::run`], [`WorkerPool::scatter`]):
//!   task `t` always runs on worker `t % threads`, and each worker
//!   processes its tasks in ascending order. Which OS thread executes a
//!   task never influences results — tasks write disjoint outputs — so
//!   outputs are bit-identical for every pool size, including the
//!   inline (single-threaded) path.
//! * **Dynamic assignment** ([`WorkerPool::run_dynamic`]): workers drain
//!   an atomic counter. Only for coarse-grained independent tasks whose
//!   results are written to per-task slots and do not depend on
//!   execution order (campaign tasks, multi-seed panels).
//!
//! Nested dispatch is safe: a task that itself calls into the pool runs
//! its sub-tasks inline on the current worker (ascending order, same
//! results), so layered parallelism (training batch → GEMM) can never
//! deadlock the fixed-size pool. The tradeoff is that nested levels do
//! not fan out: when fewer coarse tasks than workers are in flight, the
//! idle workers stay idle (the previous scoped-thread design
//! oversubscribed the machine instead). Size coarse-grained dispatches
//! to at least the worker count to saturate the pool.
//!
//! **Panic isolation** ([`WorkerPool::run_isolated`],
//! [`WorkerPool::run_dynamic_isolated`]): the supervision entry points.
//! Each task runs under its own `catch_unwind`, so one panicking task
//! cannot abort its worker's remaining tasks or unwind into the
//! dispatcher; the call returns a per-task [`TaskOutcome`] instead of
//! re-throwing. Surviving tasks keep the exact assignment and results
//! they would have had with no panic in the batch — the pool-level half
//! of DESIGN.md Contract 13.

#![deny(missing_docs)]

mod slots;

pub use slots::WorkerSlots;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// One dispatch epoch: a type-erased borrow of the caller's closure plus
/// the task count.
#[derive(Clone, Copy)]
struct JobMsg {
    /// Erased `&(dyn Fn(usize) + Sync)` owned by the dispatching call.
    ///
    /// Validity: the dispatcher blocks until every worker has finished
    /// the epoch, so the borrow outlives every dereference.
    func: *const (dyn Fn(usize) + Sync),
    tasks: usize,
}

// SAFETY: see `JobMsg::func` — the pointee is kept alive (and only
// shared, `Sync`) for the whole epoch.
unsafe impl Send for JobMsg {}

struct State {
    epoch: u64,
    job: Option<JobMsg>,
    active: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl Shared {
    /// Locks the state, recovering from a poisoned mutex (a worker panic
    /// is already captured separately and re-thrown at the dispatcher).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

thread_local! {
    /// The worker index of the current thread, when it is a pool worker
    /// (of any pool — indices are per-pool, 0-based, stable for the
    /// thread's lifetime).
    static WORKER_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// A fixed set of long-lived worker threads executing borrowed closures
/// with deterministic task assignment. See the crate docs for the
/// determinism contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Serializes dispatches from distinct (non-worker) caller threads.
    dispatch: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    /// With one thread no OS threads are spawned at all: every dispatch
    /// runs inline on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("cv-pool-{id}"))
                        .spawn(move || worker_loop(&shared, id, threads))
                        .expect("worker spawn")
                })
                .collect()
        };
        WorkerPool {
            shared,
            threads,
            dispatch: Mutex::new(()),
            handles,
        }
    }

    /// The process-wide shared pool, sized by `CV_POOL_THREADS` when set
    /// (clamped to 1..=256) and `std::thread::available_parallelism()`
    /// otherwise. Built lazily on first use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::env::var("CV_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|n| n.clamp(1, 256))
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                });
            WorkerPool::new(threads)
        })
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the current thread is one of this process's pool workers
    /// (any pool — a nested dispatch always runs inline).
    pub fn on_worker_thread() -> bool {
        Self::current_worker().is_some()
    }

    /// The current thread's worker index, when it is a pool worker.
    ///
    /// Indices are 0-based and stable for the thread's lifetime, which
    /// makes them usable as slots into worker-indexed storage (see
    /// [`WorkerSlots`]): under static assignment, task `t` always sees
    /// the same index `t % threads`, so per-worker resident state stays
    /// warm across dispatches. Non-worker threads (including the
    /// dispatcher, and every thread of a 1-thread pool, which runs
    /// inline) return `None`.
    pub fn current_worker() -> Option<usize> {
        WORKER_ID.with(std::cell::Cell::get)
    }

    /// Runs `f(t)` for every `t in 0..tasks` with static assignment:
    /// task `t` on worker `t % threads`, ascending per worker. Blocks
    /// until all tasks finish; a panicking task is re-thrown here after
    /// the epoch drains. Tasks must write disjoint outputs (keyed by
    /// `t`) for the determinism contract to hold.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 || Self::on_worker_thread() {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let _dispatch = self
            .dispatch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erasing the borrow's lifetime is sound because this
        // call does not return until `active == 0`, i.e. until no worker
        // can dereference the pointer again.
        let func: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        };
        let mut st = self.shared.lock();
        st.job = Some(JobMsg { func, tasks });
        st.epoch = st.epoch.wrapping_add(1);
        st.active = self.handles.len();
        self.shared.work_cv.notify_all();
        while st.active != 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.job = None;
        let panic = st.panic.take();
        drop(st);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Splits `data` into contiguous chunks of `chunk_len` (the last one
    /// shorter, mirroring `slice::chunks_mut`) and runs
    /// `f(chunk_index, chunk)` across the workers with static
    /// assignment. The lock-free counterpart of collecting per-item
    /// mutexes: each chunk is written by exactly one task.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn scatter<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) {
        assert!(chunk_len > 0, "scatter chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let base = data.as_mut_ptr() as usize;
        let len = data.len();
        self.run(n_chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `c` covers `start..end`; chunks are disjoint
            // and each chunk index is executed exactly once, so no two
            // tasks alias. `base` round-trips through `usize` only to
            // keep the closure `Sync`.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            f(c, chunk);
        });
    }

    /// Runs `f(t)` for every `t in 0..tasks` with static assignment and
    /// **per-task panic isolation**: each task executes under its own
    /// `catch_unwind`, and the call returns one [`TaskOutcome`] per task
    /// instead of re-throwing. A panicking task never derails the other
    /// tasks of the batch — its worker continues with its remaining
    /// tasks, assignment (`t % threads`, ascending per worker) is
    /// unchanged for every survivor, and the pool stays fully usable.
    ///
    /// The closure may hold state across the unwind boundary
    /// (`AssertUnwindSafe`): callers own the judgement that a panicked
    /// task's partial effects are discarded or isolated per task slot —
    /// the supervision layers above (e.g. `campaignd`) discard the
    /// poisoned per-task state and rebuild it from durable storage.
    pub fn run_isolated<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) -> Vec<TaskOutcome> {
        let slots: Vec<std::sync::Mutex<Option<String>>> =
            (0..tasks).map(|_| std::sync::Mutex::new(None)).collect();
        self.run(tasks, |t| {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(t))) {
                let msg = panic_message(p);
                *slots[t]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(msg);
            }
        });
        collect_outcomes(slots)
    }

    /// The panic-isolated counterpart of [`WorkerPool::run_dynamic`]:
    /// dynamic assignment across at most `max_workers` workers, each
    /// task under its own `catch_unwind`, per-task [`TaskOutcome`]s
    /// returned instead of re-thrown. See [`WorkerPool::run_isolated`]
    /// for the isolation contract.
    pub fn run_dynamic_isolated<F: Fn(usize) + Sync>(
        &self,
        tasks: usize,
        max_workers: usize,
        f: F,
    ) -> Vec<TaskOutcome> {
        let slots: Vec<std::sync::Mutex<Option<String>>> =
            (0..tasks).map(|_| std::sync::Mutex::new(None)).collect();
        self.run_dynamic(tasks, max_workers, |t| {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(t))) {
                let msg = panic_message(p);
                *slots[t]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(msg);
            }
        });
        collect_outcomes(slots)
    }

    /// Runs `f(t)` for every `t in 0..tasks` with **dynamic** (atomic
    /// work-stealing) assignment across at most `max_workers` workers.
    /// Use only when results are written to per-task slots and do not
    /// depend on which worker ran which task — coarse independent units
    /// such as campaign tasks.
    pub fn run_dynamic<F: Fn(usize) + Sync>(&self, tasks: usize, max_workers: usize, f: F) {
        if tasks == 0 {
            return;
        }
        let width = max_workers.clamp(1, tasks);
        if self.handles.is_empty() || width == 1 || tasks == 1 || Self::on_worker_thread() {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(self.threads, |w| {
            if w >= width {
                return;
            }
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                f(i);
            }
        });
    }
}

/// The per-task result of an isolated dispatch
/// ([`WorkerPool::run_isolated`] / [`WorkerPool::run_dynamic_isolated`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The task ran to completion.
    Completed,
    /// The task panicked; the payload is rendered to a string (the
    /// panic message, or a placeholder for non-string payloads).
    Panicked(String),
}

impl TaskOutcome {
    /// Whether this task panicked.
    pub fn panicked(&self) -> bool {
        matches!(self, TaskOutcome::Panicked(_))
    }
}

/// Renders a caught panic payload as a message string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

fn collect_outcomes(slots: Vec<std::sync::Mutex<Option<String>>>) -> Vec<TaskOutcome> {
    slots
        .into_iter()
        .map(|s| {
            match s
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                None => TaskOutcome::Completed,
                Some(msg) => TaskOutcome::Panicked(msg),
            }
        })
        .collect()
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize, threads: usize) {
    WORKER_ID.with(|f| f.set(Some(id)));
    let mut seen = 0u64;
    loop {
        let msg = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("job present while epoch is live");
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatcher keeps the closure alive until this
        // worker (and all others) decrement `active` below.
        let func = unsafe { &*msg.func };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut t = id;
            while t < msg.tasks {
                func(t);
                t += threads;
            }
        }));
        let mut st = shared.lock();
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_executes_every_task_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scatter_chunks_match_chunks_mut_semantics() {
        for threads in [1, 2, 5] {
            let pool = WorkerPool::new(threads);
            let mut data = vec![0usize; 23];
            pool.scatter(&mut data, 4, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = c * 100 + i;
                }
            });
            let mut expect = vec![0usize; 23];
            for (c, chunk) in expect.chunks_mut(4).enumerate() {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = c * 100 + i;
                }
            }
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn results_are_independent_of_pool_size() {
        // The same deterministic per-task computation lands in the same
        // slot whatever the worker count.
        let reference: Vec<u64> = (0..101u64).map(|t| t.wrapping_mul(0x9E3779B9)).collect();
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0u64; 101];
            pool.scatter(&mut out, 9, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    let t = (c * 9 + i) as u64;
                    *v = t.wrapping_mul(0x9E3779B9);
                }
            });
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        pool.run(4, |outer| {
            // Nested call on a worker thread: must run inline.
            WorkerPool::global().run(8, |inner| {
                total.fetch_add((outer * 8 + inner) as u64 + 1, Ordering::Relaxed);
            });
        });
        let expect: u64 = (0..32u64).map(|x| x + 1).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn dynamic_assignment_covers_all_tasks() {
        for (threads, width) in [(1, 4), (4, 1), (4, 2), (3, 99)] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..29).map(|_| AtomicUsize::new(0)).collect();
            pool.run_dynamic(hits.len(), width, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads} width={width}"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_dispatcher() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |t| {
                if t == 5 {
                    panic!("task five exploded");
                }
            });
        }));
        let msg = *r
            .expect_err("panic must propagate")
            .downcast::<&str>()
            .unwrap();
        assert_eq!(msg, "task five exploded");
        // The pool stays usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run(3, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_dispatch_is_a_no_op() {
        let pool = WorkerPool::new(3);
        pool.run(0, |_| panic!("must not run"));
        let mut empty: [u8; 0] = [];
        pool.scatter(&mut empty, 5, |_, _| panic!("must not run"));
        pool.run_dynamic(0, 3, |_| panic!("must not run"));
        assert!(pool.run_isolated(0, |_| panic!("must not run")).is_empty());
        assert!(pool
            .run_dynamic_isolated(0, 3, |_| panic!("must not run"))
            .is_empty());
    }

    #[test]
    fn isolated_run_contains_panics_and_reports_per_task_outcomes() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
            let outcomes = pool.run_isolated(hits.len(), |t| {
                if t == 3 || t == 7 {
                    panic!("task {t} exploded");
                }
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(outcomes.len(), 16, "threads={threads}");
            for (t, outcome) in outcomes.iter().enumerate() {
                if t == 3 || t == 7 {
                    assert_eq!(
                        *outcome,
                        TaskOutcome::Panicked(format!("task {t} exploded")),
                        "threads={threads}"
                    );
                    assert_eq!(hits[t].load(Ordering::Relaxed), 0);
                } else {
                    assert_eq!(*outcome, TaskOutcome::Completed, "threads={threads} t={t}");
                    assert_eq!(
                        hits[t].load(Ordering::Relaxed),
                        1,
                        "threads={threads} t={t}: a panic elsewhere must not \
                         derail this task"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_run_preserves_static_assignment_for_survivors() {
        // Worker 3 of a 4-thread pool hosts tasks 3, 7, 11; task 3
        // panics, yet 7 and 11 still run — on the same worker the
        // no-panic schedule would give them.
        let pool = WorkerPool::new(4);
        let workers: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let outcomes = pool.run_isolated(workers.len(), |t| {
            let w = WorkerPool::current_worker().expect("on a pool worker");
            workers[t].store(w, Ordering::Relaxed);
            if t == 3 {
                panic!("first task of worker 3 exploded");
            }
        });
        assert!(outcomes[3].panicked());
        for (t, worker) in workers.iter().enumerate() {
            assert_eq!(
                worker.load(Ordering::Relaxed),
                t % 4,
                "task {t} must keep its deterministic worker"
            );
        }
    }

    #[test]
    fn isolated_dynamic_covers_all_tasks_despite_panics() {
        for (threads, width) in [(1, 4), (4, 2), (3, 99)] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..29).map(|_| AtomicUsize::new(0)).collect();
            let outcomes = pool.run_dynamic_isolated(hits.len(), width, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
                if t % 5 == 0 {
                    panic!("boom {t}");
                }
            });
            for (t, outcome) in outcomes.iter().enumerate() {
                assert_eq!(
                    hits[t].load(Ordering::Relaxed),
                    1,
                    "threads={threads} width={width} t={t}"
                );
                assert_eq!(
                    outcome.panicked(),
                    t % 5 == 0,
                    "threads={threads} width={width} t={t}"
                );
            }
        }
    }

    #[test]
    fn pool_stays_usable_after_isolated_panics() {
        let pool = WorkerPool::new(2);
        let outcomes = pool.run_isolated(4, |_| panic!("all of them"));
        assert!(outcomes.iter().all(TaskOutcome::panicked));
        // Both the isolated and the re-throwing entry points still work.
        let count = AtomicUsize::new(0);
        pool.run(5, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
        let outcomes = pool.run_dynamic_isolated(3, 2, |_| {});
        assert!(outcomes.iter().all(|o| *o == TaskOutcome::Completed));
    }

    #[test]
    fn isolated_panic_payloads_render_to_messages() {
        let pool = WorkerPool::new(1);
        let outcomes = pool.run_isolated(3, |t| match t {
            0 => panic!("{}", format!("owned string {t}")),
            1 => panic!("static str"),
            _ => std::panic::panic_any(42usize),
        });
        assert_eq!(
            outcomes,
            vec![
                TaskOutcome::Panicked("owned string 0".to_string()),
                TaskOutcome::Panicked("static str".to_string()),
                TaskOutcome::Panicked("non-string panic payload".to_string()),
            ]
        );
    }
}
