//! Equivalence properties of the sharded-cache parallel batch path
//! (DESIGN.md §8): `evaluate_batch` must be observationally identical to
//! the sequential loop — output order, simulation counts, and archive
//! observation stamps byte-for-byte — at every thread count, for
//! duplicate-heavy and all-cache-hit batches alike. Plus a regression
//! test that per-worker resident sessions survive a panicking
//! evaluation.

use cv_cells::nangate45_like;
use cv_pool::WorkerPool;
use cv_prefix::{bitvec, topologies, CircuitKind, PrefixGrid};
use cv_synth::{CachedEvaluator, CostParams, EvalRecord, Objective, ParetoArchive, SynthesisFlow};
use proptest::prelude::*;

const W: usize = 10;

fn evaluator() -> CachedEvaluator {
    CachedEvaluator::new(Objective::new(
        SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, W),
        CostParams::new(0.66),
    ))
}

fn arb_grid() -> impl Strategy<Value = PrefixGrid> {
    let free = (W - 1) * (W - 2) / 2;
    prop::collection::vec(any::<bool>(), free)
        .prop_map(|bits| bitvec::decode_bits(W, &bits).expect("length matches"))
}

/// A batch of up to 6 distinct designs with up to 6 duplicates spliced
/// in at arbitrary positions — the duplicate-heavy shape that stresses
/// first-occurrence accounting.
fn arb_batch() -> impl Strategy<Value = Vec<PrefixGrid>> {
    (
        prop::collection::vec(arb_grid(), 1..6),
        prop::collection::vec((0usize..64, 0usize..64), 0..6),
    )
        .prop_map(|(mut batch, dups)| {
            for (src, pos) in dups {
                let dup = batch[src % batch.len()].clone();
                batch.insert(pos % (batch.len() + 1), dup);
            }
            batch
        })
}

/// Thread counts exercised per case: serial, small, odd, and far beyond
/// both the batch size and any real pool.
const THREADS: [usize; 4] = [1, 2, 5, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batch_is_byte_identical_to_sequential(batch in arb_batch()) {
        let seq_ev = evaluator();
        let seq_arch = ParetoArchive::new().with_log().into_shared();
        seq_ev.attach_archive(seq_arch.clone());
        let seq: Vec<EvalRecord> = batch.iter().map(|g| seq_ev.evaluate(g)).collect();
        let seq_obs = seq_arch.lock().observations().to_vec();
        let seq_bytes = seq_arch.lock().to_ckpt_bytes();
        for threads in THREADS {
            let ev = evaluator();
            let arch = ParetoArchive::new().with_log().into_shared();
            ev.attach_archive(arch.clone());
            let out = ev.evaluate_batch(&batch, threads);
            prop_assert_eq!(&out, &seq, "threads={}: output order", threads);
            prop_assert_eq!(
                ev.counter().count(),
                seq_ev.counter().count(),
                "threads={}: simulation count",
                threads
            );
            let obs = arch.lock().observations().to_vec();
            prop_assert_eq!(obs, seq_obs.clone(), "threads={}: observation stamps", threads);
            let bytes = arch.lock().to_ckpt_bytes();
            prop_assert_eq!(bytes, seq_bytes.clone(), "threads={}: archive bytes", threads);
        }
    }

    #[test]
    fn all_cache_hit_batches_stay_silent(batch in arb_batch()) {
        // Once every design is cached, a batch at any thread count must
        // cost zero simulations and leave the archive untouched.
        let ev = evaluator();
        let arch = ParetoArchive::new().with_log().into_shared();
        ev.attach_archive(arch.clone());
        let warm: Vec<EvalRecord> = batch.iter().map(|g| ev.evaluate(g)).collect();
        let sims = ev.counter().count();
        let bytes = arch.lock().to_ckpt_bytes();
        for threads in THREADS {
            let out = ev.evaluate_batch(&batch, threads);
            prop_assert_eq!(&out, &warm, "threads={}: cached results", threads);
            prop_assert_eq!(ev.counter().count(), sims, "threads={}: no new sims", threads);
            let after = arch.lock().to_ckpt_bytes();
            prop_assert_eq!(after, bytes.clone(), "threads={}: archive untouched", threads);
        }
    }
}

/// Per-worker resident sessions must survive a panicking evaluation:
/// the panic unwinds out of the batch (re-thrown by the pool), the
/// poisoned design's key is un-claimed, nothing is counted for it, and
/// the same evaluator/pool pair keeps producing correct results.
#[test]
fn batch_survives_a_panicking_evaluation() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let pool = WorkerPool::new(4);
    let ev = evaluator();
    let good: Vec<PrefixGrid> = vec![
        topologies::sklansky(W),
        topologies::brent_kung(W),
        topologies::ripple(W),
        topologies::kogge_stone(W),
    ];
    // A wrong-width design panics inside the synthesis flow.
    let mut poisoned = good.clone();
    poisoned.insert(2, topologies::sklansky(W + 4));
    for _ in 0..2 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            ev.evaluate_batch_on(&pool, &poisoned, 4)
        }));
        assert!(r.is_err(), "width mismatch must propagate out of the batch");
    }
    // Reference results from an untouched evaluator.
    let reference = evaluator();
    let expected: Vec<EvalRecord> = good.iter().map(|g| reference.evaluate(g)).collect();
    let after = ev.evaluate_batch_on(&pool, &good, 4);
    assert_eq!(after, expected, "evaluator unusable after a batch panic");
    assert_eq!(
        ev.counter().count(),
        good.len(),
        "only successful simulations may count (failed ones must not)"
    );
    // And the sequential entry points still work on the same instance.
    assert_eq!(ev.evaluate(&good[0]), expected[0]);
}
