//! Property-based tests of the synthesis flow: it must be total, finite,
//! deterministic, and respect its structural contracts on arbitrary
//! (legalized) grids across all circuit kinds.

use cv_cells::nangate45_like;
use cv_prefix::{bitvec, CircuitKind, PrefixGrid};
use cv_synth::{CostParams, SynthesisFlow};
use proptest::prelude::*;

fn arb_grid(n: usize) -> impl Strategy<Value = PrefixGrid> {
    let free = (n - 1) * (n - 2) / 2;
    prop::collection::vec(any::<bool>(), free)
        .prop_map(move |bits| bitvec::decode_bits(n, &bits).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_is_total_and_finite(grid in arb_grid(12)) {
        for kind in [CircuitKind::Adder, CircuitKind::GrayToBinary, CircuitKind::LeadingZero] {
            let flow = SynthesisFlow::new(nangate45_like(), kind, 12);
            let ppa = flow.synthesize(&grid);
            prop_assert!(ppa.area_um2.is_finite() && ppa.area_um2 > 0.0, "{kind}");
            prop_assert!(ppa.delay_ns.is_finite() && ppa.delay_ns > 0.0, "{kind}");
            prop_assert!(ppa.gate_count > 0, "{kind}");
        }
    }

    #[test]
    fn synthesis_is_deterministic(grid in arb_grid(10)) {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 10);
        prop_assert_eq!(flow.synthesize(&grid), flow.synthesize(&grid));
    }

    #[test]
    fn cost_is_affine_in_omega_for_fixed_report(grid in arb_grid(10), w in 0.0f64..1.0) {
        // For a fixed PPA report, the cost function must interpolate
        // linearly between its area-only and delay-only extremes.
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 10);
        let ppa = flow.synthesize(&grid);
        let c0 = CostParams::new(0.0).cost(&ppa);
        let c1 = CostParams::new(1.0).cost(&ppa);
        let cw = CostParams::new(w).cost(&ppa);
        prop_assert!((cw - (c0 * (1.0 - w) + c1 * w)).abs() < 1e-9);
    }

    #[test]
    fn adding_nodes_never_shrinks_gate_count(grid in arb_grid(10)) {
        // A legal grid plus extra cells maps to at least as many gates.
        let legal = grid.legalized();
        let mut denser = legal.clone();
        for (i, j) in PrefixGrid::free_cells(10) {
            let _ = denser.set(i, j, true);
        }
        denser.legalize();
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::GrayToBinary, 10);
        let a = flow.synthesize(&legal);
        let b = flow.synthesize(&denser);
        prop_assert!(b.gate_count >= a.gate_count);
    }
}
