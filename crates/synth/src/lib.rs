//! Physical-synthesis simulator and the circuit cost function.
//!
//! This crate stands in for the paper's OpenPhySyn/OpenROAD flow: it
//! takes a prefix grid, maps it (`cv-netlist`), repairs high-fanout nets
//! with buffers, greedily sizes gates along the critical path, runs
//! timing (`cv-sta`), and reports post-synthesis PPA. On top of that it
//! defines the paper's scalar cost
//! `f(x) = ω·10·delay_ns + (1−ω)·area_um2/100` and provides cached and
//! parallel evaluators with simulation-count accounting (the "budget" all
//! the search algorithms are compared on).
//!
//! ```
//! use cv_synth::{SynthesisFlow, CostParams, Objective};
//! use cv_prefix::{topologies, CircuitKind};
//! use cv_cells::nangate45_like;
//!
//! let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 32);
//! let ppa = flow.synthesize(&topologies::sklansky(32));
//! let cost = CostParams::new(0.66).cost(&ppa);
//! assert!(cost > 0.0);
//! ```

#![deny(missing_docs)]

mod buffering;
pub mod ckpt;
mod commercial;
mod cost;
mod evaluator;
mod flow;
mod pareto;
mod session;
mod sizing;
mod tracking;

pub use buffering::buffer_high_fanout;
pub use commercial::CommercialTool;
pub use cost::{CostParams, PpaReport};
pub use evaluator::{CachedEvaluator, EvalRecord, EvaluatorState, Objective, SimCounter};
pub use flow::{SynthesisConfig, SynthesisFlow};
pub use pareto::{
    crowding_distance, dominates, dominates_xy, non_dominated_sort, Observation, ParetoArchive,
    ParetoPoint, SharedArchive,
};
pub use session::EvalSession;
pub use sizing::{size_gates, size_gates_incremental};
pub use tracking::{
    eval_and_track, eval_and_track_from, eval_record_and_track, eval_record_and_track_from,
    BestTracker, SearchOutcome,
};
