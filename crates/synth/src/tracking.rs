//! Best-so-far tracking against the simulation budget — shared by every
//! search algorithm (CircuitVAE, BO, GA, RL, SA, random search).

use crate::evaluator::CachedEvaluator;
use cv_prefix::PrefixGrid;
use serde::{Deserialize, Serialize};

/// Best-so-far curve tracking against the simulation budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestTracker {
    points: Vec<(usize, f64)>,
    best_cost: f64,
    best_grid: Option<PrefixGrid>,
    evaluated: Vec<(PrefixGrid, f64)>,
    keep_evaluated: bool,
}

impl BestTracker {
    /// Creates a tracker. When `keep_evaluated` is set, every observed
    /// `(grid, cost)` pair is retained (used to seed CircuitVAE datasets
    /// from GA generations, as in the paper).
    pub fn new(keep_evaluated: bool) -> Self {
        BestTracker {
            points: Vec::new(),
            best_cost: f64::INFINITY,
            best_grid: None,
            evaluated: Vec::new(),
            keep_evaluated,
        }
    }

    /// Records an evaluation outcome at simulation count `sims`.
    pub fn observe(&mut self, sims: usize, grid: &PrefixGrid, cost: f64) {
        if self.keep_evaluated {
            self.evaluated.push((grid.clone(), cost));
        }
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_grid = Some(grid.clone());
            self.points.push((sims, cost));
        }
    }

    /// Closes the curve at the final simulation count.
    pub fn finish(&mut self, sims: usize) {
        if self.best_cost.is_finite() {
            self.points.push((sims, self.best_cost));
        }
    }

    /// Converts into a [`SearchOutcome`].
    pub fn into_outcome(self) -> SearchOutcome {
        SearchOutcome {
            history: self.points,
            best_cost: self.best_cost,
            best_grid: self.best_grid,
            evaluated: self.evaluated,
        }
    }

    /// Current best cost.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }
}

/// The result of one search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// `(simulations, best_cost_so_far)` breakpoints (stepwise curve).
    pub history: Vec<(usize, f64)>,
    /// Best cost found.
    pub best_cost: f64,
    /// Best design found.
    pub best_grid: Option<PrefixGrid>,
    /// Every evaluated pair, if tracking was enabled.
    pub evaluated: Vec<(PrefixGrid, f64)>,
}

impl SearchOutcome {
    /// Best cost achieved within the first `budget` simulations,
    /// `f64::INFINITY` if none.
    pub fn best_within(&self, budget: usize) -> f64 {
        self.history
            .iter()
            .take_while(|(s, _)| *s <= budget)
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest simulation count at which the curve reached a cost
    /// `<= target`, if ever — the quantity behind the paper's
    /// "VAE speedup" column in Table 1.
    pub fn sims_to_reach(&self, target: f64) -> Option<usize> {
        self.history
            .iter()
            .find(|(_, c)| *c <= target)
            .map(|(s, _)| *s)
    }
}

/// Convenience wrapper: evaluate, observe, and return the cost.
pub fn eval_and_track(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    grid: &PrefixGrid,
) -> f64 {
    let rec = evaluator.evaluate(grid);
    tracker.observe(evaluator.counter().count(), grid, rec.cost);
    rec.cost
}

/// Like [`eval_and_track`], but tells the evaluator which design `grid`
/// was derived from so the incremental evaluation path can patch that
/// design's resident netlist/timing state instead of rebuilding
/// (mutation-heavy searchers — SA, GA, REINFORCE — call this).
pub fn eval_and_track_from(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    prev: &PrefixGrid,
    grid: &PrefixGrid,
) -> f64 {
    let rec = evaluator.evaluate_from(prev, grid);
    tracker.observe(evaluator.counter().count(), grid, rec.cost);
    rec.cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_builds_monotone_curve() {
        let mut t = BestTracker::new(true);
        let g = PrefixGrid::ripple(8);
        t.observe(1, &g, 5.0);
        t.observe(2, &g, 6.0); // worse, no breakpoint
        t.observe(3, &g, 4.0);
        t.finish(10);
        let out = t.into_outcome();
        assert_eq!(out.history, vec![(1, 5.0), (3, 4.0), (10, 4.0)]);
        assert_eq!(out.best_cost, 4.0);
        assert_eq!(out.evaluated.len(), 3);
    }

    #[test]
    fn best_within_and_reach() {
        let out = SearchOutcome {
            history: vec![(5, 5.0), (20, 3.0), (50, 3.0)],
            best_cost: 3.0,
            best_grid: None,
            evaluated: vec![],
        };
        assert_eq!(out.best_within(4), f64::INFINITY);
        assert_eq!(out.best_within(10), 5.0);
        assert_eq!(out.best_within(100), 3.0);
        assert_eq!(out.sims_to_reach(3.5), Some(20));
        assert_eq!(out.sims_to_reach(2.0), None);
    }
}
