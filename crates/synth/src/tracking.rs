//! Best-so-far tracking against the simulation budget — shared by every
//! search algorithm (CircuitVAE, BO, GA, RL, SA, random search).

use crate::ckpt::{CkptError, Dec, Enc};
use crate::evaluator::{CachedEvaluator, EvalRecord};
use cv_prefix::PrefixGrid;
use serde::{Deserialize, Serialize};

/// Best-so-far curve tracking against the simulation budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestTracker {
    points: Vec<(usize, f64)>,
    best_cost: f64,
    best_grid: Option<PrefixGrid>,
    evaluated: Vec<(PrefixGrid, f64)>,
    keep_evaluated: bool,
}

impl BestTracker {
    /// Creates a tracker. When `keep_evaluated` is set, every observed
    /// `(grid, cost)` pair is retained (used to seed CircuitVAE datasets
    /// from GA generations, as in the paper).
    pub fn new(keep_evaluated: bool) -> Self {
        BestTracker {
            points: Vec::new(),
            best_cost: f64::INFINITY,
            best_grid: None,
            evaluated: Vec::new(),
            keep_evaluated,
        }
    }

    /// Records an evaluation outcome at simulation count `sims`.
    pub fn observe(&mut self, sims: usize, grid: &PrefixGrid, cost: f64) {
        if self.keep_evaluated {
            self.evaluated.push((grid.clone(), cost));
        }
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_grid = Some(grid.clone());
            self.points.push((sims, cost));
        }
    }

    /// Closes the curve at the final simulation count.
    pub fn finish(&mut self, sims: usize) {
        if self.best_cost.is_finite() {
            self.points.push((sims, self.best_cost));
        }
    }

    /// Converts into a [`SearchOutcome`].
    pub fn into_outcome(self) -> SearchOutcome {
        SearchOutcome {
            history: self.points,
            best_cost: self.best_cost,
            best_grid: self.best_grid,
            evaluated: self.evaluated,
        }
    }

    /// Current best cost.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Current best design, if any observation has been made. Searchers
    /// that restart from the best-so-far (SA, sweep warm starts) read it
    /// from here instead of keeping their own copy.
    pub fn best_grid(&self) -> Option<&PrefixGrid> {
        self.best_grid.as_ref()
    }

    /// Every observed `(grid, cost)` pair so far (empty unless the
    /// tracker was created with `keep_evaluated`).
    pub fn evaluated(&self) -> &[(PrefixGrid, f64)] {
        &self.evaluated
    }

    /// Writes the full tracker state into a checkpoint encoder.
    pub fn write_ckpt(&self, enc: &mut Enc) {
        enc.usize(self.points.len());
        for &(s, c) in &self.points {
            enc.usize(s);
            enc.f64(c);
        }
        enc.f64(self.best_cost);
        enc.opt_grid(self.best_grid.as_ref());
        enc.usize(self.evaluated.len());
        for (g, c) in &self.evaluated {
            enc.grid(g);
            enc.f64(*c);
        }
        enc.bool(self.keep_evaluated);
    }

    /// Reads a tracker written by [`BestTracker::write_ckpt`].
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] on malformed input.
    pub fn read_ckpt(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let n = dec.seq_len()?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push((dec.usize()?, dec.f64()?));
        }
        let best_cost = dec.f64()?;
        let best_grid = dec.opt_grid()?;
        let n = dec.seq_len()?;
        let mut evaluated = Vec::with_capacity(n);
        for _ in 0..n {
            evaluated.push((dec.grid()?, dec.f64()?));
        }
        let keep_evaluated = dec.bool()?;
        Ok(BestTracker {
            points,
            best_cost,
            best_grid,
            evaluated,
            keep_evaluated,
        })
    }
}

/// The result of one search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// `(simulations, best_cost_so_far)` breakpoints (stepwise curve).
    pub history: Vec<(usize, f64)>,
    /// Best cost found.
    pub best_cost: f64,
    /// Best design found.
    pub best_grid: Option<PrefixGrid>,
    /// Every evaluated pair, if tracking was enabled.
    pub evaluated: Vec<(PrefixGrid, f64)>,
}

impl SearchOutcome {
    /// Best cost achieved within the first `budget` simulations,
    /// `f64::INFINITY` if none.
    pub fn best_within(&self, budget: usize) -> f64 {
        self.history
            .iter()
            .take_while(|(s, _)| *s <= budget)
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest simulation count at which the curve reached a cost
    /// `<= target`, if ever — the quantity behind the paper's
    /// "VAE speedup" column in Table 1.
    pub fn sims_to_reach(&self, target: f64) -> Option<usize> {
        self.history
            .iter()
            .find(|(_, c)| *c <= target)
            .map(|(s, _)| *s)
    }

    /// Merges an initialization phase into this outcome: the curve is
    /// shifted right by `init_sims` (simulations already charged before
    /// the search proper started), prefixed with the initialization's
    /// own best breakpoint, and the overall best is reconciled. Shared
    /// by every two-phase method (GA-seeded VAE/BO, sweep warm starts)
    /// so the merge arithmetic lives in exactly one place.
    #[must_use]
    pub fn with_init_prefix(
        self,
        init_sims: usize,
        init_best: f64,
        init_best_grid: Option<PrefixGrid>,
    ) -> SearchOutcome {
        let mut history = Vec::with_capacity(self.history.len() + 1);
        if init_best.is_finite() {
            history.push((init_sims, init_best));
        }
        for (s, c) in self.history {
            history.push((s + init_sims, c));
        }
        let (best_cost, best_grid) = if self.best_cost <= init_best {
            (self.best_cost, self.best_grid)
        } else {
            (init_best, init_best_grid)
        };
        SearchOutcome {
            history,
            best_cost,
            best_grid,
            evaluated: self.evaluated,
        }
    }

    /// Writes the outcome into a checkpoint encoder.
    pub fn write_ckpt(&self, enc: &mut Enc) {
        enc.usize(self.history.len());
        for &(s, c) in &self.history {
            enc.usize(s);
            enc.f64(c);
        }
        enc.f64(self.best_cost);
        enc.opt_grid(self.best_grid.as_ref());
        enc.usize(self.evaluated.len());
        for (g, c) in &self.evaluated {
            enc.grid(g);
            enc.f64(*c);
        }
    }

    /// Reads an outcome written by [`SearchOutcome::write_ckpt`].
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] on malformed input.
    pub fn read_ckpt(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let n = dec.seq_len()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push((dec.usize()?, dec.f64()?));
        }
        let best_cost = dec.f64()?;
        let best_grid = dec.opt_grid()?;
        let n = dec.seq_len()?;
        let mut evaluated = Vec::with_capacity(n);
        for _ in 0..n {
            evaluated.push((dec.grid()?, dec.f64()?));
        }
        Ok(SearchOutcome {
            history,
            best_cost,
            best_grid,
            evaluated,
        })
    }

    /// The outcome as standalone checkpoint bytes — the canonical form
    /// for the "byte-identical resume" assertions of Contract 8: two
    /// outcomes are equal iff their bytes are.
    pub fn to_ckpt_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.write_ckpt(&mut enc);
        enc.finish()
    }
}

/// Evaluate, observe, and return the full [`EvalRecord`] — the hook for
/// multi-objective searchers (NSGA-II GA) that need the PPA report, not
/// just the scalar cost.
pub fn eval_record_and_track(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    grid: &PrefixGrid,
) -> EvalRecord {
    let rec = evaluator.evaluate(grid);
    tracker.observe(evaluator.counter().count(), grid, rec.cost);
    rec
}

/// Like [`eval_record_and_track`], with a derivation hint (see
/// [`eval_and_track_from`]).
pub fn eval_record_and_track_from(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    prev: &PrefixGrid,
    grid: &PrefixGrid,
) -> EvalRecord {
    let rec = evaluator.evaluate_from(prev, grid);
    tracker.observe(evaluator.counter().count(), grid, rec.cost);
    rec
}

/// Convenience wrapper: evaluate, observe, and return the cost.
pub fn eval_and_track(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    grid: &PrefixGrid,
) -> f64 {
    eval_record_and_track(evaluator, tracker, grid).cost
}

/// Like [`eval_and_track`], but tells the evaluator which design `grid`
/// was derived from so the incremental evaluation path can patch that
/// design's resident netlist/timing state instead of rebuilding
/// (mutation-heavy searchers — SA, GA, REINFORCE — call this).
pub fn eval_and_track_from(
    evaluator: &CachedEvaluator,
    tracker: &mut BestTracker,
    prev: &PrefixGrid,
    grid: &PrefixGrid,
) -> f64 {
    eval_record_and_track_from(evaluator, tracker, prev, grid).cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_builds_monotone_curve() {
        let mut t = BestTracker::new(true);
        let g = PrefixGrid::ripple(8);
        t.observe(1, &g, 5.0);
        t.observe(2, &g, 6.0); // worse, no breakpoint
        t.observe(3, &g, 4.0);
        t.finish(10);
        let out = t.into_outcome();
        assert_eq!(out.history, vec![(1, 5.0), (3, 4.0), (10, 4.0)]);
        assert_eq!(out.best_cost, 4.0);
        assert_eq!(out.evaluated.len(), 3);
    }

    #[test]
    fn init_prefix_merges_curve_and_best() {
        let g = PrefixGrid::ripple(8);
        let out = SearchOutcome {
            history: vec![(2, 4.0), (9, 3.0)],
            best_cost: 3.0,
            best_grid: Some(g.clone()),
            evaluated: vec![],
        };
        // Search beat the init phase: init breakpoint prepended, curve
        // shifted, search best kept.
        let merged = out.clone().with_init_prefix(10, 5.0, None);
        assert_eq!(merged.history, vec![(10, 5.0), (12, 4.0), (19, 3.0)]);
        assert_eq!(merged.best_cost, 3.0);
        assert!(merged.best_grid.is_some());
        // Init phase beat the search: init best (and grid) win.
        let merged = out.with_init_prefix(10, 2.0, None);
        assert_eq!(merged.best_cost, 2.0);
        assert!(merged.best_grid.is_none());
        // An infinite init best (empty init phase) adds no breakpoint.
        let empty = SearchOutcome {
            history: vec![(1, 7.0)],
            best_cost: 7.0,
            best_grid: None,
            evaluated: vec![],
        };
        let merged = empty.with_init_prefix(3, f64::INFINITY, None);
        assert_eq!(merged.history, vec![(4, 7.0)]);
        assert_eq!(merged.best_cost, 7.0);
    }

    #[test]
    fn best_within_and_reach() {
        let out = SearchOutcome {
            history: vec![(5, 5.0), (20, 3.0), (50, 3.0)],
            best_cost: 3.0,
            best_grid: None,
            evaluated: vec![],
        };
        assert_eq!(out.best_within(4), f64::INFINITY);
        assert_eq!(out.best_within(10), 5.0);
        assert_eq!(out.best_within(100), 3.0);
        assert_eq!(out.sims_to_reach(3.5), Some(20));
        assert_eq!(out.sims_to_reach(2.0), None);
    }
}
