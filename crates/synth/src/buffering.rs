//! Fanout repair: split heavily loaded nets behind buffers.

use cv_cells::{CellLibrary, Drive};
use cv_netlist::Netlist;

/// Inserts buffers so no net drives more than `max_fanout` sink pins,
/// building a balanced buffer *tree*: an over-loaded net's sinks are
/// partitioned into `max_fanout`-sized groups, each behind its own X2
/// buffer; if the resulting buffer count itself exceeds the limit, the
/// fixpoint pass splits it again. Returns the number of buffers added.
///
/// This mirrors the fanout-repair step every physical-synthesis tool
/// performs and is what keeps high-fanout structures (e.g. Sklansky's
/// root nodes) from being unrealistically fast in the timing model.
pub fn buffer_high_fanout(netlist: &mut Netlist, _lib: &CellLibrary, max_fanout: usize) -> usize {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    let mut inserted = 0usize;
    loop {
        let mut changed = false;
        // One O(gates·pins) pass builds every net's sink list in the same
        // ascending `(gate, pin)` order `sinks_of` would produce; the
        // sweep below then never rescans the whole netlist per net.
        // Within a sweep an insertion only rewires pins of the net being
        // processed (the new buffer consumes it, its moved sinks now
        // consume a brand-new net), so the prebuilt lists of the
        // *remaining* nets stay exact.
        let mut sinks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); netlist.net_count()];
        for (gid, g) in netlist.iter_gates().enumerate() {
            for (pin, &i) in g.inputs.iter().enumerate() {
                sinks[i].push((gid, pin));
            }
        }
        for (net, net_sinks) in sinks.iter().enumerate() {
            if net_sinks.len() <= max_fanout {
                continue;
            }
            for group in net_sinks.chunks(max_fanout) {
                netlist.insert_buffer(net, Drive::X2, group);
                inserted += 1;
            }
            changed = true;
        }
        if !changed {
            return inserted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::{nangate45_like, Function};

    fn star(n_sinks: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input(0);
        let x = nl.add_gate(Function::Inv, Drive::X1, &[a]);
        for i in 0..n_sinks {
            let y = nl.add_gate(Function::Inv, Drive::X1, &[x]);
            nl.add_output(y, i);
        }
        nl
    }

    #[test]
    fn bounded_fanout_after_repair() {
        let lib = nangate45_like();
        for sinks in [3usize, 8, 17, 40] {
            let mut nl = star(sinks);
            buffer_high_fanout(&mut nl, &lib, 6);
            let counts = nl.sink_counts();
            assert!(
                counts.iter().all(|&c| c <= 6),
                "{sinks}-sink star still has a net with {} sinks",
                counts.iter().max().unwrap()
            );
            assert!(nl.is_well_formed());
        }
    }

    #[test]
    fn small_nets_untouched() {
        let lib = nangate45_like();
        let mut nl = star(4);
        let before = nl.gate_count();
        let added = buffer_high_fanout(&mut nl, &lib, 6);
        assert_eq!(added, 0);
        assert_eq!(nl.gate_count(), before);
    }

    #[test]
    fn buffer_count_scales_with_fanout() {
        let lib = nangate45_like();
        let mut small = star(10);
        let mut large = star(40);
        let a = buffer_high_fanout(&mut small, &lib, 6);
        let b = buffer_high_fanout(&mut large, &lib, 6);
        assert!(b > a, "larger stars need more buffers ({b} vs {a})");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_limit() {
        let lib = nangate45_like();
        let mut nl = star(4);
        buffer_high_fanout(&mut nl, &lib, 1);
    }
}
