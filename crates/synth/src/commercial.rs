//! An emulated commercial adder generator for the Fig. 6 comparison.
//!
//! The paper's §5.4 compares CircuitVAE against "the design tool's
//! provided adders" — a black-box commercial generator. We emulate one
//! the way such tools actually work: sweep a portfolio of classical
//! architectures across synthesis effort levels, and keep the Pareto
//! frontier. It shares none of the search machinery with CircuitVAE or
//! the baselines, so it is a fair external competitor.

use crate::cost::{CostParams, PpaReport};
use crate::flow::{SynthesisConfig, SynthesisFlow};
use cv_cells::CellLibrary;
use cv_prefix::{topologies, CircuitKind, PrefixGrid};
use cv_sta::IoTiming;
use serde::{Deserialize, Serialize};

/// One design produced by the tool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolDesign {
    /// Architecture / effort label, e.g. `sklansky@heavy`.
    pub label: String,
    /// Post-synthesis report.
    pub ppa: PpaReport,
}

/// The emulated commercial tool.
#[derive(Debug, Clone)]
pub struct CommercialTool {
    lib: CellLibrary,
    kind: CircuitKind,
    width: usize,
    io: IoTiming,
}

impl CommercialTool {
    /// Creates a tool instance for one design context.
    pub fn new(lib: CellLibrary, kind: CircuitKind, width: usize, io: IoTiming) -> Self {
        CommercialTool {
            lib,
            kind,
            width,
            io,
        }
    }

    /// Synthesizes the full architecture × effort portfolio.
    pub fn portfolio(&self) -> Vec<ToolDesign> {
        let efforts: [(&str, usize, usize); 3] =
            [("light", 8, 8), ("medium", 48, 8), ("heavy", 160, 6)];
        let mut out = Vec::new();
        for (name, grid) in topologies::all_classical(self.width) {
            for (effort, moves, max_fo) in efforts {
                for w in [0.2, 0.5, 0.8, 0.95] {
                    let cfg = SynthesisConfig {
                        io: self.io.clone(),
                        max_fanout: max_fo,
                        sizing_moves: moves,
                        delay_weight: w,
                    };
                    let flow =
                        SynthesisFlow::with_config(self.lib.clone(), self.kind, self.width, cfg);
                    let ppa = flow.synthesize(&grid);
                    out.push(ToolDesign {
                        label: format!("{name}@{effort}/w{w}"),
                        ppa,
                    });
                }
            }
        }
        out
    }

    /// The Pareto-optimal (area, delay) subset of the portfolio, sorted
    /// by area.
    pub fn pareto_front(&self) -> Vec<ToolDesign> {
        pareto_filter(self.portfolio())
    }

    /// The best single design under the given cost weighting.
    pub fn best_design(&self, cost: CostParams) -> ToolDesign {
        self.portfolio()
            .into_iter()
            .min_by(|a, b| cost.cost(&a.ppa).total_cmp(&cost.cost(&b.ppa)))
            .expect("portfolio is never empty")
    }

    /// The grids of "human designs" for Fig. 6's third competitor.
    pub fn human_designs(&self) -> Vec<(&'static str, PrefixGrid)> {
        topologies::all_classical(self.width)
    }
}

/// Filters a design list to its area/delay Pareto frontier (sorted by
/// increasing area).
pub fn pareto_filter(mut designs: Vec<ToolDesign>) -> Vec<ToolDesign> {
    designs.sort_by(|a, b| {
        a.ppa
            .area_um2
            .total_cmp(&b.ppa.area_um2)
            .then(a.ppa.delay_ns.total_cmp(&b.ppa.delay_ns))
    });
    let mut front: Vec<ToolDesign> = Vec::new();
    let mut best_delay = f64::INFINITY;
    for d in designs {
        if d.ppa.delay_ns < best_delay - 1e-12 {
            best_delay = d.ppa.delay_ns;
            front.push(d);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::{nangate45_like, scaled_8nm_like};

    fn tool() -> CommercialTool {
        CommercialTool::new(
            nangate45_like(),
            CircuitKind::Adder,
            16,
            IoTiming::uniform(16),
        )
    }

    #[test]
    fn portfolio_covers_architectures_and_efforts() {
        let p = tool().portfolio();
        assert_eq!(p.len(), 6 * 3 * 4);
        assert!(p.iter().any(|d| d.label.starts_with("sklansky@heavy")));
    }

    #[test]
    fn pareto_front_is_monotone() {
        let front = tool().pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].ppa.area_um2 <= w[1].ppa.area_um2);
            assert!(w[0].ppa.delay_ns >= w[1].ppa.delay_ns);
        }
    }

    #[test]
    fn best_design_tracks_weight() {
        let t = tool();
        let fast = t.best_design(CostParams::new(0.95));
        let small = t.best_design(CostParams::new(0.05));
        assert!(fast.ppa.delay_ns <= small.ppa.delay_ns);
        assert!(small.ppa.area_um2 <= fast.ppa.area_um2);
    }

    #[test]
    fn works_on_8nm_with_datapath_io() {
        let t = CommercialTool::new(
            scaled_8nm_like(),
            CircuitKind::Adder,
            31,
            IoTiming::datapath_profile(31, 0.1),
        );
        let front = t.pareto_front();
        assert!(
            front.len() >= 2,
            "expect a real frontier, got {}",
            front.len()
        );
    }

    #[test]
    fn pareto_filter_drops_dominated_points() {
        let mk = |a: f64, d: f64| ToolDesign {
            label: String::new(),
            ppa: PpaReport {
                area_um2: a,
                delay_ns: d,
                gate_count: 0,
                buffers_inserted: 0,
                gates_upsized: 0,
            },
        };
        let front = pareto_filter(vec![mk(1.0, 1.0), mk(2.0, 0.5), mk(1.5, 1.2), mk(3.0, 0.6)]);
        assert_eq!(front.len(), 2);
    }
}
