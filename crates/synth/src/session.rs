//! Incremental evaluation sessions.
//!
//! An [`EvalSession`] owns all the resident state one worker needs to
//! evaluate a *stream* of candidate grids cheaply: the incremental
//! [`NetlistBuilder`] (patches only the prefix spans that changed since
//! the previous candidate), a reusable working netlist, and the delta-STA
//! [`TimingEngine`] that replaces every full re-analysis inside gate
//! sizing with a cone update. Its results are **bit-for-bit identical**
//! to [`SynthesisFlow::synthesize`] — pinned by the `cv-tests`
//! equivalence property suite — so [`crate::CachedEvaluator`] can route
//! every cache miss through a session without changing any observable
//! behavior, which is how mutation-heavy searchers (SA, GA, REINFORCE)
//! hit the fast path automatically.

use crate::buffering::buffer_high_fanout;
use crate::cost::{CostParams, PpaReport};
use crate::evaluator::{EvalRecord, Objective};
use crate::flow::SynthesisFlow;
use crate::sizing::size_gates_incremental;
use cv_netlist::{GateId, Netlist, NetlistBuilder, RemapStats};
use cv_prefix::PrefixGrid;
use cv_sta::TimingEngine;

/// Resident incremental-evaluation state for one synthesis flow.
///
/// ```
/// use cv_synth::{CostParams, EvalSession, SynthesisFlow};
/// use cv_prefix::{topologies, CircuitKind};
/// use cv_cells::nangate45_like;
///
/// let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 16);
/// let mut session = EvalSession::new(flow.clone(), CostParams::new(0.66));
/// let base = topologies::sklansky(16);
/// let mut mutated = base.clone();
/// mutated.set(15, 9, true).unwrap();
/// mutated.legalize();
/// let rec = session.evaluate_delta(&base, &mutated);
/// assert_eq!(rec.ppa, flow.synthesize(&mutated)); // bit-for-bit
/// ```
#[derive(Debug, Clone)]
pub struct EvalSession {
    flow: SynthesisFlow,
    cost: CostParams,
    builder: NetlistBuilder,
    /// Per-candidate working copy (buffering + sizing mutate this, never
    /// the builder's pristine mapped netlist).
    work: Netlist,
    engine: TimingEngine,
    path: Vec<GateId>,
    /// The legalized grid of the most recent evaluation.
    last: Option<PrefixGrid>,
    /// Remap reuse of the most recent evaluation.
    last_stats: Option<RemapStats>,
}

impl EvalSession {
    /// Creates a session around a flow and cost parameters.
    pub fn new(flow: SynthesisFlow, cost: CostParams) -> Self {
        let builder = NetlistBuilder::new(flow.kind(), flow.width());
        EvalSession {
            flow,
            cost,
            builder,
            work: Netlist::new(),
            engine: TimingEngine::new(),
            path: Vec::new(),
            last: None,
            last_stats: None,
        }
    }

    /// Creates a session evaluating the same objective as `objective`.
    pub fn from_objective(objective: &Objective) -> Self {
        EvalSession::new(objective.flow().clone(), objective.cost_params())
    }

    /// The legalized grid of the most recent evaluation, if any.
    pub fn last_grid(&self) -> Option<&PrefixGrid> {
        self.last.as_ref()
    }

    /// How much of the previous netlist the most recent evaluation
    /// reused (diagnostics for benches and tests).
    pub fn last_remap_stats(&self) -> Option<RemapStats> {
        self.last_stats
    }

    /// Evaluates `grid`, reusing whatever state is resident from the
    /// previous call. Produces exactly the record that
    /// `Objective::evaluate` (i.e. the full [`SynthesisFlow`]) would.
    ///
    /// # Panics
    ///
    /// Panics if `grid.width()` differs from the flow's width.
    pub fn evaluate(&mut self, grid: &PrefixGrid) -> EvalRecord {
        assert_eq!(grid.width(), self.flow.width(), "grid width mismatch");
        let legal = if grid.is_legal() {
            grid.clone()
        } else {
            grid.legalized()
        };
        let graph = legal.to_graph();
        let stats = self.builder.remap(&graph);
        self.work.copy_from(self.builder.netlist());

        let lib = self.flow.library();
        let config = self.flow.config();
        let buffers = buffer_high_fanout(&mut self.work, lib, config.max_fanout);
        let (upsized, delay_ns) = size_gates_incremental(
            &mut self.work,
            lib,
            &config.io,
            config.delay_weight,
            config.sizing_moves,
            &mut self.engine,
            &mut self.path,
        );
        let ppa = PpaReport {
            area_um2: self.work.area_um2(lib),
            delay_ns,
            gate_count: self.work.gate_count(),
            buffers_inserted: buffers,
            gates_upsized: upsized,
        };
        self.last = Some(legal);
        self.last_stats = Some(stats);
        EvalRecord {
            cost: self.cost.cost(&ppa),
            ppa,
        }
    }

    /// Evaluates `next` as a delta from `prev`: when the resident state
    /// already corresponds to `prev` (the common case along a mutation
    /// chain) only the changed prefix spans are re-emitted; within gate
    /// sizing, every trial resize is a cone-sized delta-STA update (the
    /// post-buffering netlist itself still gets one full timing pass).
    /// If the resident state is something else — including a fresh
    /// session — the call simply evaluates `next` from whatever is
    /// resident, never doing *extra* work to honor the hint. In every
    /// case the returned record equals a full evaluation of `next`.
    pub fn evaluate_delta(&mut self, prev: &PrefixGrid, next: &PrefixGrid) -> EvalRecord {
        debug_assert_eq!(prev.width(), next.width(), "delta across widths");
        self.evaluate(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::{nangate45_like, scaled_8nm_like};
    use cv_prefix::{mutate, topologies, CircuitKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn session_matches_flow_on_classical_designs() {
        for lib in [nangate45_like(), scaled_8nm_like()] {
            for kind in [
                CircuitKind::Adder,
                CircuitKind::GrayToBinary,
                CircuitKind::LeadingZero,
            ] {
                let flow = SynthesisFlow::new(lib.clone(), kind, 16);
                let mut session = EvalSession::new(flow.clone(), CostParams::new(0.66));
                for (name, grid) in topologies::all_classical(16) {
                    let rec = session.evaluate(&grid);
                    let full = flow.synthesize(&grid);
                    assert_eq!(rec.ppa, full, "{kind} {name}");
                }
            }
        }
    }

    #[test]
    fn mutation_chain_matches_flow_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(77);
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 12);
        let mut session = EvalSession::new(flow.clone(), CostParams::new(0.5));
        let mut grid = topologies::brent_kung(12);
        for step in 0..16 {
            let next = mutate::neighbour(&grid, &mut rng);
            let rec = session.evaluate_delta(&grid, &next);
            let full = flow.synthesize(&next);
            assert_eq!(rec.ppa, full, "step {step}");
            assert_eq!(
                rec.cost.to_bits(),
                CostParams::new(0.5).cost(&full).to_bits()
            );
            grid = next;
        }
    }

    #[test]
    fn illegal_grids_are_legalized_like_the_flow() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 16);
        let mut session = EvalSession::new(flow.clone(), CostParams::new(0.66));
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        assert_eq!(session.evaluate(&g).ppa, flow.synthesize(&g));
        assert_eq!(session.last_grid(), Some(&g.legalized()));
    }

    #[test]
    fn remap_stats_show_reuse_along_chains() {
        let mut session = EvalSession::new(
            SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 32),
            CostParams::new(0.66),
        );
        let base = topologies::kogge_stone(32);
        session.evaluate(&base);
        let mut mutated = base.clone();
        mutated.set(31, 17, true).unwrap();
        mutated.legalize();
        session.evaluate(&mutated);
        let stats = session.last_remap_stats().unwrap();
        assert!(
            stats.reused_gates > 0,
            "top-row mutation must reuse mapped gates: {stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics_like_the_flow() {
        let mut session = EvalSession::new(
            SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 8),
            CostParams::new(0.5),
        );
        let _ = session.evaluate(&topologies::sklansky(12));
    }
}
