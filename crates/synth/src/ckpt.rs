//! Binary checkpoint codec for search-driver state.
//!
//! The workspace's vendored `serde` is a marker facade (no wire format),
//! so checkpointable state is written through this small self-describing
//! little-endian codec instead — the same approach `cv-nn` uses for
//! model weights. Every value is written through [`Enc`] and read back
//! through [`Dec`]; composite types (trackers, archives, evaluator
//! snapshots, driver states) layer `write_ckpt`/`read_ckpt` pairs on
//! top. Floats are stored as raw IEEE-754 bits, so a checkpoint/resume
//! round trip is bit-for-bit lossless — the property Contract 8
//! (DESIGN.md §7) rests on.

use crate::cost::PpaReport;
use crate::evaluator::EvalRecord;
use cv_prefix::{bitvec, PrefixGrid};
use std::error::Error;
use std::fmt;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The byte stream ended prematurely.
    Truncated,
    /// The stream does not start with the expected magic string.
    BadMagic,
    /// A decoded value is structurally invalid (bad tag, bad grid, …).
    Invalid(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
        }
    }
}

impl Error for CkptError {}

/// Little-endian binary encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// An encoder starting with `magic` (pair with [`Dec::with_magic`]).
    pub fn with_magic(magic: &[u8; 8]) -> Self {
        let mut e = Enc::new();
        e.buf.extend_from_slice(magic);
        e
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u8` (one byte — event tags, small enums).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as raw IEEE-754 bits (lossless, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an `f32` as raw bits.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn f32s(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    /// Appends a grid as its width plus bit-packed free cells (the free
    /// cells fully determine a grid; mandatory cells are implied).
    pub fn grid(&mut self, g: &PrefixGrid) {
        self.usize(g.width());
        let bits = bitvec::encode_bits(g);
        self.usize(bits.len());
        let mut byte = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if bits.len() % 8 != 0 {
            self.buf.push(byte);
        }
    }

    /// Appends an optional grid.
    pub fn opt_grid(&mut self, g: Option<&PrefixGrid>) {
        self.bool(g.is_some());
        if let Some(g) = g {
            self.grid(g);
        }
    }

    /// Appends a PPA report.
    pub fn ppa(&mut self, p: &PpaReport) {
        self.f64(p.area_um2);
        self.f64(p.delay_ns);
        self.usize(p.gate_count);
        self.usize(p.buffers_inserted);
        self.usize(p.gates_upsized);
    }

    /// Appends an evaluation record.
    pub fn record(&mut self, r: &EvalRecord) {
        self.f64(r.cost);
        self.ppa(&r.ppa);
    }

    /// The accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian binary decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// A decoder that first checks for `magic`.
    ///
    /// # Errors
    ///
    /// [`CkptError::BadMagic`] when the stream does not start with it.
    pub fn with_magic(buf: &'a [u8], magic: &[u8; 8]) -> Result<Self, CkptError> {
        let mut d = Dec::new(buf);
        if d.take(8)? != magic {
            return Err(CkptError::BadMagic);
        }
        Ok(d)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        // Checked arithmetic: a corrupt length prefix near `usize::MAX`
        // must surface as `Truncated`, not overflow.
        if n > self.buf.len() - self.pos {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a sequence-length prefix, validated against the bytes that
    /// remain: every encoded element occupies at least one byte, so a
    /// count exceeding the remainder is corrupt. Read loops size their
    /// `Vec::with_capacity` from this, which keeps a bit-flipped length
    /// prefix from turning into a capacity-overflow abort instead of a
    /// diagnosable [`CkptError`].
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] when the count cannot fit the remaining
    /// bytes.
    pub fn seq_len(&mut self) -> Result<usize, CkptError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `usize`.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        Ok(self.u64()? as usize)
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` from raw bits.
    pub fn f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4"),
        )))
    }

    /// Reads a `bool`.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Invalid("bool")),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.seq_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| CkptError::Invalid("utf8"))
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn f32s(&mut self) -> Result<Vec<f32>, CkptError> {
        let n = self.seq_len()?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a grid written by [`Enc::grid`].
    pub fn grid(&mut self) -> Result<PrefixGrid, CkptError> {
        let width = self.usize()?;
        let nbits = self.usize()?;
        let packed = self.take(nbits.div_ceil(8))?;
        let bits: Vec<bool> = (0..nbits)
            .map(|i| packed[i / 8] >> (i % 8) & 1 == 1)
            .collect();
        bitvec::decode_bits(width, &bits).map_err(|_| CkptError::Invalid("grid"))
    }

    /// Reads an optional grid.
    pub fn opt_grid(&mut self) -> Result<Option<PrefixGrid>, CkptError> {
        if self.bool()? {
            Ok(Some(self.grid()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a PPA report.
    pub fn ppa(&mut self) -> Result<PpaReport, CkptError> {
        Ok(PpaReport {
            area_um2: self.f64()?,
            delay_ns: self.f64()?,
            gate_count: self.usize()?,
            buffers_inserted: self.usize()?,
            gates_upsized: self.usize()?,
        })
    }

    /// Reads an evaluation record.
    pub fn record(&mut self) -> Result<EvalRecord, CkptError> {
        Ok(EvalRecord {
            cost: self.f64()?,
            ppa: self.ppa()?,
        })
    }

    /// Asserts the whole stream was consumed.
    ///
    /// # Errors
    ///
    /// [`CkptError::Invalid`] when trailing bytes remain.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CkptError::Invalid("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_prefix::topologies;

    #[test]
    fn scalars_roundtrip_bitwise() {
        let mut e = Enc::with_magic(b"CVTESTS1");
        e.u8(0xA5);
        e.u32(u32::MAX - 1);
        e.u64(u64::MAX);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f32(1.5e-40); // subnormal
        e.bool(true);
        e.str("grid/ω");
        e.f32s(&[0.0, -1.0, f32::INFINITY]);
        let bytes = e.finish();
        let mut d = Dec::with_magic(&bytes, b"CVTESTS1").unwrap();
        assert_eq!(d.u8().unwrap(), 0xA5);
        assert_eq!(d.u32().unwrap(), u32::MAX - 1);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.f32().unwrap().to_bits(), 1.5e-40f32.to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "grid/ω");
        assert_eq!(d.f32s().unwrap(), vec![0.0f32, -1.0, f32::INFINITY]);
        d.finish().unwrap();
    }

    #[test]
    fn grids_roundtrip_including_illegal_ones() {
        let mut e = Enc::new();
        let legal = topologies::sklansky(12);
        let mut illegal = PrefixGrid::ripple(10);
        illegal.set(7, 3, true).unwrap(); // not legalized on purpose
        e.grid(&legal);
        e.grid(&illegal);
        e.opt_grid(None);
        e.opt_grid(Some(&legal));
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.grid().unwrap(), legal);
        assert_eq!(d.grid().unwrap(), illegal);
        assert_eq!(d.opt_grid().unwrap(), None);
        assert_eq!(d.opt_grid().unwrap(), Some(legal));
        d.finish().unwrap();
    }

    #[test]
    fn corrupt_length_prefixes_error_instead_of_aborting() {
        // A bit-flipped length prefix near usize::MAX must surface as a
        // CkptError — not overflow in `take`, and not a capacity-overflow
        // abort in a `Vec::with_capacity(seq_len)` read loop.
        let mut e = Enc::new();
        e.u64(u64::MAX - 3);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.seq_len().unwrap_err(), CkptError::Truncated);
        let mut d = Dec::new(&bytes);
        assert_eq!(d.bytes().unwrap_err(), CkptError::Truncated);
        let mut d = Dec::new(&bytes);
        assert_eq!(d.f32s().unwrap_err(), CkptError::Truncated);
        // Same prefix fed to a composite reader (tracker points).
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            crate::BestTracker::read_ckpt(&mut d),
            Err(CkptError::Truncated)
        ));
    }

    #[test]
    fn errors_are_detected() {
        assert_eq!(
            Dec::with_magic(b"nonsense-bytes", b"CVTESTS1").unwrap_err(),
            CkptError::BadMagic
        );
        let mut e = Enc::new();
        e.u64(7);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes[..4]);
        assert_eq!(d.u64().unwrap_err(), CkptError::Truncated);
        let mut d = Dec::new(&bytes);
        let _ = d.u64().unwrap();
        // Unconsumed trailing bytes are an error too.
        let mut e = Enc::new();
        e.u64(1);
        e.u64(2);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let _ = d.u64().unwrap();
        assert_eq!(
            d.finish().unwrap_err(),
            CkptError::Invalid("trailing bytes")
        );
    }
}
