//! Multi-objective (area, delay) Pareto machinery: the archive every
//! search method feeds, plus the non-dominated sorting and crowding
//! primitives NSGA-II-style selection is built from.
//!
//! The paper's headline result is not a single best adder but the whole
//! area-delay tradeoff curve; a [`ParetoArchive`] attached to a
//! [`CachedEvaluator`](crate::CachedEvaluator) captures that curve as a
//! by-product of any scalar search — archiving is observation-only and
//! never changes search decisions (DESIGN.md §6, Contract 7).

use crate::cost::PpaReport;
use cv_prefix::PrefixGrid;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Returns true when `a` Pareto-dominates `b` in (area, delay)
/// minimization: no worse in both objectives and strictly better in at
/// least one.
#[inline]
pub fn dominates(a: &PpaReport, b: &PpaReport) -> bool {
    dominates_xy((a.area_um2, a.delay_ns), (b.area_um2, b.delay_ns))
}

/// [`dominates`] on raw `(area, delay)` pairs.
#[inline]
pub fn dominates_xy(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// One archived design: the grid, its full PPA report, and the
/// simulation count at which it was first observed (the budget axis of
/// every hypervolume-vs-simulations table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The (legalized) design.
    pub grid: PrefixGrid,
    /// Its synthesized PPA.
    pub ppa: PpaReport,
    /// Simulation count when this design was first evaluated.
    pub sims: usize,
}

/// One raw observation `(sims, area, delay)` — every evaluated design,
/// dominated or not, kept when the archive's log is enabled so frontier
/// metrics can be recomputed at any budget cut.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Simulation count at evaluation time.
    pub sims: usize,
    /// Synthesized area, µm².
    pub area_um2: f64,
    /// Synthesized critical-path delay, ns.
    pub delay_ns: f64,
}

/// A bounded archive of mutually non-dominated `(grid, PPA)` points in
/// the (area, delay) plane.
///
/// Insertion is dominance-filtered: a candidate that is dominated (or a
/// duplicate / ε-duplicate of an archived point) is rejected, and an
/// accepted candidate evicts every point it dominates. The front is kept
/// sorted by ascending area (hence strictly descending delay), so
/// [`ParetoArchive::front`] is directly plottable.
///
/// With `epsilon == 0` and unbounded capacity the archived front is
/// exactly the non-dominated subset of everything ever inserted, which
/// makes it independent of insertion order (pinned by property tests).
/// A capacity bound prunes by crowding distance (extreme points are
/// never pruned); an ε grid coarsens the front by rejecting candidates
/// within `(eps_area, eps_delay)` of an archived point that is at least
/// as good after the tolerance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoArchive {
    front: Vec<ParetoPoint>,
    eps_area: f64,
    eps_delay: f64,
    capacity: Option<usize>,
    keep_log: bool,
    log: Vec<Observation>,
    inserted: usize,
    accepted: usize,
    sim_offset: usize,
}

impl Default for ParetoArchive {
    fn default() -> Self {
        Self::new()
    }
}

impl ParetoArchive {
    /// An exact (ε = 0), unbounded archive with the observation log off.
    pub fn new() -> Self {
        ParetoArchive {
            front: Vec::new(),
            eps_area: 0.0,
            eps_delay: 0.0,
            capacity: None,
            keep_log: false,
            log: Vec::new(),
            inserted: 0,
            accepted: 0,
            sim_offset: 0,
        }
    }

    /// Sets the offset added to every subsequent observation's `sims`
    /// stamp. One archive often observes a *sequence* of evaluators —
    /// e.g. a weight sweep builds a fresh evaluator (counter at zero)
    /// per rung — and the offset keeps the archive's simulation axis
    /// cumulative across them.
    pub fn set_sim_offset(&mut self, offset: usize) {
        self.sim_offset = offset;
    }

    /// The current simulation-stamp offset.
    pub fn sim_offset(&self) -> usize {
        self.sim_offset
    }

    /// Sets the ε-dedup resolution: a candidate within `eps_area` µm² and
    /// `eps_delay` ns of an archived point that is at least as good up to
    /// that tolerance is treated as a duplicate and rejected.
    #[must_use]
    pub fn with_epsilon(mut self, eps_area: f64, eps_delay: f64) -> Self {
        assert!(
            eps_area >= 0.0 && eps_delay >= 0.0,
            "epsilon must be non-negative"
        );
        self.eps_area = eps_area;
        self.eps_delay = eps_delay;
        self
    }

    /// Bounds the front to `capacity` points, pruning by smallest
    /// crowding distance when the bound is exceeded (the two extreme
    /// points are never pruned).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 2, "a bounded front needs room for its extremes");
        self.capacity = Some(capacity);
        self
    }

    /// Enables the raw observation log (every [`ParetoArchive::insert`]
    /// call is recorded, accepted or not) for budget-cut frontier
    /// metrics.
    #[must_use]
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// Wraps the archive for sharing across evaluators and threads.
    pub fn into_shared(self) -> SharedArchive {
        Arc::new(Mutex::new(self))
    }

    /// Writes the full archive state (front, log, counters, settings)
    /// into a checkpoint encoder; [`ParetoArchive::read_ckpt`] restores
    /// it bit-for-bit.
    pub fn write_ckpt(&self, enc: &mut crate::ckpt::Enc) {
        enc.usize(self.front.len());
        for p in &self.front {
            enc.grid(&p.grid);
            enc.ppa(&p.ppa);
            enc.usize(p.sims);
        }
        enc.f64(self.eps_area);
        enc.f64(self.eps_delay);
        enc.bool(self.capacity.is_some());
        enc.usize(self.capacity.unwrap_or(0));
        enc.bool(self.keep_log);
        enc.usize(self.log.len());
        for o in &self.log {
            enc.usize(o.sims);
            enc.f64(o.area_um2);
            enc.f64(o.delay_ns);
        }
        enc.usize(self.inserted);
        enc.usize(self.accepted);
        enc.usize(self.sim_offset);
    }

    /// Reads an archive written by [`ParetoArchive::write_ckpt`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ckpt::CkptError`] on malformed input.
    pub fn read_ckpt(dec: &mut crate::ckpt::Dec<'_>) -> Result<Self, crate::ckpt::CkptError> {
        let n = dec.seq_len()?;
        let mut front = Vec::with_capacity(n);
        for _ in 0..n {
            front.push(ParetoPoint {
                grid: dec.grid()?,
                ppa: dec.ppa()?,
                sims: dec.usize()?,
            });
        }
        let eps_area = dec.f64()?;
        let eps_delay = dec.f64()?;
        let has_capacity = dec.bool()?;
        let capacity_raw = dec.usize()?;
        let keep_log = dec.bool()?;
        let n = dec.seq_len()?;
        let mut log = Vec::with_capacity(n);
        for _ in 0..n {
            log.push(Observation {
                sims: dec.usize()?,
                area_um2: dec.f64()?,
                delay_ns: dec.f64()?,
            });
        }
        Ok(ParetoArchive {
            front,
            eps_area,
            eps_delay,
            capacity: has_capacity.then_some(capacity_raw),
            keep_log,
            log,
            inserted: dec.usize()?,
            accepted: dec.usize()?,
            sim_offset: dec.usize()?,
        })
    }

    /// The archive as standalone checkpoint bytes (front + log +
    /// counters) — two archives are equal iff their bytes are, which is
    /// how the resume tests byte-diff Pareto fronts.
    pub fn to_ckpt_bytes(&self) -> Vec<u8> {
        let mut enc = crate::ckpt::Enc::new();
        self.write_ckpt(&mut enc);
        enc.finish()
    }

    /// The current front, sorted by ascending area (descending delay).
    pub fn front(&self) -> &[ParetoPoint] {
        &self.front
    }

    /// The raw observation log (empty unless enabled via
    /// [`ParetoArchive::with_log`]).
    pub fn observations(&self) -> &[Observation] {
        &self.log
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.front.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty()
    }

    /// Total `insert` calls observed.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Of those, how many were accepted onto the front (some may have
    /// been evicted or pruned since).
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// The front as bare `(area, delay)` pairs, ascending in area.
    pub fn objectives(&self) -> Vec<(f64, f64)> {
        self.front
            .iter()
            .map(|p| (p.ppa.area_um2, p.ppa.delay_ns))
            .collect()
    }

    /// Offers one design to the archive. Returns `true` if it joined the
    /// front. Rejected candidates (dominated, duplicate, ε-duplicate)
    /// leave the front untouched; accepted ones evict what they dominate.
    pub fn insert(&mut self, grid: PrefixGrid, ppa: PpaReport, sims: usize) -> bool {
        self.inserted += 1;
        let sims = sims + self.sim_offset;
        if self.keep_log {
            self.log.push(Observation {
                sims,
                area_um2: ppa.area_um2,
                delay_ns: ppa.delay_ns,
            });
        }
        let cand = (ppa.area_um2, ppa.delay_ns);
        if !cand.0.is_finite() || !cand.1.is_finite() {
            return false;
        }
        // Reject if any archived point is at least as good in both
        // objectives after the ε tolerance. With ε = 0 this covers both
        // strict dominance and exact duplicates.
        let rejected = self.front.iter().any(|p| {
            p.ppa.area_um2 <= cand.0 + self.eps_area && p.ppa.delay_ns <= cand.1 + self.eps_delay
        });
        if rejected {
            return false;
        }
        self.front
            .retain(|p| !dominates_xy(cand, (p.ppa.area_um2, p.ppa.delay_ns)));
        let at = self
            .front
            .partition_point(|p| (p.ppa.area_um2, p.ppa.delay_ns) < cand);
        self.front.insert(at, ParetoPoint { grid, ppa, sims });
        self.accepted += 1;
        if let Some(cap) = self.capacity {
            while self.front.len() > cap {
                self.prune_most_crowded();
            }
        }
        true
    }

    /// Replays a sequence of offers through [`ParetoArchive::insert`] in
    /// iteration order, returning how many joined the front. The batch
    /// evaluator uses this to stamp a whole publish phase under a single
    /// archive lock instead of re-locking per design — byte-identical to
    /// the per-design inserts it replaces, because insertion *order* is
    /// all the log and the front depend on.
    pub fn insert_all<I>(&mut self, offers: I) -> usize
    where
        I: IntoIterator<Item = (PrefixGrid, PpaReport, usize)>,
    {
        let mut accepted = 0;
        for (grid, ppa, sims) in offers {
            if self.insert(grid, ppa, sims) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Removes the interior point with the smallest crowding distance.
    fn prune_most_crowded(&mut self) {
        debug_assert!(self.front.len() > 2);
        let objs = self.objectives();
        let members: Vec<usize> = (0..objs.len()).collect();
        let dist = crowding_distance(&objs, &members);
        let mut worst = 1;
        for i in 1..objs.len() - 1 {
            if dist[i] < dist[worst] {
                worst = i;
            }
        }
        self.front.remove(worst);
    }
}

/// A clone-shareable, lock-guarded archive: the form
/// [`CachedEvaluator::attach_archive`](crate::CachedEvaluator::attach_archive)
/// accepts, so one archive can observe several evaluators (e.g. a weight
/// sweep) at once.
pub type SharedArchive = Arc<Mutex<ParetoArchive>>;

/// Fast non-dominated sort (NSGA-II): partitions point indices into
/// fronts `F0, F1, ...` where `F0` is the non-dominated set, `F1` is
/// non-dominated once `F0` is removed, and so on. O(n²) comparisons,
/// which is fine at population scale.
pub fn non_dominated_sort(objs: &[(f64, f64)]) -> Vec<Vec<usize>> {
    let n = objs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by = vec![0usize; n]; // how many points dominate i
    let mut dominating: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates_xy(objs[i], objs[j]) {
                dominating[i].push(j);
                dominated_by[j] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominating[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// NSGA-II crowding distance of each member of one front, aligned with
/// `members`. Extreme points in either objective get `f64::INFINITY`;
/// interior points get the normalized perimeter of their neighbour
/// cuboid. Degenerate fronts (≤ 2 members, or zero objective range)
/// yield all-infinite distances.
pub fn crowding_distance(objs: &[(f64, f64)], members: &[usize]) -> Vec<f64> {
    let m = members.len();
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let mut dist = vec![0.0f64; m];
    // Positions 0..m index into `members`.
    for obj in 0..2 {
        let get = |k: usize| {
            let (a, d) = objs[members[k]];
            if obj == 0 {
                a
            } else {
                d
            }
        };
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&x, &y| get(x).total_cmp(&get(y)));
        let lo = get(order[0]);
        let hi = get(order[m - 1]);
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let d = (get(order[w + 1]) - get(order[w - 1])) / range;
            dist[order[w]] += d;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_prefix::PrefixGrid;

    fn ppa(area: f64, delay: f64) -> PpaReport {
        PpaReport {
            area_um2: area,
            delay_ns: delay,
            gate_count: 0,
            buffers_inserted: 0,
            gates_upsized: 0,
        }
    }

    fn grid() -> PrefixGrid {
        PrefixGrid::ripple(8)
    }

    #[test]
    fn empty_archive() {
        let a = ParetoArchive::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(a.front().is_empty());
        assert!(a.objectives().is_empty());
        assert_eq!(a.inserted(), 0);
    }

    #[test]
    fn single_point_is_the_front() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(grid(), ppa(100.0, 1.0), 1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.front()[0].sims, 1);
    }

    #[test]
    fn duplicate_ppa_is_rejected() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(grid(), ppa(100.0, 1.0), 1));
        assert!(!a.insert(grid(), ppa(100.0, 1.0), 2));
        assert_eq!(a.len(), 1);
        assert_eq!(a.front()[0].sims, 1, "first observation wins");
        assert_eq!((a.inserted(), a.accepted()), (2, 1));
    }

    #[test]
    fn dominated_points_are_rejected_and_evicted() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(grid(), ppa(100.0, 1.0), 1));
        // Dominated: worse in both.
        assert!(!a.insert(grid(), ppa(120.0, 1.2), 2));
        // Tradeoff: accepted.
        assert!(a.insert(grid(), ppa(80.0, 1.5), 3));
        assert_eq!(a.len(), 2);
        // Dominates both: evicts both.
        assert!(a.insert(grid(), ppa(70.0, 0.9), 4));
        assert_eq!(a.len(), 1);
        assert_eq!(a.front()[0].sims, 4);
    }

    #[test]
    fn front_is_sorted_by_area_and_mutually_non_dominated() {
        let mut a = ParetoArchive::new();
        for (i, (ar, d)) in [
            (90.0, 1.1),
            (50.0, 2.0),
            (70.0, 1.5),
            (60.0, 1.4),
            (95.0, 1.05),
        ]
        .into_iter()
        .enumerate()
        {
            a.insert(grid(), ppa(ar, d), i);
        }
        let objs = a.objectives();
        for w in objs.windows(2) {
            assert!(w[0].0 < w[1].0, "ascending area");
            assert!(w[0].1 > w[1].1, "descending delay");
        }
        for (i, &x) in objs.iter().enumerate() {
            for (j, &y) in objs.iter().enumerate() {
                assert!(i == j || !dominates_xy(x, y), "{x:?} dominates {y:?}");
            }
        }
    }

    #[test]
    fn epsilon_rejects_near_duplicates() {
        let mut a = ParetoArchive::new().with_epsilon(1.0, 0.1);
        assert!(a.insert(grid(), ppa(100.0, 1.0), 1));
        // Within (1.0, 0.1) of an archived point that is as good up to
        // the tolerance: rejected even though it is 0.5 um2 smaller.
        assert!(!a.insert(grid(), ppa(99.5, 1.05), 2));
        // Clearly beyond the tolerance: accepted.
        assert!(a.insert(grid(), ppa(90.0, 1.5), 3));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn capacity_prunes_interior_by_crowding_and_keeps_extremes() {
        let mut a = ParetoArchive::new().with_capacity(3);
        // A dense interior cluster plus clear extremes.
        a.insert(grid(), ppa(10.0, 5.0), 0);
        a.insert(grid(), ppa(50.0, 1.0), 1);
        a.insert(grid(), ppa(29.0, 3.05), 2);
        a.insert(grid(), ppa(30.0, 3.0), 3);
        a.insert(grid(), ppa(31.0, 2.95), 4);
        assert_eq!(a.len(), 3);
        let objs = a.objectives();
        assert_eq!(objs.first().unwrap().0, 10.0, "min-area extreme kept");
        assert_eq!(objs.last().unwrap().0, 50.0, "min-delay extreme kept");
    }

    #[test]
    fn non_finite_observations_are_rejected() {
        let mut a = ParetoArchive::new();
        assert!(!a.insert(grid(), ppa(f64::NAN, 1.0), 0));
        assert!(!a.insert(grid(), ppa(100.0, f64::INFINITY), 1));
        assert!(a.is_empty());
    }

    #[test]
    fn log_records_everything_when_enabled() {
        let mut a = ParetoArchive::new().with_log();
        a.insert(grid(), ppa(100.0, 1.0), 1);
        a.insert(grid(), ppa(120.0, 1.2), 2); // rejected but logged
        assert_eq!(a.observations().len(), 2);
        assert_eq!(a.observations()[1].sims, 2);
        let silent = ParetoArchive::new();
        assert!(silent.observations().is_empty());
    }

    #[test]
    fn non_dominated_sort_layers() {
        // F0: (1,4), (2,2), (4,1); F1: (3,3), (5,2); F2: (5,5).
        let objs = [
            (1.0, 4.0),
            (2.0, 2.0),
            (4.0, 1.0),
            (3.0, 3.0),
            (5.0, 2.0),
            (5.0, 5.0),
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 1, 2]);
        assert_eq!(fronts[1], vec![3, 4]);
        assert_eq!(fronts[2], vec![5]);
        assert!(non_dominated_sort(&[]).is_empty());
    }

    #[test]
    fn crowding_extremes_are_infinite_and_interior_ranks_by_spacing() {
        let objs = [(0.0, 4.0), (1.0, 2.9), (2.0, 2.0), (3.0, 1.5), (6.0, 0.0)];
        let members: Vec<usize> = (0..objs.len()).collect();
        let d = crowding_distance(&objs, &members);
        assert!(d[0].is_infinite() && d[4].is_infinite());
        assert!(d.iter().all(|x| *x >= 0.0));
        // The point with the widest neighbour gap (index 3, next to the
        // far extreme) is less crowded than the middle of the cluster.
        assert!(d[3] > d[2]);
        assert_eq!(crowding_distance(&objs, &[0, 1]), vec![f64::INFINITY; 2]);
    }
}
