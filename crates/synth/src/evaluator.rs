//! Cost evaluators: the black-box function `f` of Algorithm 1, with
//! caching, simulation accounting, and parallel batch evaluation.

use crate::cost::{CostParams, PpaReport};
use crate::flow::SynthesisFlow;
use crate::pareto::SharedArchive;
use crate::session::EvalSession;
use cv_pool::{WorkerPool, WorkerSlots};
use cv_prefix::PrefixGrid;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A counter of physical-simulation calls — the budget axis of every
/// figure in the paper. Clone-shareable.
#[derive(Debug, Clone, Default)]
pub struct SimCounter(Arc<AtomicUsize>);

impl SimCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current count.
    pub fn count(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `n` simulations.
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` simulations and returns the count *after* the add, as
    /// one atomic step — the pair a concurrent observer needs (a
    /// separate `add` + `count` could interleave with another thread
    /// and stamp duplicate or skipped counts).
    pub fn add_and_count(&self, n: usize) -> usize {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Overwrites the count — only meaningful while no evaluation is in
    /// flight (checkpoint restore between driver steps).
    pub fn set(&self, n: usize) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// The outcome of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Scalar cost `f(x)`.
    pub cost: f64,
    /// The underlying PPA report.
    pub ppa: PpaReport,
}

/// A replayable snapshot of a [`CachedEvaluator`]: its cache contents
/// (canonically sorted) and simulation count. See
/// [`CachedEvaluator::state`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatorState {
    /// Every cached `(grid, record)` pair, sorted by encoded grid bytes.
    pub entries: Vec<(PrefixGrid, EvalRecord)>,
    /// The simulation count at snapshot time.
    pub sims: usize,
}

impl EvaluatorState {
    /// Writes the snapshot into a checkpoint encoder.
    pub fn write_ckpt(&self, enc: &mut crate::ckpt::Enc) {
        enc.usize(self.entries.len());
        for (g, rec) in &self.entries {
            enc.grid(g);
            enc.record(rec);
        }
        enc.usize(self.sims);
    }

    /// Reads a snapshot written by [`EvaluatorState::write_ckpt`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ckpt::CkptError`] on malformed input.
    pub fn read_ckpt(dec: &mut crate::ckpt::Dec<'_>) -> Result<Self, crate::ckpt::CkptError> {
        let n = dec.seq_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((dec.grid()?, dec.record()?));
        }
        Ok(EvaluatorState {
            entries,
            sims: dec.usize()?,
        })
    }
}

/// A synthesis flow paired with cost parameters: the full black-box
/// objective `f(x) = ω·10·delay + (1−ω)·area/100`.
#[derive(Debug, Clone)]
pub struct Objective {
    flow: SynthesisFlow,
    cost: CostParams,
}

impl Objective {
    /// Couples a flow with cost parameters. The flow's sizing weight is
    /// aligned to the cost's delay weight so synthesis optimizes what the
    /// search measures.
    pub fn new(mut flow: SynthesisFlow, cost: CostParams) -> Self {
        flow.config_mut().delay_weight = cost.delay_weight;
        Objective { flow, cost }
    }

    /// Evaluates one grid (one "simulation").
    pub fn evaluate(&self, grid: &PrefixGrid) -> EvalRecord {
        let ppa = self.flow.synthesize(grid);
        EvalRecord {
            cost: self.cost.cost(&ppa),
            ppa,
        }
    }

    /// The synthesis flow.
    pub fn flow(&self) -> &SynthesisFlow {
        &self.flow
    }

    /// The cost parameters.
    pub fn cost_params(&self) -> CostParams {
        self.cost
    }

    /// A sweep of objectives over `weights`, all sharing `flow`'s
    /// structure: the scalarization ladder a frontier campaign walks.
    /// Each clone's sizing weight is aligned to its own ω (as in
    /// [`Objective::new`]), so every rung optimizes what it measures.
    pub fn weight_sweep(flow: SynthesisFlow, weights: &[f64]) -> Vec<Objective> {
        weights
            .iter()
            .map(|&w| Objective::new(flow.clone(), CostParams::new(w)))
            .collect()
    }
}

/// A cache slot: `None` while its owning thread is synthesizing.
type Slot = Arc<Mutex<Option<EvalRecord>>>;

/// One lock stripe of the sharded cache.
type Shard = Mutex<HashMap<PrefixGrid, Slot>>;

/// Number of lock stripes. A power of two comfortably above any worker
/// count we dispatch (the pool clamps at 256 threads but batch chunks
/// rarely exceed 16): with uniformly hashed keys, the probability that
/// two concurrent publishes collide on a stripe stays low, and a stripe
/// lock is held only for a `HashMap` probe — never across a synthesis.
const CACHE_SHARDS: usize = 16;

/// A lock-striped `PrefixGrid → Slot` map: the evaluator's cache,
/// sharded so concurrent cache probes and publishes from different
/// workers stop serializing on one global mutex. Claim slots (the
/// in-flight `None` state of a [`Slot`]) live inside their shard, so
/// the per-key claim discipline is unchanged — only the lock that
/// guards the *map* is split.
struct ShardedCache {
    shards: Box<[Shard]>,
}

impl ShardedCache {
    fn new() -> Self {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The stripe owning `key`. Routing uses a fixed-key hasher
    /// (deterministic across runs), though nothing observable depends on
    /// the routing: accounting and publish order are fixed by the
    /// callers, and snapshots sort canonically.
    fn shard(&self, key: &PrefixGrid) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (CACHE_SHARDS - 1)]
    }

    /// Whether `key` is cached or claimed, with a brief stripe lock.
    fn contains(&self, key: &PrefixGrid) -> bool {
        self.shard(key).lock().contains_key(key)
    }

    /// Total entries (cached + claimed) across all stripes.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// A caching, counting, thread-safe evaluator.
///
/// Re-evaluating a grid already in the cache costs nothing and does *not*
/// increment the simulation counter: like the paper's setup, the budget
/// counts calls to the physical simulator, and any production system
/// memoizes identical netlists. Grids are cached by their *legalized*
/// form, so structurally equivalent queries share one simulation (the
/// paper notes legalization "may be considered part of the objective").
pub struct CachedEvaluator {
    objective: Objective,
    // Lock-striped map of slots. Each slot is shared by every thread
    // querying that design: the first thread holds the slot's lock while
    // it synthesizes, so concurrent queries for the same key block on
    // the slot (not even the stripe, let alone the whole cache) and
    // never double-count a simulation.
    cache: ShardedCache,
    counter: SimCounter,
    // Incremental evaluation sessions, one resident per pool worker
    // (created on demand): delta-evaluation state warms up per worker
    // instead of bouncing through a shared lock, and a sequential
    // searcher keeps hitting the same resident spill session. Sessions
    // are bit-for-bit equal to `Objective::evaluate`, which is what
    // keeps the cache coherent.
    sessions: WorkerSlots<EvalSession>,
    incremental: bool,
    // Optional frontier observer: every *counted* simulation offers its
    // (grid, PPA) to the attached archive. Observation-only — see the
    // archiving contract on `attach_archive`.
    archive: Mutex<Option<SharedArchive>>,
}

/// Drop guard that un-claims a cache key if its owner unwinds before
/// publishing a result, so a panicking synthesis (e.g. a width-mismatch
/// assert) doesn't wedge the key for every later query.
struct Unclaim<'a> {
    shard: &'a Shard,
    key: &'a PrefixGrid,
    armed: bool,
}

impl Drop for Unclaim<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.lock().remove(self.key);
        }
    }
}

impl CachedEvaluator {
    /// Wraps an objective; cache misses run through pooled incremental
    /// [`EvalSession`]s.
    pub fn new(objective: Objective) -> Self {
        Self::with_incremental(objective, true)
    }

    /// Wraps an objective with the incremental fast path disabled: every
    /// cache miss re-runs the full map → buffer → size → time flow from
    /// scratch. Only useful as the baseline in A/B benchmarks and
    /// equivalence tests — results are identical either way.
    pub fn new_reference(objective: Objective) -> Self {
        Self::with_incremental(objective, false)
    }

    fn with_incremental(objective: Objective, incremental: bool) -> Self {
        CachedEvaluator {
            objective,
            cache: ShardedCache::new(),
            counter: SimCounter::new(),
            // Enough dedicated slots for the global pool; custom pools
            // (benches, tests) stay resident up to 16 workers and spill
            // beyond. Capacity only affects perf, never results.
            sessions: WorkerSlots::new(WorkerPool::global().threads().max(16)),
            incremental,
            archive: Mutex::new(None),
        }
    }

    /// Attaches a Pareto archive: from now on every counted simulation
    /// (cache miss) offers its legalized `(grid, PPA)` to the archive,
    /// so any scalar search yields an area-delay frontier for free.
    /// Returns the previously attached archive, if any.
    ///
    /// **Contract (DESIGN.md §6, Contract 7): archiving never changes
    /// search decisions.** The archive only observes — evaluation
    /// results, cache contents, and simulation accounting are bit-for-bit
    /// identical with or without an archive attached.
    pub fn attach_archive(&self, archive: SharedArchive) -> Option<SharedArchive> {
        self.archive.lock().replace(archive)
    }

    /// Detaches and returns the current archive, if any.
    pub fn detach_archive(&self) -> Option<SharedArchive> {
        self.archive.lock().take()
    }

    /// A handle to the attached archive, if any.
    pub fn archive(&self) -> Option<SharedArchive> {
        self.archive.lock().clone()
    }

    /// Whether cache misses use the incremental session path.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Runs one physical simulation of `key` (already legalized) on the
    /// current thread's resident session: a pool worker uses its own
    /// slot, a sequential caller the spill stack (preferring a spilled
    /// session whose resident state matches `prev`).
    fn simulate(&self, key: &PrefixGrid, prev: Option<&PrefixGrid>) -> EvalRecord {
        if !self.incremental {
            return self.objective.evaluate(key);
        }
        let mut session = self
            .sessions
            .checkout_where(|s| prev.is_some() && s.last_grid() == prev)
            .unwrap_or_else(|| EvalSession::from_objective(&self.objective));
        // If evaluation panics the checked-out session is simply dropped
        // (a fresh one is created on demand later), so no slot ever holds
        // a session in a half-mutated state.
        let rec = match prev {
            Some(p) => session.evaluate_delta(p, key),
            None => session.evaluate(key),
        };
        self.sessions.checkin(session);
        rec
    }

    /// The shared simulation counter.
    pub fn counter(&self) -> &SimCounter {
        &self.counter
    }

    /// The wrapped objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Number of distinct designs simulated so far.
    pub fn unique_designs(&self) -> usize {
        self.cache.len()
    }

    /// Evaluates one grid, consulting the cache.
    pub fn evaluate(&self, grid: &PrefixGrid) -> EvalRecord {
        self.evaluate_inner(grid, None)
    }

    /// Evaluates `next`, hinting that it was derived from `prev` (e.g. an
    /// SA/GA mutation): on a cache miss the incremental path prefers the
    /// pooled session already holding `prev`'s netlist and timing state,
    /// so only the changed cone is re-synthesized. Results and simulation
    /// accounting are identical to [`CachedEvaluator::evaluate`].
    pub fn evaluate_from(&self, prev: &PrefixGrid, next: &PrefixGrid) -> EvalRecord {
        self.evaluate_inner(next, Some(prev))
    }

    fn evaluate_inner(&self, grid: &PrefixGrid, prev: Option<&PrefixGrid>) -> EvalRecord {
        if grid.is_legal() {
            self.evaluate_key(grid, prev)
        } else {
            self.evaluate_key(&grid.legalized(), prev)
        }
    }

    /// [`CachedEvaluator::evaluate_inner`] for an already-legalized key.
    /// Cache hits never clone the grid; the claim path clones it once,
    /// to own the map entry.
    fn evaluate_key(&self, key: &PrefixGrid, prev: Option<&PrefixGrid>) -> EvalRecord {
        let shard = self.cache.shard(key);
        loop {
            // Claim or find the slot for this key. If we create it, lock
            // it *before* releasing the stripe lock so racers on the same
            // key block until our result is in.
            let mut map = shard.lock();
            if let Some(slot) = map.get(key).cloned() {
                drop(map);
                if let Some(rec) = *slot.lock() {
                    return rec;
                }
                // The owner unwound before publishing (its entry has been
                // un-claimed); retry and take ownership ourselves.
                continue;
            }
            let slot = Arc::new(Mutex::new(None));
            map.insert(key.clone(), Arc::clone(&slot));
            let mut guard = slot.lock();
            drop(map);
            let mut unclaim = Unclaim {
                shard,
                key,
                armed: true,
            };
            let rec = self.simulate(key, prev);
            unclaim.armed = false;
            // The post-add count is taken atomically with the add so
            // parallel batch evaluations stamp distinct, gap-free
            // simulation counts into the archive.
            let sims = self.counter.add_and_count(1);
            if let Some(archive) = self.archive.lock().clone() {
                archive.lock().insert(key.clone(), rec.ppa, sims);
            }
            *guard = Some(rec);
            return rec;
        }
    }

    /// Captures the evaluator's replayable state — every cached
    /// `(grid, record)` pair plus the simulation count — for
    /// checkpointing. Entries are sorted canonically (by encoded grid
    /// bytes) so the snapshot is deterministic regardless of hash-map
    /// iteration order. In-flight slots (a concurrent evaluation that
    /// has claimed its key but not yet published) are skipped; drivers
    /// snapshot between steps, where none exist.
    ///
    /// Restoring the snapshot into a *fresh* evaluator of the same
    /// objective ([`CachedEvaluator::restore_state`]) makes it
    /// observationally identical to the original: the same queries hit
    /// the cache, so budget accounting resumes without double-counting —
    /// the property Contract 8's kill-and-resume equality rests on.
    pub fn state(&self) -> EvaluatorState {
        let mut entries: Vec<(PrefixGrid, EvalRecord)> = self
            .cache
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .iter()
                    .filter_map(|(k, slot)| slot.lock().map(|rec| (k.clone(), rec)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut keyed: Vec<(Vec<u8>, (PrefixGrid, EvalRecord))> = entries
            .drain(..)
            .map(|e| {
                let mut enc = crate::ckpt::Enc::new();
                enc.grid(&e.0);
                (enc.finish(), e)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        EvaluatorState {
            entries: keyed.into_iter().map(|(_, e)| e).collect(),
            sims: self.counter.count(),
        }
    }

    /// Restores a snapshot captured by [`CachedEvaluator::state`]:
    /// replaces the cache contents and the simulation count. Intended
    /// for a freshly built evaluator of the same objective; any existing
    /// cache entries are dropped.
    pub fn restore_state(&self, state: &EvaluatorState) {
        for shard in self.cache.shards.iter() {
            shard.lock().clear();
        }
        for (g, rec) in &state.entries {
            self.cache
                .shard(g)
                .lock()
                .insert(g.clone(), Arc::new(Mutex::new(Some(*rec))));
        }
        self.counter.set(state.sims);
    }

    /// Publishes a result simulated outside the cache claim discipline
    /// (the parallel batch path): claims the key and stamps the counter
    /// exactly like a sequential cache miss. Returns the `(ppa, sims)`
    /// archive offer when this call published (the caller replays offers
    /// in first-occurrence order under one archive lock), and `None`
    /// when a racing evaluation got there first — its owner already
    /// counted and offered it.
    fn publish_slot(&self, key: &PrefixGrid, rec: EvalRecord) -> Option<(PpaReport, usize)> {
        let shard = self.cache.shard(key);
        loop {
            let mut map = shard.lock();
            if let Some(slot) = map.get(key).cloned() {
                drop(map);
                if slot.lock().is_some() {
                    return None;
                }
                // The claiming owner unwound; retry and claim ourselves.
                continue;
            }
            let slot = Arc::new(Mutex::new(None));
            map.insert(key.clone(), Arc::clone(&slot));
            let mut guard = slot.lock();
            drop(map);
            let sims = self.counter.add_and_count(1);
            *guard = Some(rec);
            return Some((rec.ppa, sims));
        }
    }

    /// Evaluates a batch across the shared worker pool. See
    /// [`CachedEvaluator::evaluate_batch_on`].
    pub fn evaluate_batch(&self, grids: &[PrefixGrid], threads: usize) -> Vec<EvalRecord> {
        self.evaluate_batch_on(WorkerPool::global(), grids, threads)
    }

    /// Evaluates a batch across `pool` (at most `threads` result
    /// chunks). Results align with the input order.
    ///
    /// **Deterministically equal to the sequential path**: unique
    /// uncached designs are simulated in parallel into per-chunk result
    /// slots (lock-free disjoint writes, one resident session per
    /// worker), then *published* — counted and inserted into the cache
    /// sequentially in first-occurrence order, with the archive offers
    /// replayed in that same order under a single archive lock. Batch
    /// output order, the final simulation count, and every archive
    /// observation stamp are therefore bit-identical to
    /// `grids.iter().map(|g| evaluate(g))`, at every thread count and
    /// pool size.
    pub fn evaluate_batch_on(
        &self,
        pool: &WorkerPool,
        grids: &[PrefixGrid],
        threads: usize,
    ) -> Vec<EvalRecord> {
        if grids.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, grids.len());
        // Legalize lazily: already-legal grids are borrowed, not cloned.
        let keys: Vec<Cow<'_, PrefixGrid>> = grids
            .iter()
            .map(|g| {
                if g.is_legal() {
                    Cow::Borrowed(g)
                } else {
                    Cow::Owned(g.legalized())
                }
            })
            .collect();
        // Unique keys in first-occurrence order (the order the
        // sequential path would count them in), deduplicated by
        // reference — no clones, no cache lock. Only the pending misses
        // are then cloned, outside any stripe lock (`contains` takes its
        // stripe lock per probe, for just the probe).
        let mut seen: HashSet<&PrefixGrid> = HashSet::with_capacity(keys.len());
        let pending: Vec<PrefixGrid> = keys
            .iter()
            .map(Cow::as_ref)
            .filter(|k| seen.insert(*k) && !self.cache.contains(k))
            .cloned()
            .collect();
        let mut results: Vec<Option<EvalRecord>> = vec![None; pending.len()];
        if threads > 1 && pending.len() > 1 {
            let chunk = pending.len().div_ceil(threads);
            pool.scatter(&mut results, chunk, |c, out| {
                for (slot, key) in out.iter_mut().zip(&pending[c * chunk..]) {
                    *slot = Some(self.simulate(key, None));
                }
            });
        } else {
            for (slot, key) in results.iter_mut().zip(&pending) {
                *slot = Some(self.simulate(key, None));
            }
        }
        // Publish phase, sequential in first-occurrence order. Archive
        // offers are accumulated and replayed in that same order under
        // one archive lock, so the publish loop itself never serializes
        // on the archive (Contract 7 holds: same offers, same order,
        // same stamps as the sequential path).
        let archive = self.archive.lock().clone();
        let mut offers: Vec<(PrefixGrid, PpaReport, usize)> = Vec::new();
        for (key, rec) in pending.iter().zip(results) {
            if let Some((ppa, sims)) = self.publish_slot(key, rec.expect("chunk simulated")) {
                if archive.is_some() {
                    offers.push((key.clone(), ppa, sims));
                }
            }
        }
        if let Some(archive) = archive {
            archive.lock().insert_all(offers);
        }
        // Every key is now cached (or claimed by a racing evaluation):
        // plain lookups, no further counting.
        keys.iter().map(|k| self.evaluate_key(k, None)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::nangate45_like;
    use cv_prefix::{mutate, topologies, CircuitKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluator(n: usize, w: f64) -> CachedEvaluator {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, n);
        CachedEvaluator::new(Objective::new(flow, CostParams::new(w)))
    }

    #[test]
    fn cache_hits_do_not_count() {
        let ev = evaluator(16, 0.66);
        let g = topologies::sklansky(16);
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g);
        assert_eq!(a, b);
        assert_eq!(ev.counter().count(), 1);
        assert_eq!(ev.unique_designs(), 1);
    }

    #[test]
    fn illegal_and_legalized_twins_share_a_simulation() {
        let ev = evaluator(16, 0.66);
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g.legalized());
        assert_eq!(a, b);
        assert_eq!(ev.counter().count(), 1);
    }

    #[test]
    fn batch_matches_serial_and_counts_unique() {
        let ev = evaluator(12, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut grids: Vec<PrefixGrid> = (0..10)
            .map(|_| mutate::random_grid(12, 0.25, &mut rng))
            .collect();
        grids.push(grids[0].clone()); // duplicate
        let parallel = ev.evaluate_batch(&grids, 4);
        let serial: Vec<EvalRecord> = grids.iter().map(|g| ev.evaluate(g)).collect();
        assert_eq!(parallel, serial);
        assert!(ev.counter().count() <= 10, "duplicate must not re-simulate");
    }

    #[test]
    fn cost_orders_match_weight() {
        // At ω→1 a fast design wins; at ω→0 a small one wins.
        let fast_ev = evaluator(32, 0.99);
        let small_ev = evaluator(32, 0.01);
        let rip = topologies::ripple(32);
        let ks = topologies::kogge_stone(32);
        assert!(fast_ev.evaluate(&ks).cost < fast_ev.evaluate(&rip).cost);
        assert!(small_ev.evaluate(&rip).cost < small_ev.evaluate(&ks).cost);
    }

    #[test]
    fn incremental_and_reference_paths_agree() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 12);
        let fast = CachedEvaluator::new(Objective::new(flow.clone(), CostParams::new(0.66)));
        let reference = CachedEvaluator::new_reference(Objective::new(flow, CostParams::new(0.66)));
        assert!(fast.is_incremental() && !reference.is_incremental());
        let mut rng = StdRng::seed_from_u64(5);
        let mut grid = topologies::sklansky(12);
        for _ in 0..8 {
            let next = mutate::neighbour(&grid, &mut rng);
            let a = fast.evaluate_from(&grid, &next);
            let b = reference.evaluate(&next);
            assert_eq!(a, b, "fast path must be observationally identical");
            grid = next;
        }
        assert_eq!(fast.counter().count(), reference.counter().count());
    }

    #[test]
    fn evaluate_from_counts_like_evaluate() {
        let ev = evaluator(12, 0.5);
        let base = topologies::brent_kung(12);
        let mut cand = base.clone();
        cand.set(11, 5, true).unwrap();
        cand.legalize();
        let a = ev.evaluate_from(&base, &cand);
        assert_eq!(
            ev.counter().count(),
            1,
            "the hint itself is not a counted simulation"
        );
        let b = ev.evaluate(&cand);
        assert_eq!(a, b);
        assert_eq!(ev.counter().count(), 1, "second query is a cache hit");
        let _ = ev.evaluate(&base);
        assert_eq!(ev.counter().count(), 2, "base still counts when queried");
    }

    #[test]
    fn empty_batch_is_fine() {
        let ev = evaluator(8, 0.5);
        assert!(ev.evaluate_batch(&[], 4).is_empty());
        assert!(ev.evaluate_batch(&[], 0).is_empty());
    }

    #[test]
    fn batch_degenerate_thread_counts_do_not_panic_and_stay_order_stable() {
        // Regression: `threads: 0` must fall back to serial and
        // `threads > grids.len()` must clamp — neither may panic, and
        // both must return results aligned with the input order,
        // identical to the serial path.
        let mut rng = StdRng::seed_from_u64(11);
        let grids: Vec<PrefixGrid> = (0..5)
            .map(|_| mutate::random_grid(10, 0.3, &mut rng))
            .collect();
        let serial_ev = evaluator(10, 0.5);
        let serial: Vec<EvalRecord> = grids.iter().map(|g| serial_ev.evaluate(g)).collect();
        for threads in [0, 1, grids.len() + 1, 64] {
            let ev = evaluator(10, 0.5);
            let batch = ev.evaluate_batch(&grids, threads);
            assert_eq!(batch, serial, "threads={threads} must match serial order");
            assert_eq!(ev.counter().count(), serial_ev.counter().count());
        }
    }

    #[test]
    fn batch_order_and_stamps_match_the_sequential_path() {
        // Regression for the batch determinism contract: the parallel
        // batch path must reproduce the sequential path exactly —
        // result order, the final simulation count, and every archive
        // observation stamp (simulation indices per design) — at every
        // thread count. Duplicates inside the batch must be counted
        // once, at their first occurrence.
        use crate::pareto::ParetoArchive;
        let mut rng = StdRng::seed_from_u64(21);
        let mut grids: Vec<PrefixGrid> = (0..9)
            .map(|_| mutate::random_grid(10, 0.3, &mut rng))
            .collect();
        grids.push(grids[2].clone());
        grids.push(grids[0].clone());
        let seq = evaluator(10, 0.5);
        let seq_arch = ParetoArchive::new().with_log().into_shared();
        seq.attach_archive(seq_arch.clone());
        let seq_records: Vec<EvalRecord> = grids.iter().map(|g| seq.evaluate(g)).collect();
        for threads in [1, 2, 3, grids.len(), 64] {
            let ev = evaluator(10, 0.5);
            let arch = ParetoArchive::new().with_log().into_shared();
            ev.attach_archive(arch.clone());
            let batch = ev.evaluate_batch(&grids, threads);
            assert_eq!(batch, seq_records, "threads={threads}: batch output order");
            assert_eq!(
                ev.counter().count(),
                seq.counter().count(),
                "threads={threads}: simulation count"
            );
            assert_eq!(
                arch.lock().observations(),
                seq_arch.lock().observations(),
                "threads={threads}: observation stamps"
            );
            assert_eq!(
                arch.lock().to_ckpt_bytes(),
                seq_arch.lock().to_ckpt_bytes(),
                "threads={threads}: archive bytes"
            );
        }
    }

    #[test]
    fn attached_archive_captures_every_counted_simulation() {
        use crate::pareto::ParetoArchive;
        let ev = evaluator(12, 0.5);
        let baseline = ev.evaluate(&topologies::ripple(12)); // pre-attach: not archived
        let archive = ParetoArchive::new().with_log().into_shared();
        assert!(ev.attach_archive(archive.clone()).is_none());
        let a = ev.evaluate(&topologies::sklansky(12));
        let b = ev.evaluate(&topologies::brent_kung(12));
        let _cache_hit = ev.evaluate(&topologies::sklansky(12));
        {
            let arch = archive.lock();
            assert_eq!(
                arch.observations().len(),
                2,
                "one observation per counted simulation, none for cache hits"
            );
            assert!(!arch.is_empty() && arch.len() <= 2);
        }
        // Contract 7: archiving never changes search decisions — results
        // match an archive-free evaluator bit-for-bit.
        let plain = evaluator(12, 0.5);
        assert_eq!(plain.evaluate(&topologies::ripple(12)), baseline);
        assert_eq!(plain.evaluate(&topologies::sklansky(12)), a);
        assert_eq!(plain.evaluate(&topologies::brent_kung(12)), b);
        assert!(ev.detach_archive().is_some());
        assert!(ev.archive().is_none());
        let _ = ev.evaluate(&topologies::kogge_stone(12));
        assert_eq!(archive.lock().observations().len(), 2, "detached = silent");
    }

    #[test]
    fn snapshot_restore_preserves_cache_hits_and_counts() {
        let ev = evaluator(10, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let grids: Vec<PrefixGrid> = (0..6)
            .map(|_| mutate::random_grid(10, 0.3, &mut rng))
            .collect();
        for g in &grids {
            let _ = ev.evaluate(g);
        }
        let state = ev.state();
        assert_eq!(state.sims, ev.counter().count());
        // Determinism: snapshotting twice yields identical bytes.
        let bytes = {
            let mut e = crate::ckpt::Enc::new();
            state.write_ckpt(&mut e);
            e.finish()
        };
        let bytes2 = {
            let mut e = crate::ckpt::Enc::new();
            ev.state().write_ckpt(&mut e);
            e.finish()
        };
        assert_eq!(bytes, bytes2, "snapshot must be canonical");
        let decoded = EvaluatorState::read_ckpt(&mut crate::ckpt::Dec::new(&bytes)).unwrap();
        assert_eq!(decoded, state);
        // Restore into a fresh evaluator: old queries are cache hits
        // (not re-counted), new queries count from the restored total.
        let fresh = evaluator(10, 0.5);
        fresh.restore_state(&decoded);
        let before = fresh.counter().count();
        assert_eq!(before, state.sims);
        for g in &grids {
            let a = fresh.evaluate(g);
            let b = ev.evaluate(g);
            assert_eq!(a, b);
        }
        assert_eq!(fresh.counter().count(), before, "all hits, none counted");
        let _ = fresh.evaluate(&topologies::sklansky(10));
        assert_eq!(fresh.counter().count(), before + 1);
    }

    #[test]
    fn weight_sweep_builds_aligned_objectives() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 12);
        let sweep = Objective::weight_sweep(flow, &[0.1, 0.5, 0.9]);
        assert_eq!(sweep.len(), 3);
        let g = topologies::sklansky(12);
        for (obj, w) in sweep.iter().zip([0.1, 0.5, 0.9]) {
            assert_eq!(obj.cost_params().delay_weight, w);
            assert_eq!(
                obj.flow().config().delay_weight,
                w,
                "sizing weight aligned to the cost weight"
            );
            let rec = obj.evaluate(&g);
            assert_eq!(rec.cost, obj.cost_params().cost(&rec.ppa));
        }
    }

    #[test]
    fn panicking_evaluation_does_not_wedge_the_key() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let ev = evaluator(8, 0.5);
        let wrong_width = topologies::sklansky(12);
        // Width mismatch panics inside the flow; the cache key must be
        // un-claimed so later queries see the original panic, and the
        // evaluator must stay usable for other designs.
        for _ in 0..2 {
            let r = catch_unwind(AssertUnwindSafe(|| ev.evaluate(&wrong_width)));
            let msg = *r
                .expect_err("width mismatch must panic")
                .downcast::<String>()
                .unwrap();
            assert!(msg.contains("width mismatch"), "unexpected panic: {msg}");
        }
        assert_eq!(ev.counter().count(), 0, "failed evaluations must not count");
        let ok = ev.evaluate(&topologies::sklansky(8));
        assert!(ok.cost.is_finite());
        assert_eq!(ev.counter().count(), 1);
    }
}
