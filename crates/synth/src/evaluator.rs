//! Cost evaluators: the black-box function `f` of Algorithm 1, with
//! caching, simulation accounting, and parallel batch evaluation.

use crate::cost::{CostParams, PpaReport};
use crate::flow::SynthesisFlow;
use cv_prefix::PrefixGrid;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A counter of physical-simulation calls — the budget axis of every
/// figure in the paper. Clone-shareable.
#[derive(Debug, Clone, Default)]
pub struct SimCounter(Arc<AtomicUsize>);

impl SimCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current count.
    pub fn count(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `n` simulations.
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
}

/// The outcome of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Scalar cost `f(x)`.
    pub cost: f64,
    /// The underlying PPA report.
    pub ppa: PpaReport,
}

/// A synthesis flow paired with cost parameters: the full black-box
/// objective `f(x) = ω·10·delay + (1−ω)·area/100`.
#[derive(Debug, Clone)]
pub struct Objective {
    flow: SynthesisFlow,
    cost: CostParams,
}

impl Objective {
    /// Couples a flow with cost parameters. The flow's sizing weight is
    /// aligned to the cost's delay weight so synthesis optimizes what the
    /// search measures.
    pub fn new(mut flow: SynthesisFlow, cost: CostParams) -> Self {
        flow.config_mut().delay_weight = cost.delay_weight;
        Objective { flow, cost }
    }

    /// Evaluates one grid (one "simulation").
    pub fn evaluate(&self, grid: &PrefixGrid) -> EvalRecord {
        let ppa = self.flow.synthesize(grid);
        EvalRecord { cost: self.cost.cost(&ppa), ppa }
    }

    /// The synthesis flow.
    pub fn flow(&self) -> &SynthesisFlow {
        &self.flow
    }

    /// The cost parameters.
    pub fn cost_params(&self) -> CostParams {
        self.cost
    }
}

/// A caching, counting, thread-safe evaluator.
///
/// Re-evaluating a grid already in the cache costs nothing and does *not*
/// increment the simulation counter: like the paper's setup, the budget
/// counts calls to the physical simulator, and any production system
/// memoizes identical netlists. Grids are cached by their *legalized*
/// form, so structurally equivalent queries share one simulation (the
/// paper notes legalization "may be considered part of the objective").
pub struct CachedEvaluator {
    objective: Objective,
    cache: Mutex<HashMap<PrefixGrid, EvalRecord>>,
    counter: SimCounter,
}

impl CachedEvaluator {
    /// Wraps an objective.
    pub fn new(objective: Objective) -> Self {
        CachedEvaluator { objective, cache: Mutex::new(HashMap::new()), counter: SimCounter::new() }
    }

    /// The shared simulation counter.
    pub fn counter(&self) -> &SimCounter {
        &self.counter
    }

    /// The wrapped objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Number of distinct designs simulated so far.
    pub fn unique_designs(&self) -> usize {
        self.cache.lock().len()
    }

    /// Evaluates one grid, consulting the cache.
    pub fn evaluate(&self, grid: &PrefixGrid) -> EvalRecord {
        let key = if grid.is_legal() { grid.clone() } else { grid.legalized() };
        if let Some(hit) = self.cache.lock().get(&key) {
            return *hit;
        }
        let rec = self.objective.evaluate(&key);
        self.counter.add(1);
        self.cache.lock().insert(key, rec);
        rec
    }

    /// Evaluates a batch in parallel across `threads` worker threads
    /// (clamped to the batch size). Results align with the input order.
    pub fn evaluate_batch(&self, grids: &[PrefixGrid], threads: usize) -> Vec<EvalRecord> {
        if grids.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, grids.len());
        if threads == 1 {
            return grids.iter().map(|g| self.evaluate(g)).collect();
        }
        let results: Vec<Mutex<Option<EvalRecord>>> =
            grids.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= grids.len() {
                        break;
                    }
                    *results[i].lock() = Some(self.evaluate(&grids[i]));
                });
            }
        })
        .expect("evaluation workers must not panic");
        results
            .into_iter()
            .map(|m| m.into_inner().expect("all batch slots filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::nangate45_like;
    use cv_prefix::{mutate, topologies, CircuitKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluator(n: usize, w: f64) -> CachedEvaluator {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, n);
        CachedEvaluator::new(Objective::new(flow, CostParams::new(w)))
    }

    #[test]
    fn cache_hits_do_not_count() {
        let ev = evaluator(16, 0.66);
        let g = topologies::sklansky(16);
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g);
        assert_eq!(a, b);
        assert_eq!(ev.counter().count(), 1);
        assert_eq!(ev.unique_designs(), 1);
    }

    #[test]
    fn illegal_and_legalized_twins_share_a_simulation() {
        let ev = evaluator(16, 0.66);
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g.legalized());
        assert_eq!(a, b);
        assert_eq!(ev.counter().count(), 1);
    }

    #[test]
    fn batch_matches_serial_and_counts_unique() {
        let ev = evaluator(12, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut grids: Vec<PrefixGrid> =
            (0..10).map(|_| mutate::random_grid(12, 0.25, &mut rng)).collect();
        grids.push(grids[0].clone()); // duplicate
        let parallel = ev.evaluate_batch(&grids, 4);
        let serial: Vec<EvalRecord> = grids.iter().map(|g| ev.evaluate(g)).collect();
        assert_eq!(parallel, serial);
        assert!(ev.counter().count() <= 10, "duplicate must not re-simulate");
    }

    #[test]
    fn cost_orders_match_weight() {
        // At ω→1 a fast design wins; at ω→0 a small one wins.
        let fast_ev = evaluator(32, 0.99);
        let small_ev = evaluator(32, 0.01);
        let rip = topologies::ripple(32);
        let ks = topologies::kogge_stone(32);
        assert!(fast_ev.evaluate(&ks).cost < fast_ev.evaluate(&rip).cost);
        assert!(small_ev.evaluate(&rip).cost < small_ev.evaluate(&ks).cost);
    }

    #[test]
    fn empty_batch_is_fine() {
        let ev = evaluator(8, 0.5);
        assert!(ev.evaluate_batch(&[], 4).is_empty());
    }
}
