//! Greedy critical-path gate sizing.

use cv_cells::CellLibrary;
use cv_netlist::{GateId, Netlist};
use cv_sta::{analyze, critical_gates, IoTiming, TimingEngine, TimingReport};

/// Greedily upsizes gates on the critical path while each move improves
/// the *cost-weighted* objective `ω·10·Δdelay + (1−ω)·Δarea/100 < 0`.
///
/// Each iteration re-times the design, walks the critical path, and
/// applies the single best upsize; it stops after `max_moves` moves or
/// when no move helps. Returns `(moves_applied, final_report)`.
///
/// The interaction between sizing and structure is what makes the true
/// cost landscape non-analytic: a structurally "deep" design can beat a
/// "shallow" one once the shallow design's fanout forces huge cells.
pub fn size_gates(
    netlist: &mut Netlist,
    lib: &CellLibrary,
    io: &IoTiming,
    delay_weight: f64,
    max_moves: usize,
) -> (usize, TimingReport) {
    let mut report = analyze(netlist, lib, io);
    let mut moves = 0usize;
    while moves < max_moves {
        let path = critical_gates(&report);
        let mut best: Option<(usize, cv_cells::Drive, f64)> = None;
        let current_score = delay_weight * 10.0 * report.delay_ns
            + (1.0 - delay_weight) * netlist.area_um2(lib) / 100.0;
        for gid in path {
            let old_drive = netlist.drive(gid);
            let Some(bigger) = old_drive.upsized() else {
                continue;
            };
            netlist.set_drive(gid, bigger);
            let trial = analyze(netlist, lib, io);
            let trial_score = delay_weight * 10.0 * trial.delay_ns
                + (1.0 - delay_weight) * netlist.area_um2(lib) / 100.0;
            let gain = current_score - trial_score;
            netlist.set_drive(gid, old_drive);
            if gain > 1e-9
                && match best {
                    None => true,
                    Some((_, _, g)) => gain > g,
                }
            {
                best = Some((gid, bigger, gain));
            }
        }
        match best {
            Some((gid, drive, _)) => {
                netlist.set_drive(gid, drive);
                report = analyze(netlist, lib, io);
                moves += 1;
            }
            None => break,
        }
    }
    (moves, report)
}

/// Delta-STA twin of [`size_gates`]: the same greedy loop, with every
/// per-trial full re-analysis replaced by an incremental cone update on
/// `engine`. Because [`TimingEngine`] is bit-for-bit equal to
/// [`analyze`], this makes *exactly* the same sequence of sizing
/// decisions — "Contract 6" in `DESIGN.md` — while doing only
/// cone-of-influence work per trial.
///
/// `engine` is rebuilt for `netlist` on entry; `path` is caller-provided
/// scratch so a hot evaluation loop stays allocation-free. Returns
/// `(moves_applied, final_delay_ns)`.
pub fn size_gates_incremental(
    netlist: &mut Netlist,
    lib: &CellLibrary,
    io: &IoTiming,
    delay_weight: f64,
    max_moves: usize,
    engine: &mut TimingEngine,
    path: &mut Vec<GateId>,
) -> (usize, f64) {
    engine.rebuild(netlist, lib, io);
    let mut delay_ns = engine.delay(netlist).delay_ns;
    let mut moves = 0usize;
    while moves < max_moves {
        engine.critical_gates_into(netlist, path);
        let mut best: Option<(GateId, cv_cells::Drive, f64)> = None;
        let current_score =
            delay_weight * 10.0 * delay_ns + (1.0 - delay_weight) * netlist.area_um2(lib) / 100.0;
        for &gid in path.iter() {
            let old_drive = netlist.drive(gid);
            let Some(bigger) = old_drive.upsized() else {
                continue;
            };
            engine.set_drive(netlist, lib, gid, bigger);
            let trial_score = delay_weight * 10.0 * engine.delay(netlist).delay_ns
                + (1.0 - delay_weight) * netlist.area_um2(lib) / 100.0;
            let gain = current_score - trial_score;
            engine.set_drive(netlist, lib, gid, old_drive);
            if gain > 1e-9
                && match best {
                    None => true,
                    Some((_, _, g)) => gain > g,
                }
            {
                best = Some((gid, bigger, gain));
            }
        }
        match best {
            Some((gid, drive, _)) => {
                engine.set_drive(netlist, lib, gid, drive);
                delay_ns = engine.delay(netlist).delay_ns;
                moves += 1;
            }
            None => break,
        }
    }
    (moves, delay_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::nangate45_like;
    use cv_netlist::map_adder;
    use cv_prefix::topologies;

    #[test]
    fn sizing_reduces_delay_at_high_delay_weight() {
        let lib = nangate45_like();
        let graph = topologies::sklansky(16).to_graph();
        let mut nl = map_adder(&graph, &lib);
        let io = IoTiming::uniform(16);
        let before = analyze(&nl, &lib, &io).delay_ns;
        let (moves, report) = size_gates(&mut nl, &lib, &io, 0.95, 50);
        assert!(moves > 0, "at ω=0.95 the sizer must act");
        assert!(
            report.delay_ns < before,
            "{} -> {}",
            before,
            report.delay_ns
        );
    }

    #[test]
    fn sizing_is_conservative_at_low_delay_weight() {
        let lib = nangate45_like();
        let graph = topologies::sklansky(16).to_graph();
        let mut nl_fast = map_adder(&graph, &lib);
        let mut nl_small = map_adder(&graph, &lib);
        let io = IoTiming::uniform(16);
        let (moves_fast, _) = size_gates(&mut nl_fast, &lib, &io, 0.95, 200);
        let (moves_small, _) = size_gates(&mut nl_small, &lib, &io, 0.05, 200);
        assert!(
            moves_small < moves_fast,
            "area-dominated weight should size less ({moves_small} vs {moves_fast})"
        );
        assert!(nl_small.area_um2(&lib) <= nl_fast.area_um2(&lib));
    }

    #[test]
    fn move_cap_respected() {
        let lib = nangate45_like();
        let mut nl = map_adder(&topologies::sklansky(32).to_graph(), &lib);
        let io = IoTiming::uniform(32);
        let (moves, _) = size_gates(&mut nl, &lib, &io, 1.0, 3);
        assert!(moves <= 3);
    }

    #[test]
    fn incremental_sizer_makes_identical_decisions() {
        let lib = nangate45_like();
        for w in [0.05, 0.66, 0.95] {
            let graph = topologies::sklansky(16).to_graph();
            let mut reference = map_adder(&graph, &lib);
            let mut incremental = map_adder(&graph, &lib);
            let io = IoTiming::uniform(16);
            let (ref_moves, ref_report) = size_gates(&mut reference, &lib, &io, w, 50);
            let mut engine = TimingEngine::new();
            let mut path = Vec::new();
            let (inc_moves, inc_delay) =
                size_gates_incremental(&mut incremental, &lib, &io, w, 50, &mut engine, &mut path);
            assert_eq!(ref_moves, inc_moves, "ω={w}");
            assert_eq!(ref_report.delay_ns.to_bits(), inc_delay.to_bits(), "ω={w}");
            assert_eq!(reference, incremental, "ω={w}: different drives chosen");
        }
    }

    #[test]
    fn sizing_never_worsens_weighted_cost() {
        let lib = nangate45_like();
        for w in [0.33, 0.66, 0.95] {
            let mut nl = map_adder(&topologies::brent_kung(16).to_graph(), &lib);
            let io = IoTiming::uniform(16);
            let r0 = analyze(&nl, &lib, &io);
            let score0 = w * 10.0 * r0.delay_ns + (1.0 - w) * nl.area_um2(&lib) / 100.0;
            let (_, r1) = size_gates(&mut nl, &lib, &io, w, 100);
            let score1 = w * 10.0 * r1.delay_ns + (1.0 - w) * nl.area_um2(&lib) / 100.0;
            assert!(score1 <= score0 + 1e-9, "ω={w}: {score0} -> {score1}");
        }
    }
}
