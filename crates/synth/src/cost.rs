//! The paper's scalar cost function and PPA reports.

use serde::{Deserialize, Serialize};

/// Post-synthesis power/performance/area report (power is not modelled;
/// the paper's cost uses only area and delay).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpaReport {
    /// Total standard-cell area, µm².
    pub area_um2: f64,
    /// Effective critical-path delay, ns.
    pub delay_ns: f64,
    /// Gates in the final netlist (after buffering).
    pub gate_count: usize,
    /// Buffers inserted by fanout repair.
    pub buffers_inserted: usize,
    /// Gates upsized by the sizing pass.
    pub gates_upsized: usize,
}

/// The scalar objective `f(x) = ω·10·delay + (1−ω)·area/100` (paper §3:
/// area in µm²/100, delay in ns×10, so both terms are O(1)-scaled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// The delay weight ω ∈ [0, 1].
    pub delay_weight: f64,
}

impl CostParams {
    /// Creates cost parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `delay_weight` lies in `[0, 1]`.
    pub fn new(delay_weight: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&delay_weight),
            "delay weight {delay_weight} outside [0, 1]"
        );
        CostParams { delay_weight }
    }

    /// Scalar cost of a PPA report.
    #[inline]
    pub fn cost(&self, ppa: &PpaReport) -> f64 {
        self.delay_weight * 10.0 * ppa.delay_ns + (1.0 - self.delay_weight) * ppa.area_um2 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppa(area: f64, delay: f64) -> PpaReport {
        PpaReport {
            area_um2: area,
            delay_ns: delay,
            gate_count: 0,
            buffers_inserted: 0,
            gates_upsized: 0,
        }
    }

    #[test]
    fn matches_table1_arithmetic() {
        // Table 1, ω=0.33 VAE row: area 449 µm², delay 0.465 ns, cost 4.54.
        let c = CostParams::new(0.33).cost(&ppa(449.0, 0.465));
        assert!((c - 4.54).abs() < 0.02, "got {c}");
        // ω=0.95 row: area 860, delay 0.333, cost 3.58.
        let c = CostParams::new(0.95).cost(&ppa(860.0, 0.333));
        assert!((c - 3.59).abs() < 0.02, "got {c}");
    }

    #[test]
    fn extremes_isolate_terms() {
        assert_eq!(CostParams::new(1.0).cost(&ppa(500.0, 0.4)), 4.0);
        assert_eq!(CostParams::new(0.0).cost(&ppa(500.0, 0.4)), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_weight() {
        let _ = CostParams::new(1.5);
    }
}
