//! The end-to-end synthesis flow: map → buffer → size → time.

use crate::buffering::buffer_high_fanout;
use crate::cost::PpaReport;
use crate::sizing::size_gates;
use cv_cells::CellLibrary;
use cv_netlist::map_circuit;
use cv_prefix::{CircuitKind, PrefixGrid};
use cv_sta::IoTiming;
use serde::{Deserialize, Serialize};

/// Tunables of the synthesis flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// IO timing constraints (per-bit arrivals / required offsets).
    pub io: IoTiming,
    /// Maximum sink pins per net before fanout repair kicks in.
    pub max_fanout: usize,
    /// Upper bound on greedy sizing moves.
    pub sizing_moves: usize,
    /// Delay weight ω the sizer optimizes for (normally matched to the
    /// cost function's ω).
    pub delay_weight: f64,
}

impl SynthesisConfig {
    /// Defaults for width `n`: uniform IO timing, fanout limit 8,
    /// 24 sizing moves, ω = 0.66.
    pub fn for_width(n: usize) -> Self {
        SynthesisConfig {
            io: IoTiming::uniform(n),
            max_fanout: 8,
            sizing_moves: 24,
            delay_weight: 0.66,
        }
    }
}

/// A reusable synthesis flow for one (library, circuit kind, width).
///
/// `synthesize` is deterministic and pure: equal grids produce equal
/// reports, which is what makes caching in
/// [`crate::CachedEvaluator`] sound.
#[derive(Debug, Clone)]
pub struct SynthesisFlow {
    lib: CellLibrary,
    kind: CircuitKind,
    width: usize,
    config: SynthesisConfig,
}

impl SynthesisFlow {
    /// Creates a flow with default configuration for `width`.
    pub fn new(lib: CellLibrary, kind: CircuitKind, width: usize) -> Self {
        let config = SynthesisConfig::for_width(width);
        SynthesisFlow {
            lib,
            kind,
            width,
            config,
        }
    }

    /// Creates a flow with explicit configuration.
    pub fn with_config(
        lib: CellLibrary,
        kind: CircuitKind,
        width: usize,
        config: SynthesisConfig,
    ) -> Self {
        SynthesisFlow {
            lib,
            kind,
            width,
            config,
        }
    }

    /// The circuit bitwidth this flow synthesizes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The circuit kind.
    pub fn kind(&self) -> CircuitKind {
        self.kind
    }

    /// The target library.
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    /// The flow configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to swap IO timings).
    pub fn config_mut(&mut self) -> &mut SynthesisConfig {
        &mut self.config
    }

    /// Synthesizes a grid: legalization (part of the objective, paper
    /// §5.1), technology mapping, fanout buffering, cost-aware gate
    /// sizing, and final timing.
    ///
    /// # Panics
    ///
    /// Panics if `grid.width() != self.width()`.
    pub fn synthesize(&self, grid: &PrefixGrid) -> PpaReport {
        assert_eq!(grid.width(), self.width, "grid width mismatch");
        let legal = if grid.is_legal() {
            grid.clone()
        } else {
            grid.legalized()
        };
        let graph = legal.to_graph();
        let mut netlist = map_circuit(&graph, self.kind, &self.lib);
        let buffers = buffer_high_fanout(&mut netlist, &self.lib, self.config.max_fanout);
        let (upsized, report) = size_gates(
            &mut netlist,
            &self.lib,
            &self.config.io,
            self.config.delay_weight,
            self.config.sizing_moves,
        );
        PpaReport {
            area_um2: netlist.area_um2(&self.lib),
            delay_ns: report.delay_ns,
            gate_count: netlist.gate_count(),
            buffers_inserted: buffers,
            gates_upsized: upsized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_cells::{nangate45_like, scaled_8nm_like};
    use cv_prefix::topologies;

    #[test]
    fn flow_is_deterministic() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 16);
        let g = topologies::han_carlson(16);
        assert_eq!(flow.synthesize(&g), flow.synthesize(&g));
    }

    #[test]
    fn illegal_grids_are_legalized_first() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 16);
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        let ppa = flow.synthesize(&g); // must not panic
        assert!(ppa.area_um2 > 0.0);
        // And must equal the cost of the legalized twin (paper: the cost
        // predictor should infer the same value for equivalent circuits).
        assert_eq!(ppa, flow.synthesize(&g.legalized()));
    }

    #[test]
    fn area_delay_tradeoff_held_across_topologies() {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 32);
        let rip = flow.synthesize(&topologies::ripple(32));
        let ks = flow.synthesize(&topologies::kogge_stone(32));
        assert!(rip.area_um2 < ks.area_um2, "ripple smaller");
        assert!(rip.delay_ns > ks.delay_ns, "ripple slower");
    }

    #[test]
    fn sixty_four_bit_numbers_near_paper_range() {
        // Table 1 reports 64-bit adders of 449–902 µm² and 0.33–0.54 ns.
        // Classical designs under our calibrated flow should land in the
        // same order of magnitude.
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 64);
        for (name, g) in topologies::all_classical(64) {
            if name == "ripple" {
                continue; // intentionally far off the Pareto front
            }
            let ppa = flow.synthesize(&g);
            assert!(
                (250.0..1500.0).contains(&ppa.area_um2),
                "{name}: area {} out of range",
                ppa.area_um2
            );
            assert!(
                (0.2..1.2).contains(&ppa.delay_ns),
                "{name}: delay {} out of range",
                ppa.delay_ns
            );
        }
    }

    #[test]
    fn gray_to_binary_is_cheaper_than_adder() {
        let lib = nangate45_like();
        let add = SynthesisFlow::new(lib.clone(), CircuitKind::Adder, 26);
        let g2b = SynthesisFlow::new(lib, CircuitKind::GrayToBinary, 26);
        let g = topologies::sklansky(26);
        assert!(g2b.synthesize(&g).area_um2 < add.synthesize(&g).area_um2);
    }

    #[test]
    fn eight_nm_library_shrinks_everything() {
        let g = topologies::brent_kung(31);
        let n45 = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, 31).synthesize(&g);
        let n8 = SynthesisFlow::new(scaled_8nm_like(), CircuitKind::Adder, 31).synthesize(&g);
        assert!(n8.area_um2 < 0.3 * n45.area_um2);
        assert!(n8.delay_ns < n45.delay_ns);
    }

    #[test]
    fn io_timing_affects_result() {
        let lib = nangate45_like();
        let mut cfg = SynthesisConfig::for_width(31);
        cfg.io = cv_sta::IoTiming::datapath_profile(31, 0.15);
        let skewed = SynthesisFlow::with_config(lib.clone(), CircuitKind::Adder, 31, cfg);
        let uniform = SynthesisFlow::new(lib, CircuitKind::Adder, 31);
        let g = topologies::sklansky(31);
        assert!(skewed.synthesize(&g).delay_ns > uniform.synthesize(&g).delay_ns);
    }
}
