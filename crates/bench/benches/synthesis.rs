//! Criterion benches for the physical-synthesis substrate: technology
//! mapping, buffering, sizing and STA across circuit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_cells::nangate45_like;
use cv_netlist::map_adder;
use cv_prefix::{topologies, CircuitKind};
use cv_sta::{analyze, IoTiming};
use cv_synth::SynthesisFlow;
use std::time::Duration;

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for width in [16usize, 32, 64] {
        let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, width);
        let grid = topologies::sklansky(width);
        group.bench_with_input(BenchmarkId::new("sklansky", width), &width, |b, _| {
            b.iter(|| flow.synthesize(&grid));
        });
    }
    group.finish();
}

fn bench_mapping_and_sta(c: &mut Criterion) {
    let lib = nangate45_like();
    let graph = topologies::kogge_stone(64).to_graph();
    let mut group = c.benchmark_group("substrate");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("map_adder_64", |b| b.iter(|| map_adder(&graph, &lib)));
    let nl = map_adder(&graph, &lib);
    let io = IoTiming::uniform(64);
    group.bench_function("sta_64", |b| b.iter(|| analyze(&nl, &lib, &io)));
    group.finish();
}

fn bench_legalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("legalize_64", |b| {
        let mut base = cv_prefix::PrefixGrid::ripple(64);
        base.set(63, 32, true).unwrap();
        base.set(47, 13, true).unwrap();
        b.iter(|| base.legalized());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_flow,
    bench_mapping_and_sta,
    bench_legalize
);
criterion_main!(benches);
