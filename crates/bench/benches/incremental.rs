//! Incremental-evaluation benchmarks: width-32 SA-style mutation chains
//! through the full-rebuild flow vs. the `EvalSession` delta path, plus
//! an end-to-end `run_method` comparison of the session-backed and
//! reference evaluators.
//!
//! Beyond timing, this bench *gates* the tentpole claims:
//! * every record produced by the delta path is bit-for-bit equal to the
//!   full `SynthesisFlow`;
//! * outside `--test` smoke mode, the delta path must be ≥3× faster on
//!   the width-32 mutation chain.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cv_bench::harness::{build_evaluator, run_method_on, ExperimentSpec, Method};
use cv_cells::nangate45_like;
use cv_prefix::{mutate, topologies, CircuitKind, PrefixGrid};
use cv_synth::{CachedEvaluator, CostParams, EvalSession, Objective, SynthesisFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const WIDTH: usize = 32;
const CHAIN: usize = 16;

/// An SA-style mutation chain: each grid is a legalized 1–3 cell
/// perturbation of its predecessor.
fn mutation_chain(len: usize, seed: u64) -> Vec<PrefixGrid> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chain = vec![topologies::sklansky(WIDTH)];
    for _ in 1..len {
        chain.push(mutate::neighbour(chain.last().unwrap(), &mut rng));
    }
    chain
}

fn flow() -> SynthesisFlow {
    SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, WIDTH)
}

fn run_full(flow: &SynthesisFlow, chain: &[PrefixGrid]) -> Vec<cv_synth::PpaReport> {
    chain.iter().map(|g| flow.synthesize(g)).collect()
}

fn run_delta(flow: &SynthesisFlow, chain: &[PrefixGrid]) -> Vec<cv_synth::PpaReport> {
    let mut session = EvalSession::new(flow.clone(), CostParams::new(0.66));
    let mut out = vec![session.evaluate(&chain[0]).ppa];
    for w in chain.windows(2) {
        out.push(session.evaluate_delta(&w[0], &w[1]).ppa);
    }
    out
}

fn bench_mutation_chain(c: &mut Criterion) {
    let chain = mutation_chain(CHAIN, 0xA11CE);
    let flow = flow();
    let mut group = c.benchmark_group("sa_chain_w32");
    group.sample_size(10);
    group.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(run_full(&flow, &chain)))
    });
    group.bench_function("delta_session", |b| {
        b.iter(|| black_box(run_delta(&flow, &chain)))
    });
    group.finish();
}

/// Equality everywhere + the ≥3× throughput gate (median of 3 runs per
/// path; the speedup assertion is skipped in `--test` smoke mode where a
/// single noisy run could flake CI).
fn bench_speedup_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_gate");
    group.bench_function("equality_and_speedup", |b| {
        b.iter(|| {
            let chain = mutation_chain(CHAIN, 0xBEEF);
            let flow = flow();
            let smoke = std::env::args().any(|a| a == "--test");
            let reps = if smoke { 1 } else { 3 };
            let mut full_times = Vec::new();
            let mut delta_times = Vec::new();
            let mut full_last = Vec::new();
            let mut delta_last = Vec::new();
            for _ in 0..reps {
                let t = Instant::now();
                full_last = run_full(&flow, &chain);
                full_times.push(t.elapsed().as_secs_f64());
                let t = Instant::now();
                delta_last = run_delta(&flow, &chain);
                delta_times.push(t.elapsed().as_secs_f64());
            }
            assert_eq!(
                full_last, delta_last,
                "delta path diverged from the full flow"
            );
            full_times.sort_by(f64::total_cmp);
            delta_times.sort_by(f64::total_cmp);
            let speedup = full_times[reps / 2] / delta_times[reps / 2];
            println!("incremental_gate: speedup {speedup:.2}x over {CHAIN}-step chain");
            if !smoke {
                assert!(
                    speedup >= 3.0,
                    "incremental path must be >=3x faster, got {speedup:.2}x"
                );
            }
            speedup
        })
    });
    group.finish();
}

/// End-to-end `run_method` wiring: the same SA run through the
/// session-backed evaluator and the reference evaluator must produce the
/// *identical* search outcome (determinism + bit-for-bit evaluation),
/// with the session-backed one faster.
fn bench_run_method_sa(c: &mut Criterion) {
    let spec = ExperimentSpec::standard(WIDTH, CircuitKind::Adder, 0.66, 60);
    let mut group = c.benchmark_group("run_method_sa_w32");
    group.sample_size(10);
    group.bench_function("incremental_evaluator", |b| {
        b.iter(|| {
            let evaluator = build_evaluator(&spec);
            black_box(run_method_on(Method::Sa, &spec, 11, &evaluator))
        })
    });
    group.bench_function("reference_evaluator", |b| {
        b.iter(|| {
            let evaluator = CachedEvaluator::new_reference(Objective::new(
                SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, WIDTH),
                CostParams::new(0.66),
            ));
            black_box(run_method_on(Method::Sa, &spec, 11, &evaluator))
        })
    });
    group.finish();
    // Outcome parity, checked once outside the timed region.
    let fast = run_method_on(Method::Sa, &spec, 11, &build_evaluator(&spec));
    let reference = run_method_on(
        Method::Sa,
        &spec,
        11,
        &CachedEvaluator::new_reference(Objective::new(
            SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, WIDTH),
            CostParams::new(0.66),
        )),
    );
    assert_eq!(fast.history, reference.history);
    assert_eq!(fast.best_cost.to_bits(), reference.best_cost.to_bits());
}

criterion_group!(
    benches,
    bench_mutation_chain,
    bench_speedup_gate,
    bench_run_method_sa
);
criterion_main!(benches);
