//! Compute-core benchmarks: GEMM kernels, the width-32 VAE training
//! step, and pooled batch evaluation — every A/B measured against the
//! retained naive reference kernels.
//!
//! Beyond timing, this bench *gates* the tentpole claims (outside
//! `--test` smoke mode):
//! * every fast-kernel result is bit-for-bit equal to its naive
//!   reference (checked in smoke mode too);
//! * the width-32 training step must be ≥3× faster on the compute core;
//! * on AVX2 hosts the strict-mode SIMD GEMM headline must be ≥2× over
//!   the scalar tier (loudly skipped elsewhere, never silently).
//!
//! All measurements are folded into `results/bench_perf.json` through
//! `cv_bench::perf` (schema-checked by the `perf_schema` binary), so CI
//! accumulates a machine-readable perf trajectory.

use circuitvae::{train, CircuitVaeConfig, CircuitVaeModel, Dataset, ModelArch};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cv_bench::perf::{
    AbPerf, GemmPerf, PerfReport, ScalePoint, ScalingCurve, SimdLevelPerf, SimdScaling,
    SimdShapePerf,
};
use cv_cells::nangate45_like;
use cv_nn::gemm::{KernelMode, SimdLevel};
use cv_nn::{gemm, ParamStore};
use cv_pool::WorkerPool;
use cv_prefix::{mutate, topologies, CircuitKind, GridMetrics, PrefixGrid};
use cv_synth::{
    CachedEvaluator, CostParams, EvalRecord, EvalSession, Objective, ParetoArchive, SynthesisFlow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const WIDTH: usize = 32;

/// Thread counts of the scaling curves.
const SCALE_THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn cpu_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn report() -> &'static Mutex<PerfReport> {
    static REPORT: OnceLock<Mutex<PerfReport>> = OnceLock::new();
    REPORT.get_or_init(|| {
        Mutex::new(PerfReport {
            pool_threads: WorkerPool::global().threads(),
            cpu_cores: cpu_cores(),
            simd_level: gemm::simd_level().name().to_string(),
            cpu_features: gemm::cpu_features().iter().map(|f| f.to_string()).collect(),
            ..PerfReport::default()
        })
    })
}

fn smoke() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn reps() -> usize {
    if smoke() {
        1
    } else {
        5
    }
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn dense(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Training-data-like density: mostly nonzero, some zeros.
            if rng.gen_range(0..8) == 0 {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect()
}

/// Times `f` over `reps` runs and returns the median in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    median(times)
}

/// One GEMM shape A/B: returns the perf record after asserting the
/// fast kernel is bit-identical to the reference.
fn gemm_ab(op: &str, m: usize, k: usize, n: usize) -> GemmPerf {
    let reps = reps();
    let (naive_ms, fast_ms) = match op {
        "nn" => {
            let a = dense(m * k, 1);
            let b = dense(k * n, 2);
            let mut fast = vec![0.0f32; m * n];
            let mut naive = vec![0.0f32; m * n];
            gemm::gemm_nn(&mut fast, &a, &b, m, k, n);
            gemm::reference::gemm_nn(&mut naive, &a, &b, m, k, n);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "nn diverged from reference"
            );
            (
                time_ms(reps, || {
                    let mut out = vec![0.0f32; m * n];
                    gemm::reference::gemm_nn(&mut out, &a, &b, m, k, n);
                    black_box(out);
                }),
                time_ms(reps, || {
                    let mut out = vec![0.0f32; m * n];
                    gemm::gemm_nn(&mut out, &a, &b, m, k, n);
                    black_box(out);
                }),
            )
        }
        "nt" => {
            // g [m,n] × b[k,n]ᵀ → [m,k]: the backward-to-inputs product.
            let g = dense(m * n, 3);
            let b = dense(k * n, 4);
            let mut fast = vec![0.0f32; m * k];
            let mut naive = vec![0.0f32; m * k];
            gemm::gemm_nt(&mut fast, &g, &b, m, n, k);
            gemm::reference::gemm_nt(&mut naive, &g, &b, m, n, k);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "nt diverged from reference"
            );
            (
                time_ms(reps, || {
                    let mut out = vec![0.0f32; m * k];
                    gemm::reference::gemm_nt(&mut out, &g, &b, m, n, k);
                    black_box(out);
                }),
                time_ms(reps, || {
                    let mut out = vec![0.0f32; m * k];
                    gemm::gemm_nt(&mut out, &g, &b, m, n, k);
                    black_box(out);
                }),
            )
        }
        "tn" => {
            let a = dense(m * k, 5);
            let g = dense(m * n, 6);
            let mut fast = vec![0.0f32; k * n];
            let mut naive = vec![0.0f32; k * n];
            gemm::gemm_tn(&mut fast, &a, &g, m, k, n);
            gemm::reference::gemm_tn(&mut naive, &a, &g, m, k, n);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "tn diverged from reference"
            );
            (
                time_ms(reps, || {
                    let mut out = vec![0.0f32; k * n];
                    gemm::reference::gemm_tn(&mut out, &a, &g, m, k, n);
                    black_box(out);
                }),
                time_ms(reps, || {
                    let mut out = vec![0.0f32; k * n];
                    gemm::gemm_tn(&mut out, &a, &g, m, k, n);
                    black_box(out);
                }),
            )
        }
        other => panic!("unknown op {other}"),
    };
    // Effective parallelism of the fast kernel's timed region: the row
    // chunks it actually dispatched (1 when the shape is below the
    // dispatch threshold), not the pool's nominal size.
    let rows = if op == "tn" { k } else { m };
    let threads = gemm::planned_chunks(WorkerPool::global(), rows, 2 * m * k * n);
    GemmPerf {
        op: op.to_string(),
        m,
        k,
        n,
        naive_ms,
        fast_ms,
        threads,
        simd_level: gemm::simd_level().name(),
    }
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    group.bench_function("ab_suite", |b| {
        b.iter(|| {
            // Shapes from the width-32 CNN model's dense stages:
            // encoder trunk (batch×flat × flat×hidden), its backward
            // products, and a conv-like panel.
            let records = vec![
                gemm_ab("nn", 64, 768, 128),
                gemm_ab("nt", 64, 128, 768),
                gemm_ab("tn", 64, 768, 128),
                gemm_ab("nn", 12, 54, 256),
            ];
            for r in &records {
                println!(
                    "gemm/{} {}x{}x{}: naive {:.3} ms ({:.2} GF/s) -> fast {:.3} ms ({:.2} GF/s), {:.2}x",
                    r.op,
                    r.m,
                    r.k,
                    r.n,
                    r.naive_ms,
                    r.gflops_naive(),
                    r.fast_ms,
                    r.gflops_fast(),
                    r.naive_ms / r.fast_ms.max(1e-12)
                );
            }
            report().lock().unwrap().gemm = records;
        })
    });
    group.finish();
}

fn toy_dataset(width: usize, count: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries: Vec<(PrefixGrid, f64)> = (0..count)
        .map(|_| {
            let g = mutate::random_grid(width, rng.gen_range(0.05..0.4), &mut rng);
            let cost = GridMetrics::of(&g).analytic_proxy();
            (g, cost)
        })
        .collect();
    let mut ds = Dataset::new(width, entries);
    ds.recompute_weights(1e-3, true);
    ds
}

/// Runs `steps` training steps of the width-32 CNN VAE with either the
/// reference or the fast kernels, returning (mean loss, parameter
/// bytes, wall-clock ms). `threads` is the gradient-accumulation chunk
/// count (the A/B gate uses 1: the chunking itself changes float merge
/// order, so the kernel comparison keeps it fixed).
fn run_training(steps: usize, reference: bool, threads: usize) -> (f64, Vec<u8>, f64) {
    let mut cfg = CircuitVaeConfig::for_width(WIDTH);
    assert!(matches!(cfg.arch, ModelArch::Cnn { .. }), "w32 must be CNN");
    cfg.batch_size = 32;
    cfg.threads = threads;
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = CircuitVaeModel::new(&mut store, &cfg, WIDTH, &mut rng);
    let ds = toy_dataset(WIDTH, 60, 11);
    gemm::set_reference_kernels(reference);
    let t = Instant::now();
    let loss = train(&model, &mut store, &ds, &cfg, steps, &mut rng);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    gemm::set_reference_kernels(false);
    (loss, store.to_bytes(), ms)
}

/// The tentpole gate: the width-32 training step on the compute core
/// must be ≥3× the naive kernels, with bit-identical training results.
///
/// Measurement protocol: order-alternated (naive, fast) pairs — clock
/// drift (thermal throttling) between the two members of a pair then
/// biases half the pairs each way — with the median of per-pair ratios
/// as the gate statistic. The full protocol runs once per process; the
/// bench harness's repeat iterations reuse the result.
fn bench_training_step_w32(c: &mut Criterion) {
    static GATE: OnceLock<(f64, f64, f64)> = OnceLock::new();
    let mut group = c.benchmark_group("training_step_w32");
    group.bench_function("ab_gate", |b| {
        b.iter(|| {
            let (naive_ms, fast_ms, speedup) = *GATE.get_or_init(|| {
                // Enough steps per measurement to amortize the first
                // step's arena/buffer build-up (the compute core's
                // steady state is the quantity of interest).
                let steps = if smoke() { 1 } else { 10 };
                let outer = if smoke() { 1 } else { 4 };
                let mut naive_times = Vec::new();
                let mut fast_times = Vec::new();
                let mut ratios = Vec::new();
                let (mut naive_out, mut fast_out) = (None, None);
                for r in 0..outer {
                    let (naive, fast) = if r % 2 == 0 {
                        let naive = run_training(steps, true, 1);
                        let fast = run_training(steps, false, 1);
                        (naive, fast)
                    } else {
                        let fast = run_training(steps, false, 1);
                        let naive = run_training(steps, true, 1);
                        (naive, fast)
                    };
                    ratios.push(naive.2 / fast.2.max(1e-12));
                    naive_times.push(naive.2);
                    fast_times.push(fast.2);
                    naive_out = Some((naive.0, naive.1));
                    fast_out = Some((fast.0, fast.1));
                }
                let (nl, np) = naive_out.unwrap();
                let (fl, fp) = fast_out.unwrap();
                assert_eq!(
                    nl.to_bits(),
                    fl.to_bits(),
                    "training loss diverged between kernel paths"
                );
                assert_eq!(np, fp, "trained parameters diverged between kernel paths");
                (
                    median(naive_times) / steps as f64,
                    median(fast_times) / steps as f64,
                    median(ratios),
                )
            });
            println!(
                "training_step_w32: naive {naive_ms:.1} ms/step -> fast {fast_ms:.1} ms/step ({speedup:.2}x median pair ratio)"
            );
            report().lock().unwrap().training_step = Some(AbPerf {
                width: WIDTH,
                naive_ms,
                fast_ms,
                // Both timed regions ran one accumulation chunk; the
                // kernels themselves fan dense products out on the pool.
                threads: 1,
                simd_level: gemm::simd_level().name(),
            });
            if !smoke() {
                assert!(
                    speedup >= 3.0,
                    "width-32 training step must be >=3x faster on the compute core, got {speedup:.2}x"
                );
            }
            speedup
        })
    });
    group.finish();
}

/// Shapes of the `simd_scaling` section — the same four dense stages
/// the `gemm_kernels` A/B measures, so the per-level curves line up
/// with the committed perf trajectory.
const SIMD_SHAPES: [(&str, usize, usize, usize); 4] = [
    ("nn", 64, 768, 128),
    ("nt", 64, 128, 768),
    ("tn", 64, 768, 128),
    ("nn", 12, 54, 256),
];

/// Strict-mode A/B of one GEMM shape at `level` vs the scalar tier,
/// through the race-free per-level entry points (`gemm_*_at` — no
/// global toggles, no pool). Uses the order-alternated
/// median-pair-ratio protocol of the PR 5/6 gates, and asserts the
/// Contract 12 strict guarantee (bit-identical to scalar) in-run.
fn simd_shape_ab(level: SimdLevel, op: &str, m: usize, k: usize, n: usize) -> SimdShapePerf {
    // Same seeds as `gemm_ab`, so the level curves measure the exact
    // operand bits of the main A/B section.
    let (x, y, out_len): (Vec<f32>, Vec<f32>, usize) = match op {
        "nn" => (dense(m * k, 1), dense(k * n, 2), m * n),
        "nt" => (dense(m * n, 3), dense(k * n, 4), m * k),
        "tn" => (dense(m * k, 5), dense(m * n, 6), k * n),
        other => panic!("unknown op {other}"),
    };
    let run = |lvl: SimdLevel, out: &mut [f32]| match op {
        "nn" => gemm::gemm_nn_at(lvl, KernelMode::Strict, out, &x, &y, m, k, n),
        "nt" => gemm::gemm_nt_at(lvl, KernelMode::Strict, out, &x, &y, m, n, k),
        "tn" => gemm::gemm_tn_at(lvl, KernelMode::Strict, out, &x, &y, m, k, n),
        _ => unreachable!(),
    };
    let mut at_level = vec![0.0f32; out_len];
    let mut at_scalar = vec![0.0f32; out_len];
    run(level, &mut at_level);
    run(SimdLevel::Scalar, &mut at_scalar);
    assert!(
        at_level
            .iter()
            .zip(&at_scalar)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "strict {op} diverged from scalar at level {}",
        level.name()
    );
    let iters = if smoke() { 1 } else { 4 };
    let time_at = |lvl: SimdLevel| {
        let mut out = vec![0.0f32; out_len];
        let t = Instant::now();
        for _ in 0..iters {
            run(lvl, &mut out);
            black_box(&mut out);
        }
        t.elapsed().as_secs_f64() * 1e3 / iters as f64
    };
    let pairs = if smoke() { 1 } else { 5 };
    let mut level_times = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let (scalar_ms, level_ms) = if p % 2 == 0 {
            let s = time_at(SimdLevel::Scalar);
            let l = time_at(level);
            (s, l)
        } else {
            let l = time_at(level);
            let s = time_at(SimdLevel::Scalar);
            (s, l)
        };
        level_times.push(level_ms);
        ratios.push(scalar_ms / level_ms.max(1e-12));
    }
    SimdShapePerf {
        op: op.to_string(),
        m,
        k,
        n,
        ms: median(level_times),
        speedup_vs_scalar: if level == SimdLevel::Scalar {
            1.0
        } else {
            median(ratios)
        },
    }
}

/// Strict-mode training-step A/B at `level` vs the scalar tier on the
/// public dispatch path (the per-level GEMM entries cover the raw
/// kernels; this covers a whole width-32 step through graph wiring and
/// conv). Toggling `set_simd_level` is bit-harmless here: every strict
/// tier produces identical bits, which the assert below re-proves per
/// level. Returns (ms per step, median per-pair speedup vs scalar).
fn simd_training_ab(level: SimdLevel) -> (f64, f64) {
    let entry = gemm::simd_level();
    let steps = if smoke() { 1 } else { 6 };
    let outer = if smoke() { 1 } else { 3 };
    let run_at = |lvl: SimdLevel| {
        assert!(
            gemm::set_simd_level(lvl),
            "level {} unsupported",
            lvl.name()
        );
        run_training(steps, false, 1)
    };
    let mut level_times = Vec::with_capacity(outer);
    let mut ratios = Vec::with_capacity(outer);
    let (mut scalar_out, mut level_out) = (None, None);
    for r in 0..outer {
        let (scalar, at_level) = if r % 2 == 0 {
            let s = run_at(SimdLevel::Scalar);
            let l = run_at(level);
            (s, l)
        } else {
            let l = run_at(level);
            let s = run_at(SimdLevel::Scalar);
            (s, l)
        };
        ratios.push(scalar.2 / at_level.2.max(1e-12));
        level_times.push(at_level.2);
        scalar_out = Some((scalar.0, scalar.1));
        level_out = Some((at_level.0, at_level.1));
    }
    gemm::set_simd_level(entry);
    let (sl, sp) = scalar_out.unwrap();
    let (ll, lp) = level_out.unwrap();
    assert_eq!(
        sl.to_bits(),
        ll.to_bits(),
        "training loss diverged between scalar and {}",
        level.name()
    );
    assert_eq!(
        sp,
        lp,
        "trained parameters diverged between scalar and {}",
        level.name()
    );
    (
        median(level_times) / steps as f64,
        if level == SimdLevel::Scalar {
            1.0
        } else {
            median(ratios)
        },
    )
}

/// Measures the full `simd_scaling` section: one strict-mode curve per
/// SIMD level this host supports (unsupported tiers are skipped with a
/// printed label, never silently), headline recomputed from the tables.
fn build_simd_scaling() -> SimdScaling {
    let mut levels = Vec::new();
    for level in SimdLevel::ALL {
        if !level.is_supported() {
            println!(
                "simd_scaling: SKIPPED level {} — not supported on this host (detected {})",
                level.name(),
                gemm::detected_level().name()
            );
            continue;
        }
        let rows: Vec<SimdShapePerf> = SIMD_SHAPES
            .iter()
            .map(|&(op, m, k, n)| simd_shape_ab(level, op, m, k, n))
            .collect();
        for r in &rows {
            println!(
                "simd_scaling/{} {}/{}x{}x{}: {:.3} ms ({:.2} GF/s), {:.2}x vs scalar",
                level.name(),
                r.op,
                r.m,
                r.k,
                r.n,
                r.ms,
                r.gflops(),
                r.speedup_vs_scalar
            );
        }
        let (training_ms, training_speedup) = simd_training_ab(level);
        println!(
            "simd_scaling/{}: training {:.1} ms/step ({:.2}x vs scalar)",
            level.name(),
            training_ms,
            training_speedup
        );
        levels.push(SimdLevelPerf {
            level: level.name().to_string(),
            gemm: rows,
            training_ms,
            training_speedup_vs_scalar: training_speedup,
        });
    }
    let mut scaling = SimdScaling {
        levels,
        headline: None,
    };
    scaling.headline = scaling.computed_headline();
    scaling
}

/// The `simd_scaling` section plus its tentpole gate: the strict-mode
/// GEMM headline over scalar must be ≥2x when this host detects AVX2
/// (outside smoke mode); on narrower hosts the gate is skipped with a
/// loud label. The heavy protocol runs once per process.
fn bench_simd_scaling(c: &mut Criterion) {
    static SCALING: OnceLock<SimdScaling> = OnceLock::new();
    let mut group = c.benchmark_group("simd_scaling");
    group.bench_function("levels", |b| {
        b.iter(|| {
            let scaling = SCALING.get_or_init(build_simd_scaling);
            if let Some(h) = &scaling.headline {
                println!(
                    "simd_scaling: headline {}/{} {}x{}x{}: {:.2}x vs scalar",
                    h.level, h.op, h.m, h.k, h.n, h.speedup
                );
            }
            if gemm::detected_level() >= SimdLevel::Avx2 {
                if !smoke() {
                    let speedup = scaling.headline.as_ref().map_or(0.0, |h| h.speedup);
                    assert!(
                        speedup >= 2.0,
                        "strict SIMD GEMM headline must be >=2x over scalar on AVX2, got {speedup:.2}x"
                    );
                }
            } else {
                println!(
                    "simd_scaling: SKIPPED >=2x AVX2 headline gate — avx2 not detected on this host"
                );
            }
            report().lock().unwrap().simd_scaling = Some(scaling.clone());
        })
    });
    group.finish();
}

fn eval_grids(width: usize, count: usize, seed: u64) -> Vec<PrefixGrid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| mutate::random_grid(width, 0.3, &mut rng))
        .collect()
}

fn bench_evaluate_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_batch_w16");
    group.bench_function("pool_vs_serial", |b| {
        b.iter(|| {
            let width = 16;
            let grids = eval_grids(width, if smoke() { 6 } else { 16 }, 0xFEED);
            let make = || {
                CachedEvaluator::new(Objective::new(
                    SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, width),
                    CostParams::new(0.66),
                ))
            };
            let serial_ev = make();
            let t = Instant::now();
            let serial: Vec<EvalRecord> = grids.iter().map(|g| serial_ev.evaluate(g)).collect();
            let serial_ms = t.elapsed().as_secs_f64() * 1e3;
            let pool_ev = make();
            let t = Instant::now();
            let pooled = pool_ev.evaluate_batch(&grids, 8);
            let pool_ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(serial, pooled, "batch path diverged from sequential");
            assert_eq!(serial_ev.counter().count(), pool_ev.counter().count());
            // What the timed region could actually run in parallel: the
            // requested 8 chunks, capped by the pool and the batch.
            let threads = 8.min(WorkerPool::global().threads()).min(grids.len());
            println!(
                "evaluate_batch_w16: serial {serial_ms:.1} ms -> pool {pool_ms:.1} ms ({threads} effective threads)"
            );
            report().lock().unwrap().evaluate_batch = Some(AbPerf {
                width,
                naive_ms: serial_ms,
                fast_ms: pool_ms,
                threads,
                simd_level: gemm::simd_level().name(),
            });
        })
    });
    group.finish();
}

/// Builds the `evaluate_batch` thread-scaling curve on a width-32 batch:
/// for each thread count a dedicated `WorkerPool::new(t)` runs
/// `evaluate_batch_on` against a fresh evaluator, gated on bit-identity
/// with the sequential path — records, simulation counts, archive
/// observation stamps, and archive checkpoint bytes (smoke mode too).
///
/// The sequential baseline times every call individually; the
/// first-occurrence times of the unique legalized keys (the exact set
/// the batch path simulates) feed a zero-contention makespan model:
/// chunk `c` of `ceil(P/t)` keys lands on worker `c % workers` (the
/// pool's static assignment), a worker's cost is the sum of its chunks'
/// measured times, and the makespan is the busiest worker plus the
/// measured sequential residue (dedup, cache probes, publish). On a
/// machine with fewer cores than threads the model — not the
/// timeshared wall clock — is the honest speedup estimate, and the
/// report labels it as such.
fn batch_scaling_curve() -> ScalingCurve {
    let count = if smoke() { 10 } else { 48 };
    let mut grids = eval_grids(WIDTH, count, 0x5CA1E);
    // Duplicates exercise first-occurrence dedup in every run.
    grids.push(grids[1].clone());
    grids.push(grids[3].clone());
    let make = || {
        CachedEvaluator::new(Objective::new(
            SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, WIDTH),
            CostParams::new(0.66),
        ))
    };
    let seq_ev = make();
    let seq_arch = ParetoArchive::new().with_log().into_shared();
    seq_ev.attach_archive(seq_arch.clone());
    let t0 = Instant::now();
    let mut call_ms = Vec::with_capacity(grids.len());
    let seq: Vec<EvalRecord> = grids
        .iter()
        .map(|g| {
            let t = Instant::now();
            let r = seq_ev.evaluate(g);
            call_ms.push(t.elapsed().as_secs_f64() * 1e3);
            r
        })
        .collect();
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
    let seq_bytes = seq_arch.lock().to_ckpt_bytes();
    // Per-key costs in first-occurrence order: on a fresh evaluator the
    // first occurrence of each unique legalized key is the one counted
    // simulation; later occurrences are cache hits.
    let mut seen = std::collections::HashSet::new();
    let key_ms: Vec<f64> = grids
        .iter()
        .zip(&call_ms)
        .filter(|(g, _)| {
            seen.insert(if g.is_legal() {
                (*g).clone()
            } else {
                g.legalized()
            })
        })
        .map(|(_, ms)| *ms)
        .collect();
    let residue_ms = (baseline_ms - key_ms.iter().sum::<f64>()).max(0.0);
    let mut points = Vec::new();
    for t in SCALE_THREADS {
        let pool = WorkerPool::new(t);
        let ev = make();
        let arch = ParetoArchive::new().with_log().into_shared();
        ev.attach_archive(arch.clone());
        let t0 = Instant::now();
        let batch = ev.evaluate_batch_on(&pool, &grids, t);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        // The determinism contract, asserted at every measured point.
        assert_eq!(batch, seq, "threads={t}: batch diverged from sequential");
        assert_eq!(
            ev.counter().count(),
            seq_ev.counter().count(),
            "threads={t}: simulation count diverged"
        );
        assert_eq!(
            arch.lock().observations(),
            seq_arch.lock().observations(),
            "threads={t}: archive observation stamps diverged"
        );
        assert_eq!(
            arch.lock().to_ckpt_bytes(),
            seq_bytes,
            "threads={t}: archive checkpoint bytes diverged"
        );
        // Zero-contention makespan over the pool's static assignment.
        let workers = pool.threads();
        let t_eff = t.clamp(1, grids.len());
        let chunk = key_ms.len().div_ceil(t_eff).max(1);
        let mut per_worker = vec![0.0f64; workers];
        for (c, part) in key_ms.chunks(chunk).enumerate() {
            per_worker[c % workers] += part.iter().sum::<f64>();
        }
        let makespan = per_worker.iter().copied().fold(0.0f64, f64::max);
        points.push(ScalePoint {
            threads: t,
            workers,
            wall_ms,
            modeled_ms: Some(residue_ms + makespan),
        });
    }
    ScalingCurve {
        width: WIDTH,
        baseline_ms,
        points,
    }
}

/// The training-step scaling curve: gradient-accumulation chunk counts
/// 1/2/4/8/16 on the global pool. No per-chunk instrumentation exists
/// inside a training step, so these points are wall-clock only
/// (`modeled_ms: None`) — on a core-starved machine they honestly show
/// ~1x. Chunking changes float merge order, so equality across thread
/// counts is approximate (loss drift bounded), unlike the batch curve's
/// bit-identity.
fn training_scaling_curve() -> ScalingCurve {
    let steps = if smoke() { 1 } else { 6 };
    let mut points = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    for t in SCALE_THREADS {
        let (loss, _params, total_ms) = run_training(steps, false, t);
        let ms = total_ms / steps as f64;
        match baseline {
            None => baseline = Some((loss, ms)),
            Some((l0, _)) => assert!(
                (loss - l0).abs() <= 1e-3 * l0.abs().max(1.0),
                "threads={t}: training loss drifted ({loss} vs {l0})"
            ),
        }
        points.push(ScalePoint {
            threads: t,
            workers: WorkerPool::global().threads().min(t),
            wall_ms: ms,
            modeled_ms: None,
        });
    }
    ScalingCurve {
        width: WIDTH,
        baseline_ms: baseline.expect("curve has points").1,
        points,
    }
}

/// Thread-scaling curves for `evaluate_batch` and the training step,
/// plus the tentpole gate: the batch headline speedup at 8 threads must
/// be ≥4x (outside smoke mode). The heavy protocol runs once per
/// process; bench iterations reuse the curves.
fn bench_thread_scaling(c: &mut Criterion) {
    static CURVES: OnceLock<(ScalingCurve, ScalingCurve)> = OnceLock::new();
    let mut group = c.benchmark_group("thread_scaling");
    group.bench_function("curves", |b| {
        b.iter(|| {
            let (batch, training) =
                CURVES.get_or_init(|| (batch_scaling_curve(), training_scaling_curve()));
            let cores = cpu_cores();
            for (name, curve) in [("evaluate_batch", batch), ("training_step", training)] {
                for p in &curve.points {
                    let (speedup, basis) = p.headline(curve.baseline_ms, cores);
                    println!(
                        "scaling/{name} w{}: t={} workers={} wall {:.1} ms ({:.2}x wall) headline {:.2}x [{basis}]",
                        curve.width,
                        p.threads,
                        p.workers,
                        p.wall_ms,
                        p.wall_speedup(curve.baseline_ms),
                        speedup,
                    );
                }
            }
            if !smoke() {
                let p8 = batch
                    .points
                    .iter()
                    .find(|p| p.threads == 8)
                    .expect("curve covers 8 threads");
                let (speedup, basis) = p8.headline(batch.baseline_ms, cores);
                assert!(
                    speedup >= 4.0,
                    "evaluate_batch must reach >=4x at 8 threads, got {speedup:.2}x [{basis}]"
                );
            }
            let mut r = report().lock().unwrap();
            r.batch_scaling = Some(batch.clone());
            r.training_scaling = Some(training.clone());
        })
    });
    group.finish();
}

fn bench_incremental_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_point");
    group.bench_function("chain_speedup", |b| {
        b.iter(|| {
            // One measurement of the incremental-evaluation speedup for
            // the perf trajectory (the `incremental` bench owns the
            // rigorous gate).
            let mut rng = StdRng::seed_from_u64(0xA11CE);
            let mut chain = vec![topologies::sklansky(WIDTH)];
            for _ in 1..if smoke() { 4 } else { 12 } {
                chain.push(mutate::neighbour(chain.last().unwrap(), &mut rng));
            }
            let flow = SynthesisFlow::new(nangate45_like(), CircuitKind::Adder, WIDTH);
            let t = Instant::now();
            let full: Vec<_> = chain.iter().map(|g| flow.synthesize(g)).collect();
            let full_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let mut session = EvalSession::new(flow.clone(), CostParams::new(0.66));
            let mut delta = vec![session.evaluate(&chain[0]).ppa];
            for w in chain.windows(2) {
                delta.push(session.evaluate_delta(&w[0], &w[1]).ppa);
            }
            let delta_s = t.elapsed().as_secs_f64();
            assert_eq!(full, delta, "delta path diverged");
            let speedup = full_s / delta_s.max(1e-12);
            println!(
                "incremental_point: {speedup:.2}x over {}-step chain",
                chain.len()
            );
            report().lock().unwrap().incremental_speedup = Some(speedup);
        })
    });
    group.finish();
}

/// Last group: persist the accumulated report (validated against its own
/// schema) for CI to archive.
fn bench_write_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_report");
    group.bench_function("write", |b| {
        b.iter(|| {
            // Benches run with the package dir as cwd; anchor the report
            // at the workspace root's results/ like the figure binaries.
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../results/bench_perf.json");
            report().lock().unwrap().write(&path);
            println!("wrote {}", path.display());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_kernels,
    bench_training_step_w32,
    bench_simd_scaling,
    bench_evaluate_batch,
    bench_thread_scaling,
    bench_incremental_point,
    bench_write_report
);
criterion_main!(benches);
