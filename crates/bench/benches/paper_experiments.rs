//! Miniature end-to-end versions of the paper's experiments, as
//! criterion benches: one per artifact family. These exist so
//! `cargo bench` exercises the same code paths the figure binaries use
//! (at smoke scale); the full regenerators are the `cv-bench` binaries
//! (`fig3_curves`, `table1`, ... — see DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use cv_bench::harness::{run_method, run_vae_variant, ExperimentSpec, Method};
use cv_prefix::CircuitKind;
use std::time::Duration;

fn mini_spec(kind: CircuitKind, width: usize) -> ExperimentSpec {
    ExperimentSpec::standard(width, kind, 0.66, 30)
}

/// Fig. 3 / Table 1 family: the four-method comparison loop.
fn bench_fig3_table1_mini(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_fig3_table1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for method in Method::PAPER_SET {
        group.bench_function(format!("{}_w8_budget30", method.label()), |b| {
            b.iter(|| run_method(method, &mini_spec(CircuitKind::Adder, 8), 1));
        });
    }
    group.finish();
}

/// Fig. 4 family: one ablated CircuitVAE variant.
fn bench_fig4_mini(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_fig4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("no_reweight_w8_budget30", |b| {
        b.iter(|| {
            run_vae_variant(&mini_spec(CircuitKind::Adder, 8), 1, |c| {
                c.reweight_data = false
            })
        });
    });
    group.finish();
}

/// Fig. 7 / Fig. 8 family: the gray-to-binary task end to end.
fn bench_fig7_mini(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_fig7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("vae_g2b_w8_budget30", |b| {
        b.iter(|| {
            run_method(
                Method::CircuitVae,
                &mini_spec(CircuitKind::GrayToBinary, 8),
                1,
            )
        });
    });
    group.finish();
}

/// Fig. 6 family: the commercial-tool portfolio sweep.
fn bench_fig6_mini(c: &mut Criterion) {
    use cv_bench::harness::TechLibrary;
    use cv_sta::IoTiming;
    use cv_synth::CommercialTool;
    let mut group = c.benchmark_group("paper_fig6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("commercial_portfolio_w16", |b| {
        let tool = CommercialTool::new(
            TechLibrary::Scaled8nmLike.build(),
            CircuitKind::Adder,
            16,
            IoTiming::datapath_profile(16, 0.05),
        );
        b.iter(|| tool.pareto_front());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_table1_mini,
    bench_fig4_mini,
    bench_fig7_mini,
    bench_fig6_mini
);
criterion_main!(benches);
