//! Criterion benches for the baseline searchers at fixed tiny budgets:
//! cost per budget-unit of GA, SA, RL and random search.

use criterion::{criterion_group, criterion_main, Criterion};
use cv_baselines::{
    GaConfig, GeneticAlgorithm, PrefixRlLite, RlConfig, SaConfig, SimulatedAnnealing,
};
use cv_bench::harness::{build_evaluator, ExperimentSpec};
use cv_prefix::CircuitKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn spec() -> ExperimentSpec {
    ExperimentSpec::standard(10, CircuitKind::Adder, 0.66, 30)
}

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ga_budget30_w10", |b| {
        b.iter(|| {
            let ev = build_evaluator(&spec());
            let mut rng = StdRng::seed_from_u64(0);
            GeneticAlgorithm::new(
                10,
                GaConfig {
                    population: 12,
                    ..GaConfig::default()
                },
            )
            .run(&ev, 30, 10, false, &mut rng)
        });
    });
    group.bench_function("sa_budget30_w10", |b| {
        b.iter(|| {
            let ev = build_evaluator(&spec());
            let mut rng = StdRng::seed_from_u64(0);
            SimulatedAnnealing::new(10, SaConfig::default()).run(&ev, 30, &mut rng)
        });
    });
    group.bench_function("random_budget30_w10", |b| {
        b.iter(|| {
            let ev = build_evaluator(&spec());
            let mut rng = StdRng::seed_from_u64(0);
            cv_baselines::random_search(10, &ev, 30, &mut rng)
        });
    });
    group.finish();
}

fn bench_rl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("dqn_budget30_w10", |b| {
        b.iter(|| {
            let ev = build_evaluator(&spec());
            let mut rng = StdRng::seed_from_u64(0);
            PrefixRlLite::new(
                10,
                RlConfig {
                    hidden: 32,
                    episode_len: 8,
                    batch_size: 8,
                    ..RlConfig::default()
                },
            )
            .run(&ev, 30, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ga, bench_rl);
criterion_main!(benches);
