//! Criterion benches for the GP surrogate used by the BO baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use cv_gp::{expected_improvement, GpRegressor, Kernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(0);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().map(|v| v * v).sum()).collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [64usize, 128, 256] {
        let (xs, ys) = data(n, 16);
        group.bench_function(format!("fit_n{n}_d16"), |b| {
            b.iter(|| GpRegressor::fit(&xs, &ys, Kernel::Matern52, 1e-4).unwrap());
        });
    }
    group.finish();
}

fn bench_predict_ei(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_acquire");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let (xs, ys) = data(256, 16);
    let gp = GpRegressor::fit(&xs, &ys, Kernel::Matern52, 1e-4).unwrap();
    let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let (cands, _) = data(512, 16);
    group.bench_function("ei_over_512_candidates", |b| {
        b.iter(|| {
            cands
                .iter()
                .map(|z| {
                    let (m, v) = gp.predict(z);
                    expected_improvement(m, v, best)
                })
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict_ei);
criterion_main!(benches);
