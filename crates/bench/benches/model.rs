//! Criterion benches for the VAE model: training step, latent search,
//! encode/decode throughput.

use circuitvae::{
    initial_latents, run_trajectories, CircuitVaeConfig, CircuitVaeModel, Dataset, InitStrategy,
};
use criterion::{criterion_group, criterion_main, Criterion};
use cv_nn::ParamStore;
use cv_prefix::{bitvec, mutate, GridMetrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn setup(width: usize) -> (CircuitVaeModel, ParamStore, Dataset, CircuitVaeConfig) {
    let config = CircuitVaeConfig::smoke(width);
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let model = CircuitVaeModel::new(&mut store, &config, width, &mut rng);
    let entries: Vec<_> = (0..64)
        .map(|_| {
            let g = mutate::random_grid(width, rng.gen_range(0.05..0.4), &mut rng);
            let c = GridMetrics::of(&g).analytic_proxy();
            (g, c)
        })
        .collect();
    let mut ds = Dataset::new(width, entries);
    ds.recompute_weights(1e-3, true);
    (model, store, ds, config)
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("vae");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let (model, mut store, ds, config) = setup(16);
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("train_step_w16", |b| {
        b.iter(|| circuitvae::train(&model, &mut store, &ds, &config, 1, &mut rng));
    });
    group.finish();
}

fn bench_latent_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("latent_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let (model, store, ds, config) = setup(16);
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("trajectories_8x20_w16", |b| {
        b.iter(|| {
            let starts =
                initial_latents(&model, &store, &ds, InitStrategy::CostWeighted, 8, &mut rng);
            run_trajectories(&model, &store, starts, &config, &mut rng)
        });
    });
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let (model, store, ds, _config) = setup(16);
    let rows: Vec<Vec<f32>> = ds
        .entries()
        .iter()
        .take(32)
        .map(|(g, _)| bitvec::encode_dense(g))
        .collect();
    group.bench_function("encode_32_designs_w16", |b| {
        b.iter(|| model.encode_values(&store, &rows));
    });
    let (mu, _) = model.encode_values(&store, &rows);
    group.bench_function("decode_32_latents_w16", |b| {
        b.iter(|| model.decode_probs(&store, &mu));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_train_step,
    bench_latent_search,
    bench_encode_decode
);
criterion_main!(benches);
