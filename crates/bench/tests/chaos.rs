//! Chaos suite for `campaignd` supervision (Contract 13).
//!
//! Contract 11 (`tests/service_crash.rs`) proves the daemon survives
//! *process death*. This suite proves it survives everything short of
//! that: a job whose evaluator **panics mid-step** (the `cv-bench`
//! fault harness), transient IO brown-outs (`cv-journal`'s
//! `Mode::TransientError` windows), and random interleavings of both.
//! The invariant under test is per-job fault isolation — a poisoned
//! job is parked (failed → bounded automatic retries → quarantined)
//! while the daemon keeps serving and every *surviving* job's durable
//! artifacts stay byte-identical to a run with no faults injected.
//! Once the faults clear, retrying the parked jobs drains the table to
//! the exact clean-run directory, canonical journal included.
//!
//! The CI `chaos-smoke` job replays the panic half of this contract
//! against the real binary over TCP (`CV_PANIC_JOB`); the
//! malformed-frame / torn-connection half of the ingress story lives
//! in `tests/service.rs`.

use cv_bench::faults;
use cv_bench::harness::{Method, TechLibrary};
use cv_bench::service::{Daemon, DaemonConfig, JobSpec, JobStatus, Request, Response};
use cv_journal::failpoint;
use cv_prefix::CircuitKind;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Both fault harnesses are process-global state: tests must not
/// overlap. Every test body runs under this lock, starting disarmed.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    failpoint::disarm();
    faults::disarm();
    guard
}

fn base_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cv_chaos_{}", std::process::id()))
}

/// The mixed job set of the crash suite: eight concurrent jobs — both
/// techs × {SA, Random, GA, GA-NSGA2} — at width 8. Full job ids are
/// unique substrings across the set, so a whole id is a precise panic
/// fragment.
fn jobs() -> Vec<JobSpec> {
    let methods = [Method::Sa, Method::Random, Method::Ga, Method::GaNsga2];
    let techs = [TechLibrary::Nangate45Like, TechLibrary::Scaled8nmLike];
    let mut specs = Vec::new();
    for &tech in &techs {
        for &method in &methods {
            specs.push(JobSpec {
                method,
                kind: CircuitKind::Adder,
                width: 8,
                tech,
                delay_weight: 0.5,
                budget: 20,
                seed: 31,
            });
        }
    }
    specs
}

fn cfg(dir: &Path) -> DaemonConfig {
    DaemonConfig {
        dir: dir.to_path_buf(),
        threads: 2,
        checkpoint_every: 5,
        slice_steps: 2,
        journal_max_bytes: 4096,
        max_retries: 3,
    }
}

/// Every file in `dir` as name → bytes; asserts no staging files leak.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("service dir exists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "staging file {name} leaked into the final directory"
        );
        files.insert(name, std::fs::read(entry.path()).expect("file readable"));
    }
    files
}

fn assert_snapshots_equal(got: &BTreeMap<String, Vec<u8>>, want: &BTreeMap<String, Vec<u8>>) {
    let names = |m: &BTreeMap<String, Vec<u8>>| m.keys().cloned().collect::<Vec<_>>();
    assert_eq!(names(got), names(want), "directory listings differ");
    for (name, want_bytes) in want {
        assert_eq!(&got[name], want_bytes, "{name} differs from the clean run");
    }
}

/// Asserts job `id`'s durable artifacts (every `<id>.*` file) are
/// byte-identical between `got` and the clean-run `want`.
fn assert_job_unperturbed(
    got: &BTreeMap<String, Vec<u8>>,
    want: &BTreeMap<String, Vec<u8>>,
    id: &str,
) {
    let prefix = format!("{id}.");
    let of = |m: &BTreeMap<String, Vec<u8>>| {
        m.keys()
            .filter(|n| n.starts_with(&prefix))
            .cloned()
            .collect::<Vec<_>>()
    };
    let names = of(got);
    assert_eq!(
        names,
        of(want),
        "job {id} file set differs from the clean run"
    );
    for name in names {
        assert_eq!(got[&name], want[&name], "{name} differs from the clean run");
    }
}

/// The uninterrupted reference: directory snapshot + durable tick span.
struct Baseline {
    files: BTreeMap<String, Vec<u8>>,
    span: u64,
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = base_dir().join("baseline");
        let _ = std::fs::remove_dir_all(&dir);
        let before = failpoint::ticks();
        let mut daemon = Daemon::open(cfg(&dir)).expect("open");
        submit_all(&mut daemon, &jobs());
        drain(&mut daemon);
        drop(daemon);
        let span = failpoint::ticks() - before;
        assert!(span > 0, "a persistent service spends durable ticks");
        Baseline {
            files: snapshot(&dir),
            span,
        }
    })
}

/// Submits the whole job set, retrying submissions a transient
/// brown-out sheds (submits are idempotent; a shed one consumes a
/// fault-window slot, so this terminates).
fn submit_all(daemon: &mut Daemon, specs: &[JobSpec]) {
    for spec in specs {
        loop {
            match daemon
                .handle(&Request::Submit(spec.clone()))
                .expect("only injected process death escapes handle()")
            {
                Response::Submitted { .. } => break,
                Response::Transient { .. } => {}
                other => panic!("unexpected submit response: {other:?}"),
            }
        }
    }
}

/// Opens the daemon, retrying transient brown-out failures during
/// replay (each failed attempt consumes fault-window slots).
fn open_tolerant(dir: &Path) -> Daemon {
    loop {
        match Daemon::open(cfg(dir)) {
            Ok(daemon) => return daemon,
            Err(e) => assert!(
                !failpoint::is_crash(&e),
                "no process death is armed, yet open crashed: {e}"
            ),
        }
    }
}

/// Drains the table: failed jobs burn their backoff and retry,
/// quarantined jobs stay parked. The daemon must survive every round
/// (Contract 13: only injected process death may kill it).
fn drain(daemon: &mut Daemon) {
    while daemon.has_running() {
        daemon
            .round()
            .expect("a fault must park a job, not kill the daemon");
    }
    assert!(!daemon.is_dead(), "daemon died under chaos");
}

/// The full job table via the status verb.
fn rows(daemon: &mut Daemon) -> Vec<JobStatus> {
    match daemon
        .handle(&Request::Status { id: None })
        .expect("status")
    {
        Response::Status { jobs } => jobs,
        other => panic!("status failed: {other:?}"),
    }
}

/// The failure details of a parked job: (state, retries, backoff, reason).
fn fail_info(daemon: &mut Daemon, id: &str) -> (String, u32, u32, String) {
    match daemon
        .handle(&Request::FailInfo { id: id.to_string() })
        .expect("fail-info")
    {
        Response::FailInfo {
            state,
            retries,
            backoff_rounds,
            reason,
            ..
        } => (
            state.to_string(),
            retries,
            backoff_rounds,
            reason.unwrap_or_default(),
        ),
        other => panic!("fail-info failed: {other:?}"),
    }
}

/// Issues the manual retry verb and asserts it is accepted.
fn retry(daemon: &mut Daemon, id: &str) {
    match daemon
        .handle(&Request::Retry { id: id.to_string() })
        .expect("retry")
    {
        Response::Ok => {}
        other => panic!("retry rejected: {other:?}"),
    }
}

/// Drains, then revives quarantined jobs and drains again until the
/// whole table is done. Terminates only once the armed faults are
/// exhausted or disarmed; bounded to fail loudly instead of hanging.
fn revive_and_drain(daemon: &mut Daemon) {
    for _ in 0..32 {
        drain(daemon);
        let quarantined: Vec<String> = rows(daemon)
            .into_iter()
            .filter(|j| j.state == "quarantined")
            .map(|j| j.id)
            .collect();
        if quarantined.is_empty() {
            return;
        }
        for id in quarantined {
            retry(daemon, &id);
        }
    }
    panic!("table failed to drain after 32 revival passes");
}

#[test]
fn panicking_job_quarantines_and_survivors_stay_byte_identical() {
    let _guard = serialize();
    let want = baseline();
    let specs = jobs();
    let victim = specs[2].id(); // GA on nangate45
    let dir = base_dir().join("panic_quarantine");
    let _ = std::fs::remove_dir_all(&dir);

    // The victim's evaluator panics at its first step past 8 sims, on
    // the initial attempt and on every automatic retry.
    faults::arm_panic(&victim, 8);
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    submit_all(&mut daemon, &specs);
    drain(&mut daemon);

    // The victim crash-looped through its retry budget into quarantine
    // with a stable, attributable reason.
    let (state, retries, backoff, reason) = fail_info(&mut daemon, &victim);
    assert_eq!(state, "quarantined");
    assert_eq!(retries, cfg(&dir).max_retries);
    assert_eq!(backoff, 0, "quarantined jobs have no pending retry");
    assert!(
        reason.starts_with("panic: cv-bench fault injection"),
        "unexpected failure reason: {reason}"
    );
    assert!(
        reason.contains(&victim),
        "reason must name the victim: {reason}"
    );

    // Contract 13, mid-quarantine: every other job drained to done with
    // artifacts byte-identical to the clean run, and the poisoned job
    // published no result.
    let mid = snapshot(&dir);
    for row in rows(&mut daemon) {
        if row.id != victim {
            assert_eq!(row.state, "done", "survivor {} not done", row.id);
            assert_job_unperturbed(&mid, &want.files, &row.id);
        }
    }
    assert!(
        !mid.contains_key(&format!("{victim}.done")),
        "a quarantined job must not publish a result"
    );

    // Still armed: a manual retry crash-loops straight back to
    // quarantine, and — because retries resume from a durable
    // checkpoint on a deterministic trajectory — with the byte-equal
    // reason string.
    retry(&mut daemon, &victim);
    drain(&mut daemon);
    let (state2, _, _, reason2) = fail_info(&mut daemon, &victim);
    assert_eq!(state2, "quarantined");
    assert_eq!(
        reason2, reason,
        "crash-loop reason must be deterministic across retries"
    );

    // Disarm and retry once more: the victim completes and the whole
    // directory — canonical journal included — byte-matches the run
    // that never saw a fault.
    faults::disarm();
    retry(&mut daemon, &victim);
    drain(&mut daemon);
    drop(daemon);
    assert_snapshots_equal(&snapshot(&dir), &want.files);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_survives_restart_and_blind_resubmit_revives_it() {
    let _guard = serialize();
    let want = baseline();
    let specs = jobs();
    let victim = specs[5].id(); // Random on scaled8nm
    let dir = base_dir().join("restart_failed");
    let _ = std::fs::remove_dir_all(&dir);

    faults::arm_panic(&victim, 6);
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    submit_all(&mut daemon, &specs);
    drain(&mut daemon);
    let before = fail_info(&mut daemon, &victim);
    assert_eq!(before.0, "quarantined");
    drop(daemon);

    // Restart with the fault gone: the journaled failure record must
    // replay the quarantine verbatim — state, retry count, and reason.
    faults::disarm();
    let mut daemon = Daemon::open(cfg(&dir)).expect("reopen");
    assert_eq!(
        fail_info(&mut daemon, &victim),
        before,
        "failure details must replay across restarts"
    );

    // The client's blind recovery path — idempotently re-submitting the
    // whole set — revives the quarantined job in place.
    submit_all(&mut daemon, &specs);
    drain(&mut daemon);
    drop(daemon);
    assert_snapshots_equal(&snapshot(&dir), &want.files);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Transient IO brown-outs at a random durable tick, for a random
    /// window of failing operations: jobs caught mid-write are parked
    /// and automatically retried from their last durable checkpoint,
    /// the daemon keeps serving, and the drained directory byte-matches
    /// the clean run.
    #[test]
    fn transient_brownouts_degrade_then_drain_byte_identically(
        tick_frac in 0.02f64..0.98,
        window in 1u64..10,
    ) {
        let _guard = serialize();
        let want = baseline();
        let tick = ((want.span as f64) * tick_frac).max(1.0) as u64;
        let dir = base_dir().join("brownout");
        let _ = std::fs::remove_dir_all(&dir);

        failpoint::arm_transient_ticks(tick, window);
        let mut daemon = open_tolerant(&dir);
        submit_all(&mut daemon, &jobs());
        revive_and_drain(&mut daemon);
        for row in rows(&mut daemon) {
            assert_eq!(row.state, "done", "{} did not recover from the brown-out", row.id);
        }
        drop(daemon);
        failpoint::disarm();
        assert_snapshots_equal(&snapshot(&dir), &want.files);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance criterion: random panic × brown-out
    /// interleavings. A random victim panics at a random progress
    /// threshold while (optionally) a transient IO window fails durable
    /// writes under every job; the daemon must never die, every job
    /// that reports *done* mid-fault must be byte-identical to the
    /// clean run, and once the faults clear the table drains to the
    /// exact clean-run directory.
    #[test]
    fn random_fault_interleavings_leave_survivors_byte_identical(
        victim_idx in 0usize..8,
        panic_sims in 1usize..20,
        io_frac in 0.0f64..1.0,
        window in 0u64..6, // 0 = panic only, no brown-out
    ) {
        let _guard = serialize();
        let want = baseline();
        let specs = jobs();
        let victim = specs[victim_idx].id();
        let dir = base_dir().join("fault_interleave");
        let _ = std::fs::remove_dir_all(&dir);

        faults::arm_panic(&victim, panic_sims);
        if window > 0 {
            let tick = ((want.span as f64) * io_frac).max(1.0) as u64;
            failpoint::arm_transient_ticks(tick, window);
        }
        let mut daemon = open_tolerant(&dir);
        submit_all(&mut daemon, &specs);
        drain(&mut daemon);

        // Contract 13, mid-fault: completed jobs are unperturbed.
        let mid = snapshot(&dir);
        for row in rows(&mut daemon) {
            if row.state == "done" {
                assert_job_unperturbed(&mid, &want.files, &row.id);
            }
        }

        // Heal everything; revive whatever quarantined; full identity.
        faults::disarm();
        failpoint::disarm();
        revive_and_drain(&mut daemon);
        drop(daemon);
        assert_snapshots_equal(&snapshot(&dir), &want.files);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
