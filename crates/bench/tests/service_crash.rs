//! Fault-injection suite for the `campaignd` service (Contract 11).
//!
//! Each test boots a daemon over a state directory, submits a mixed set
//! of **eight concurrent jobs** (both techs × four methods, width 8),
//! and kills the run at an injected crash point — a random durable
//! tick or a named op boundary — via the `cv-journal` failpoint in
//! `Error` mode (the in-process simulation of `kill -9`: the crashing
//! operation and every later durable write fail, leaving exactly the
//! bytes a dead process would). A fresh daemon then replays the service
//! journal, the client blindly re-submits the whole job set (submits
//! are idempotent), the table drains, and the directory must byte-match
//! a never-killed run — journals, telemetry, results, everything. The
//! CI `campaignd-smoke` job replays the same contract with real
//! process aborts over TCP.

use cv_bench::harness::{Method, TechLibrary};
use cv_bench::service::{Daemon, DaemonConfig, JobSpec, Request, Response};
use cv_journal::failpoint::{self, FailOp, Mode};
use cv_prefix::CircuitKind;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The failpoint harness is process-global state: tests must not
/// overlap. Every test body runs under this lock, starting disarmed.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    failpoint::disarm();
    guard
}

fn base_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cv_service_crash_{}", std::process::id()))
}

/// The mixed job set of the acceptance criterion: eight concurrent
/// jobs — both techs × {SA, Random, GA, GA-NSGA2} — at width 8.
fn jobs() -> Vec<JobSpec> {
    let methods = [Method::Sa, Method::Random, Method::Ga, Method::GaNsga2];
    let techs = [TechLibrary::Nangate45Like, TechLibrary::Scaled8nmLike];
    let mut specs = Vec::new();
    for &tech in &techs {
        for &method in &methods {
            specs.push(JobSpec {
                method,
                kind: CircuitKind::Adder,
                width: 8,
                tech,
                delay_weight: 0.5,
                budget: 20,
                seed: 31,
            });
        }
    }
    specs
}

fn cfg(dir: &Path) -> DaemonConfig {
    DaemonConfig {
        dir: dir.to_path_buf(),
        threads: 2,
        checkpoint_every: 5,
        slice_steps: 2,
        // Small cap: long runs force service-journal rotation too.
        journal_max_bytes: 4096,
        max_retries: 3,
    }
}

/// Every file in `dir` as name → bytes; asserts no staging files leak.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("service dir exists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "staging file {name} leaked into the final directory"
        );
        files.insert(name, std::fs::read(entry.path()).expect("file readable"));
    }
    files
}

fn assert_snapshots_equal(got: &BTreeMap<String, Vec<u8>>, want: &BTreeMap<String, Vec<u8>>) {
    let names = |m: &BTreeMap<String, Vec<u8>>| m.keys().cloned().collect::<Vec<_>>();
    assert_eq!(names(got), names(want), "directory listings differ");
    for (name, want_bytes) in want {
        assert_eq!(&got[name], want_bytes, "{name} differs from the clean run");
    }
}

/// One daemon lifetime: open, blindly (re-)submit the whole job set,
/// optionally cancel `cancel_id`, then drain. `Err` means the injected
/// crash killed this "process"; the on-disk state is whatever the crash
/// point left durable.
fn drive(dir: &Path, specs: &[JobSpec], cancel_id: Option<&str>) -> io::Result<()> {
    let mut daemon = Daemon::open(cfg(dir))?;
    for spec in specs {
        match daemon.handle(&Request::Submit(spec.clone()))? {
            Response::Submitted { .. } => {}
            Response::Error { message } => panic!("submit rejected: {message}"),
            other => panic!("unexpected submit response: {other:?}"),
        }
    }
    if let Some(id) = cancel_id {
        // Give the victim a few slices first so cancellation tears down
        // real progress (checkpoints, journal, telemetry).
        for _ in 0..3 {
            daemon.round()?;
        }
        // After a restart the victim is already gone: `unknown job` is
        // the expected (side-effect-free) answer then.
        match daemon.handle(&Request::Cancel { id: id.to_string() })? {
            Response::Ok | Response::Error { .. } => {}
            other => panic!("unexpected cancel response: {other:?}"),
        }
    }
    while daemon.has_running() {
        daemon.round()?;
    }
    Ok(())
}

/// The uninterrupted reference: directory snapshot + durable tick span.
struct Baseline {
    files: BTreeMap<String, Vec<u8>>,
    span: u64,
}

fn baseline_for(name: &str, cancel_id: Option<&str>) -> Baseline {
    let dir = base_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let before = failpoint::ticks();
    drive(&dir, &jobs(), cancel_id).expect("clean run completes");
    let span = failpoint::ticks() - before;
    assert!(span > 0, "a persistent service spends durable ticks");
    Baseline {
        files: snapshot(&dir),
        span,
    }
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| baseline_for("baseline", None))
}

/// Kills a drive at `arm` (ticks into the run), then reopens with the
/// harness disarmed and drains to completion. Panics on non-crash
/// errors.
fn crash_then_recover(dir: &Path, arm: impl Fn(), cancel_id: Option<&str>) {
    let _ = std::fs::remove_dir_all(dir);
    arm();
    match drive(dir, &jobs(), cancel_id) {
        // The budget outlived the run: fine, recovery is then a no-op
        // replay — still asserted byte-identical below.
        Ok(()) => {}
        Err(e) => assert!(
            failpoint::is_crash(&e),
            "only injected crashes may kill a drive: {e}"
        ),
    }
    failpoint::disarm();
    drive(dir, &jobs(), cancel_id).expect("recovery run completes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance criterion, in-process: eight concurrent jobs,
    /// killed at a random durable tick, restarted (with the client
    /// blindly re-submitting the whole set) and drained — the directory
    /// byte-matches the never-killed run, journals included.
    #[test]
    fn killed_service_recovers_byte_identically(tick_frac in 0.0f64..1.0) {
        let _guard = serialize();
        let want = baseline();
        let tick = ((want.span as f64) * tick_frac).max(1.0) as u64;
        let dir = base_dir().join("tick_crash");
        crash_then_recover(&dir, || failpoint::arm_ticks(tick, Mode::Error), None);
        assert_snapshots_equal(&snapshot(&dir), &want.files);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn op_boundary_kills_recover_byte_identically() {
    let _guard = serialize();
    let want = baseline();
    // The classic crash points by name: before an fsync (bytes written,
    // not durable), before a rename (tmp complete, never published),
    // before a dirsync (published, parent not yet durable), and before
    // a journal-recovery truncate on the *second* life.
    let cases: &[(FailOp, u64)] = &[
        (FailOp::Fsync, 1),
        (FailOp::Fsync, 7),
        (FailOp::Rename, 1),
        (FailOp::Rename, 5),
        (FailOp::DirSync, 3),
        (FailOp::Create, 4),
    ];
    for &(op, nth) in cases {
        let dir = base_dir().join("op_crash");
        crash_then_recover(&dir, || failpoint::arm_op(op, nth, Mode::Error), None);
        assert_snapshots_equal(&snapshot(&dir), &want.files);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn double_kill_still_recovers_byte_identically() {
    let _guard = serialize();
    let want = baseline();
    let dir = base_dir().join("double_crash");
    let _ = std::fs::remove_dir_all(&dir);
    // First life dies early (mid-submission), second life dies midway
    // through the drain, third life completes.
    for frac in [0.07, 0.55] {
        let tick = ((want.span as f64) * frac).max(1.0) as u64;
        failpoint::arm_ticks(tick, Mode::Error);
        match drive(&dir, &jobs(), None) {
            Ok(()) => {}
            Err(e) => assert!(failpoint::is_crash(&e), "unexpected error: {e}"),
        }
    }
    failpoint::disarm();
    drive(&dir, &jobs(), None).expect("third life completes");
    assert_snapshots_equal(&snapshot(&dir), &want.files);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_survives_kills_byte_identically() {
    let _guard = serialize();
    let victim = jobs()[2].id(); // GA on nangate45
    let want = baseline_for("cancel_baseline", Some(&victim));
    // The cancelled job must leave no trace in the final directory.
    for name in want.files.keys() {
        assert!(
            !name.starts_with(&victim),
            "cancelled job left {name} behind"
        );
    }
    for frac in [0.2f64, 0.6, 0.9] {
        let tick = ((want.span as f64) * frac).max(1.0) as u64;
        let dir = base_dir().join("cancel_crash");
        crash_then_recover(
            &dir,
            || failpoint::arm_ticks(tick, Mode::Error),
            Some(&victim),
        );
        assert_snapshots_equal(&snapshot(&dir), &want.files);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn paused_jobs_survive_kills() {
    let _guard = serialize();
    // Pause one job mid-run, crash, restart: the job must come back
    // paused at its checkpointed progress; resuming and draining then
    // lands on the clean-run bytes.
    let want = baseline();
    let specs = jobs();
    let paused_id = specs[5].id();
    let dir = base_dir().join("pause_crash");
    let _ = std::fs::remove_dir_all(&dir);

    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    for spec in &specs {
        daemon
            .handle(&Request::Submit(spec.clone()))
            .expect("submit");
    }
    for _ in 0..2 {
        daemon.round().expect("round");
    }
    daemon
        .handle(&Request::Pause {
            id: paused_id.clone(),
        })
        .expect("pause");
    let sims_at_pause = pause_sims(&mut daemon, &paused_id);
    // Kill the daemon a little later (other jobs keep running).
    failpoint::arm_ticks(2_000, Mode::Error);
    loop {
        match daemon.round() {
            Ok(0) => break, // everything else drained before the crash
            Ok(_) => {}
            Err(e) => {
                assert!(failpoint::is_crash(&e), "unexpected error: {e}");
                break;
            }
        }
    }
    drop(daemon);
    failpoint::disarm();

    // Restart: the pause must have survived, at the exact checkpointed
    // progress.
    let mut daemon = Daemon::open(cfg(&dir)).expect("reopen");
    assert_eq!(pause_sims(&mut daemon, &paused_id), sims_at_pause);
    daemon
        .handle(&Request::Resume {
            id: paused_id.clone(),
        })
        .expect("resume");
    drop(daemon);
    // Let the shared drive path finish the drain (idempotent resubmit).
    drive(&dir, &specs, None).expect("drain completes");
    assert_snapshots_equal(&snapshot(&dir), &want.files);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Asserts `id` is paused and returns its reported progress.
fn pause_sims(daemon: &mut Daemon, id: &str) -> usize {
    match daemon
        .handle(&Request::Status {
            id: Some(id.to_string()),
        })
        .expect("status")
    {
        Response::Status { jobs } => {
            assert_eq!(jobs.len(), 1);
            assert_eq!(jobs[0].state, "paused", "{id} must be paused");
            jobs[0].sims
        }
        other => panic!("status failed: {other:?}"),
    }
}
