//! Fault-injection suite for campaign durability (Contract 10).
//!
//! Every test kills a campaign at an injected crash point — a random
//! durable tick, a named op boundary (pre-fsync, pre-rename), a torn
//! journal tail, or a truncated `.done` — then resumes with the harness
//! disarmed and asserts the directory and the summary CSV byte-match an
//! uninterrupted run. The crash points are driven by the `cv-journal`
//! failpoint harness in `Error` mode, so one process can die and resume
//! hundreds of times; the CI `crash-smoke` job replays the same
//! contract with real `CV_FAILPOINT` process aborts.

use cv_bench::campaign::{run_campaign, summary_csv, CampaignConfig, CampaignTask, TaskResult};
use cv_bench::harness::{ExperimentSpec, Method};
use cv_journal::failpoint::{self, FailOp, Mode};
use cv_prefix::CircuitKind;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The failpoint harness is process-global state: tests must not
/// overlap. Every test body runs under this lock, starting disarmed.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    failpoint::disarm();
    guard
}

fn base_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cv_crash_recovery_{}", std::process::id()))
}

/// The fixed grid every test runs: two cheap methods, small budget,
/// frequent checkpoints (several durable writes per task).
fn tasks() -> Vec<CampaignTask> {
    vec![
        CampaignTask {
            method: Method::Sa,
            spec: ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 24),
            seed: 11,
        },
        CampaignTask {
            method: Method::Random,
            spec: ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 24),
            seed: 12,
        },
    ]
}

fn cfg(dir: &Path, journal_max_bytes: u64) -> CampaignConfig {
    CampaignConfig {
        dir: Some(dir.to_path_buf()),
        checkpoint_every: 5,
        threads: 1,
        halt_after: None,
        journal_max_bytes,
    }
}

/// Every file in `dir` as name → bytes; asserts no staging files leak.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("campaign dir exists") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "staging file {name} leaked into the final directory"
        );
        files.insert(name, std::fs::read(entry.path()).expect("file readable"));
    }
    files
}

fn assert_snapshots_equal(got: &BTreeMap<String, Vec<u8>>, want: &BTreeMap<String, Vec<u8>>) {
    let names = |m: &BTreeMap<String, Vec<u8>>| m.keys().cloned().collect::<Vec<_>>();
    assert_eq!(names(got), names(want), "directory listings differ");
    for (name, want_bytes) in want {
        assert_eq!(&got[name], want_bytes, "{name} differs from the clean run");
    }
}

/// The uninterrupted reference run: its directory snapshot, summary
/// CSV, per-task result bytes, and the durable tick length of the run.
struct Baseline {
    files: BTreeMap<String, Vec<u8>>,
    summary: String,
    results: Vec<(Vec<u8>, Vec<u8>)>,
    span: u64,
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = base_dir().join("baseline");
        let _ = std::fs::remove_dir_all(&dir);
        let tasks = tasks();
        let before = failpoint::ticks();
        let results = run_campaign(&tasks, &cfg(&dir, 1 << 20));
        let span = failpoint::ticks() - before;
        assert!(results.iter().all(Option::is_some), "clean run completes");
        assert!(span > 0, "a persistent campaign spends durable ticks");
        Baseline {
            files: snapshot(&dir),
            summary: summary_csv(&tasks, &results),
            results: result_bytes(&results),
            span,
        }
    })
}

fn result_bytes(results: &[Option<TaskResult>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("completed");
            (r.outcome.to_ckpt_bytes(), r.archive.to_ckpt_bytes())
        })
        .collect()
}

/// Resumes `dir` with the harness disarmed and asserts everything —
/// results, summary CSV, and on-disk bytes — matches the baseline.
fn resume_and_check(dir: &Path, journal_max_bytes: u64) {
    failpoint::disarm();
    let tasks = tasks();
    let resumed = run_campaign(&tasks, &cfg(dir, journal_max_bytes));
    assert!(
        resumed.iter().all(Option::is_some),
        "a disarmed resume runs to completion"
    );
    let base = baseline();
    assert_eq!(result_bytes(&resumed), base.results);
    assert_eq!(summary_csv(&tasks, &resumed), base.summary);
    assert_snapshots_equal(&snapshot(dir), &base.files);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: kill the campaign at a *random* durable
    /// tick — which can land in the middle of any write, tearing it at
    /// an arbitrary byte — and the resume replays to the same
    /// `campaign_summary.csv` and the same directory bytes as a clean
    /// run (Contract 8 extended by Contract 10).
    #[test]
    fn random_tick_crash_resumes_byte_identical(t in 0u64..1_000_000) {
        let _guard = serialize();
        let base = baseline();
        let tick = 1 + t % base.span;
        let dir = base_dir().join("random_tick");
        let _ = std::fs::remove_dir_all(&dir);

        failpoint::arm_ticks(tick, Mode::Error);
        let halted = run_campaign(&tasks(), &cfg(&dir, 1 << 20));
        prop_assert!(failpoint::crashed(), "tick {tick} lies inside the run");
        prop_assert!(
            halted.iter().any(Option::is_none),
            "the crashing task cannot report a result"
        );

        resume_and_check(&dir, 1 << 20);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The named crash points from the durability contract: dying right
/// before an fsync (bytes written, nothing durable), right before a
/// rename (tmp complete, never published), and right before a parent
/// directory sync (published, directory entry not yet durable).
#[test]
fn op_boundary_crashes_resume_byte_identical() {
    let _guard = serialize();
    baseline();
    for op in [FailOp::Fsync, FailOp::Rename, FailOp::DirSync] {
        for nth in [1u64, 2, 4, 7] {
            let dir = base_dir().join("op_boundary");
            let _ = std::fs::remove_dir_all(&dir);
            failpoint::arm_op(op, nth, Mode::Error);
            let halted = run_campaign(&tasks(), &cfg(&dir, 1 << 20));
            assert!(
                failpoint::crashed(),
                "{op:?} #{nth} occurs during the campaign"
            );
            assert!(halted.iter().any(Option::is_none));
            resume_and_check(&dir, 1 << 20);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A crash in the middle of a journal append leaves a torn tail. Build
/// the reachable state directly: halt after the first checkpoint, cut
/// the journal mid-frame, and resume — with the `.ckpt` file present
/// (falls back to it) and absent (replays the shorter journal prefix,
/// restarting fresh if no checkpoint survived).
#[test]
fn mid_append_torn_journal_tail_recovers() {
    let _guard = serialize();
    baseline();
    let first_id = tasks()[0].id();
    for cut in [1usize, 3, 7, 16] {
        for keep_ckpt in [true, false] {
            let dir = base_dir().join("torn_tail");
            let _ = std::fs::remove_dir_all(&dir);
            let mut halted_cfg = cfg(&dir, 1 << 20);
            halted_cfg.halt_after = Some(1);
            let halted = run_campaign(&tasks(), &halted_cfg);
            assert!(halted.iter().any(Option::is_none), "halt interrupts");

            let journal_path = dir.join(format!("{first_id}.journal"));
            let bytes = std::fs::read(&journal_path).expect("journal written");
            assert!(bytes.len() > 8 + cut, "journal holds records to tear");
            std::fs::write(&journal_path, &bytes[..bytes.len() - cut]).expect("tear tail");
            if !keep_ckpt {
                let _ = std::fs::remove_file(dir.join(format!("{first_id}.ckpt")));
            }

            resume_and_check(&dir, 1 << 20);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The `.done` decode-panic regression (satellite 2): truncate a task's
/// `.done` at **every** byte boundary; recovery must never panic, must
/// quarantine the corrupt file, and must heal it byte-exactly from the
/// journal's *completed* record.
#[test]
fn done_truncated_at_every_byte_boundary_heals_from_journal() {
    let _guard = serialize();
    let base = baseline();
    let dir = base_dir().join("done_truncate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    // Materialize a completed directory from the baseline snapshot.
    for (name, bytes) in &base.files {
        std::fs::write(dir.join(name), bytes).expect("copy baseline file");
    }
    let done_name = format!("{}.done", tasks()[0].id());
    let done_bytes = base.files[&done_name].clone();
    for k in 0..done_bytes.len() {
        std::fs::write(dir.join(&done_name), &done_bytes[..k]).expect("truncate .done");
        resume_and_check(&dir, 1 << 20);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a journal (a pre-journal directory, or one lost with the
/// disk), a truncated `.done` falls back to a full fresh re-run — still
/// byte-identical, just not instant.
#[test]
fn done_truncated_without_journal_falls_back_to_fresh_run() {
    let _guard = serialize();
    let base = baseline();
    let done_name = format!("{}.done", tasks()[0].id());
    let journal_name = format!("{}.journal", tasks()[0].id());
    let done_len = base.files[&done_name].len();
    for k in [0, done_len / 2, done_len - 1] {
        let dir = base_dir().join("done_fallback");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dir");
        for (name, bytes) in &base.files {
            std::fs::write(dir.join(name), bytes).expect("copy baseline file");
        }
        std::fs::write(dir.join(&done_name), &base.files[&done_name][..k]).expect("truncate .done");
        std::fs::remove_file(dir.join(&journal_name)).expect("drop journal");
        resume_and_check(&dir, 1 << 20);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Journal rotation under a 1-byte cap (every checkpoint rotates) must
/// not change any final artifact — and a crash while rotating must
/// still resume clean.
#[test]
fn forced_journal_rotation_preserves_outputs() {
    let _guard = serialize();
    let base = baseline();

    // Clean run under constant rotation: same final bytes.
    let dir = base_dir().join("rotation_clean");
    let _ = std::fs::remove_dir_all(&dir);
    let tasks_v = tasks();
    let results = run_campaign(&tasks_v, &cfg(&dir, 1));
    assert!(results.iter().all(Option::is_some));
    assert_eq!(result_bytes(&results), base.results);
    assert_snapshots_equal(&snapshot(&dir), &base.files);
    let _ = std::fs::remove_dir_all(&dir);

    // Crash mid-run (rotation traffic included), then resume.
    for divisor in [4u64, 2, 1] {
        let dir = base_dir().join("rotation_crash");
        let _ = std::fs::remove_dir_all(&dir);
        failpoint::arm_ticks((base.span / divisor).max(1), Mode::Error);
        let halted = run_campaign(&tasks_v, &cfg(&dir, 1));
        if failpoint::crashed() {
            assert!(halted.iter().any(Option::is_none));
        }
        resume_and_check(&dir, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
