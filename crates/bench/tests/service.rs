//! Semantics suite for the `campaignd` daemon core (DESIGN.md §10).
//!
//! The load-bearing property is *schedule independence*: however the
//! daemon interleaves jobs — fair multiplexed rounds, one job at a
//! time, pause/resume churn, random command scripts — every job's
//! final outcome, frontier, and on-disk artifacts byte-match a plain
//! sequential driver loop of the same method×spec×seed. Plus the
//! protocol-level lifecycle rules: idempotent re-submit, spec-collision
//! rejection, cancellation GC, and a TCP end-to-end pass.

use circuitvae::driver::SearchDriver;
use cv_bench::harness::{build_evaluator, Method, TechLibrary};
use cv_bench::make_driver;
use cv_bench::service::{
    active_connections, serve_with, Daemon, DaemonConfig, JobSpec, Request, Response, ServeOptions,
};
use cv_prefix::CircuitKind;
use cv_synth::ParetoArchive;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn base_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cv_service_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(method: Method, tech: TechLibrary, budget: usize, seed: u64) -> JobSpec {
    JobSpec {
        method,
        kind: CircuitKind::Adder,
        width: 8,
        tech,
        delay_weight: 0.5,
        budget,
        seed,
    }
}

fn cfg(dir: &Path) -> DaemonConfig {
    DaemonConfig {
        dir: dir.to_path_buf(),
        threads: 2,
        checkpoint_every: 5,
        slice_steps: 3,
        journal_max_bytes: 1 << 20,
        max_retries: 3,
    }
}

fn submit(daemon: &mut Daemon, spec: &JobSpec) -> String {
    match daemon
        .handle(&Request::Submit(spec.clone()))
        .expect("submit")
    {
        Response::Submitted { id, .. } => id,
        other => panic!("submit failed: {other:?}"),
    }
}

fn drain(daemon: &mut Daemon) {
    while daemon.has_running() {
        daemon.round().expect("round");
    }
}

fn frontier(daemon: &mut Daemon, id: &str) -> Vec<(f64, f64, usize)> {
    match daemon
        .handle(&Request::Frontier { id: id.to_string() })
        .expect("frontier")
    {
        Response::Frontier { front, .. } => front,
        other => panic!("frontier failed: {other:?}"),
    }
}

fn status_row(daemon: &mut Daemon, id: &str) -> (String, usize, f64) {
    match daemon
        .handle(&Request::Status {
            id: Some(id.to_string()),
        })
        .expect("status")
    {
        Response::Status { jobs } => {
            assert_eq!(jobs.len(), 1);
            (jobs[0].state.to_string(), jobs[0].sims, jobs[0].best)
        }
        other => panic!("status failed: {other:?}"),
    }
}

/// The sequential reference: a plain driver loop with an observing
/// archive, exactly what `run_method_on` does plus frontier tracking.
fn model(spec: &JobSpec) -> (cv_synth::SearchOutcome, ParetoArchive) {
    let evaluator = build_evaluator(&spec.to_spec());
    let shared = ParetoArchive::new().with_log().into_shared();
    evaluator.attach_archive(shared.clone());
    let outcome =
        make_driver(spec.method, &spec.to_spec(), spec.seed).run_to_completion(&evaluator);
    evaluator.detach_archive();
    let archive = shared.lock().clone();
    (outcome, archive)
}

fn model_front(archive: &ParetoArchive) -> Vec<(f64, f64, usize)> {
    archive
        .front()
        .iter()
        .map(|p| (p.ppa.area_um2, p.ppa.delay_ns, p.sims))
        .collect()
}

/// Reads the per-job durable artifacts (`.done`, `.jsonl`, `.journal`)
/// of `id` under `dir`.
fn job_files(dir: &Path, id: &str) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for ext in ["done", "jsonl", "journal"] {
        let path = dir.join(format!("{id}.{ext}"));
        files.insert(
            format!("{id}.{ext}"),
            std::fs::read(&path).unwrap_or_else(|e| panic!("{} readable: {e}", path.display())),
        );
    }
    assert!(
        !dir.join(format!("{id}.ckpt")).exists(),
        "{id}: completed jobs must not leave a checkpoint behind"
    );
    files
}

/// Runs each spec in its own single-job daemon (one at a time, separate
/// directory) and returns the per-job file bytes — the
/// schedule-independence reference for multiplexed runs.
fn sequential_reference(dir: &Path, specs: &[JobSpec]) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for spec in specs {
        let mut daemon = Daemon::open(cfg(dir)).expect("open");
        let id = submit(&mut daemon, spec);
        drain(&mut daemon);
        files.extend(job_files(dir, &id));
    }
    files
}

#[test]
fn multiplexed_jobs_match_sequential_driver_loops() {
    let specs = [
        job(Method::Sa, TechLibrary::Nangate45Like, 30, 1),
        job(Method::Random, TechLibrary::Scaled8nmLike, 24, 2),
        job(Method::GaNsga2, TechLibrary::Nangate45Like, 24, 3),
    ];
    let dir = base_dir("multiplex");
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    let ids: Vec<String> = specs.iter().map(|s| submit(&mut daemon, s)).collect();
    drain(&mut daemon);

    // Against the in-memory sequential model: outcome and frontier.
    for (spec, id) in specs.iter().zip(&ids) {
        let (outcome, archive) = model(spec);
        let (state, sims, best) = status_row(&mut daemon, id);
        assert_eq!(state, "done");
        assert_eq!(sims, outcome.history.last().map_or(0, |&(s, _)| s));
        assert_eq!(best, outcome.best_cost, "{id}: best cost differs");
        assert_eq!(
            frontier(&mut daemon, id),
            model_front(&archive),
            "{id}: frontier differs from the sequential driver loop"
        );
    }

    // Against a one-job-at-a-time daemon: byte-identical artifacts.
    let seq_dir = base_dir("multiplex_seq");
    let reference = sequential_reference(&seq_dir, &specs);
    for id in &ids {
        for (name, bytes) in job_files(&dir, id) {
            assert_eq!(
                bytes, reference[&name],
                "{name}: multiplexed bytes differ from single-job run"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&seq_dir);
}

#[test]
fn pause_resume_preserves_results_exactly() {
    let spec = job(Method::Sa, TechLibrary::Nangate45Like, 30, 7);
    let dir = base_dir("pause");
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    let id = submit(&mut daemon, &spec);

    for _ in 0..3 {
        daemon.round().expect("round");
    }
    assert!(matches!(
        daemon
            .handle(&Request::Pause { id: id.clone() })
            .expect("pause"),
        Response::Ok
    ));
    let (state, paused_sims, _) = status_row(&mut daemon, &id);
    assert_eq!(state, "paused");
    // Paused jobs do not advance, however many rounds pass.
    for _ in 0..5 {
        assert_eq!(daemon.round().expect("round"), 0, "paused daemon is idle");
    }
    assert_eq!(status_row(&mut daemon, &id).1, paused_sims);
    // Pause is idempotent; resume flips it back.
    assert!(matches!(
        daemon
            .handle(&Request::Pause { id: id.clone() })
            .expect("pause"),
        Response::Ok
    ));
    assert!(matches!(
        daemon
            .handle(&Request::Resume { id: id.clone() })
            .expect("resume"),
        Response::Ok
    ));
    drain(&mut daemon);

    let (outcome, archive) = model(&spec);
    let (_, _, best) = status_row(&mut daemon, &id);
    assert_eq!(best, outcome.best_cost);
    assert_eq!(frontier(&mut daemon, &id), model_front(&archive));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_removes_all_artifacts_and_frees_the_id() {
    let spec = job(Method::Random, TechLibrary::Nangate45Like, 24, 9);
    let dir = base_dir("cancel");
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    let id = submit(&mut daemon, &spec);
    for _ in 0..2 {
        daemon.round().expect("round");
    }
    assert!(dir.join(format!("{id}.journal")).exists());
    assert!(matches!(
        daemon
            .handle(&Request::Cancel { id: id.clone() })
            .expect("cancel"),
        Response::Ok
    ));
    for ext in ["done", "ckpt", "jsonl", "journal"] {
        assert!(
            !dir.join(format!("{id}.{ext}")).exists(),
            "cancel must remove {id}.{ext}"
        );
    }
    assert!(matches!(
        daemon
            .handle(&Request::Status {
                id: Some(id.clone())
            })
            .expect("status"),
        Response::Error { .. }
    ));
    // The id is free again: a fresh submit runs from scratch to the
    // same result as the model.
    let id2 = submit(&mut daemon, &spec);
    assert_eq!(id2, id);
    drain(&mut daemon);
    let (outcome, _) = model(&spec);
    assert_eq!(status_row(&mut daemon, &id).2, outcome.best_cost);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_is_idempotent_and_rejects_spec_collisions() {
    let spec = job(Method::Sa, TechLibrary::Nangate45Like, 24, 4);
    let dir = base_dir("idempotent");
    let mut daemon = Daemon::open(cfg(&dir)).expect("open");
    let id = submit(&mut daemon, &spec);

    match daemon
        .handle(&Request::Submit(spec.clone()))
        .expect("resubmit")
    {
        Response::Submitted { id: id2, existing } => {
            assert_eq!(id2, id);
            assert!(existing, "re-submit must be flagged as existing");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Same id, different spec (delay_weight is not part of the id).
    let mut conflicting = spec.clone();
    conflicting.delay_weight = 0.9;
    assert_eq!(conflicting.id(), id);
    assert!(matches!(
        daemon
            .handle(&Request::Submit(conflicting))
            .expect("conflict"),
        Response::Error { .. }
    ));
    // Lifecycle commands on unknown ids fail without side effects.
    for req in [
        Request::Pause {
            id: "nope".to_string(),
        },
        Request::Resume {
            id: "nope".to_string(),
        },
        Request::Cancel {
            id: "nope".to_string(),
        },
        Request::Frontier {
            id: "nope".to_string(),
        },
    ] {
        assert!(matches!(
            daemon.handle(&req).expect("unknown id"),
            Response::Error { .. }
        ));
    }
    drain(&mut daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Random command interleavings vs the sequential model
// ---------------------------------------------------------------------

/// One step of a random daemon script.
#[derive(Debug, Clone)]
enum Op {
    Rounds(u8),
    Pause(u8),
    Resume(u8),
}

/// The vendored proptest shim has no `prop_oneof`: encode the op as a
/// `(kind, arg)` tuple instead.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0u8..4).prop_map(|(kind, arg)| match kind {
        0 => Op::Rounds(1 + arg % 3),
        1 => Op::Pause(arg % 2),
        _ => Op::Resume(arg % 2),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random submit/pause/resume interleavings at random step counts:
    /// the surviving jobs' outcomes and archive fronts byte-match the
    /// sequential single-job reference (and the in-memory model),
    /// whatever the script did.
    #[test]
    fn random_interleavings_match_sequential_model(
        script in proptest::collection::vec(op_strategy(), 1..12),
        cancel_code in 0u8..3, // 0/1 = cancel that job, 2 = no cancel
    ) {
        let cancel_victim = (cancel_code < 2).then_some(cancel_code);
        let specs = [
            job(Method::Sa, TechLibrary::Nangate45Like, 20, 21),
            job(Method::Random, TechLibrary::Scaled8nmLike, 20, 22),
        ];
        let dir = base_dir("interleave");
        let mut daemon = Daemon::open(cfg(&dir)).expect("open");
        let ids: Vec<String> = specs.iter().map(|s| submit(&mut daemon, s)).collect();

        for op in &script {
            match op {
                Op::Rounds(n) => {
                    for _ in 0..*n {
                        daemon.round().expect("round");
                    }
                }
                Op::Pause(j) => {
                    daemon.handle(&Request::Pause { id: ids[*j as usize].clone() }).expect("pause");
                }
                Op::Resume(j) => {
                    daemon.handle(&Request::Resume { id: ids[*j as usize].clone() }).expect("resume");
                }
            }
        }
        // Mid-script cancellation of one victim, then a fresh re-submit:
        // the job must still land on the model bytes.
        if let Some(victim) = cancel_victim {
            let id = ids[victim as usize].clone();
            daemon.handle(&Request::Cancel { id: id.clone() }).expect("cancel");
            prop_assert_eq!(submit(&mut daemon, &specs[victim as usize]), id);
        }
        for id in &ids {
            daemon.handle(&Request::Resume { id: id.clone() }).expect("final resume");
        }
        drain(&mut daemon);

        let seq_dir = base_dir("interleave_seq");
        let reference = sequential_reference(&seq_dir, &specs);
        for (spec, id) in specs.iter().zip(&ids) {
            let (outcome, archive) = model(spec);
            let (state, _, best) = status_row(&mut daemon, id);
            prop_assert_eq!(state, "done");
            prop_assert_eq!(best, outcome.best_cost);
            prop_assert_eq!(frontier(&mut daemon, id), model_front(&archive));
            for (name, bytes) in job_files(&dir, id) {
                prop_assert_eq!(
                    &bytes,
                    &reference[&name],
                    "{} differs from the sequential reference", name
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&seq_dir);
    }
}

// ---------------------------------------------------------------------
// TCP end to end
// ---------------------------------------------------------------------

/// TCP tests share the process-wide connection gauge (and the ephemeral
/// port rendezvous): serialize them so limits and leak checks are
/// deterministic.
fn net_serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Boots a daemon server over `dir` with `opts`; returns the bound port
/// and the serving thread.
fn spawn_server(
    dir: &Path,
    opts: ServeOptions,
) -> (u16, std::thread::JoinHandle<std::io::Result<()>>) {
    let port_file = dir.join("port");
    std::fs::create_dir_all(dir).expect("mkdir");
    let daemon = Daemon::open(cfg(dir)).expect("open");
    let pf = port_file.clone();
    let server = std::thread::spawn(move || serve_with(daemon, "127.0.0.1:0", Some(&pf), opts));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "port file never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    (port, server)
}

#[test]
fn tcp_server_end_to_end() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let _net = net_serialize();
    let dir = base_dir("tcp");
    let (port, server) = spawn_server(&dir, ServeOptions::default());
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    fn raw_line(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        reply
    }
    fn roundtrip(
        writer: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> cv_bench::perf::Json {
        let reply = raw_line(writer, reader, &req.render());
        cv_bench::perf::parse_json(reply.trim()).expect("json response")
    }
    let ok =
        |json: &cv_bench::perf::Json| json.get("ok") == Some(&cv_bench::perf::Json::Bool(true));

    let spec = job(Method::Random, TechLibrary::Nangate45Like, 16, 5);
    let reply = roundtrip(&mut writer, &mut reader, &Request::Submit(spec.clone()));
    assert!(ok(&reply), "submit failed: {reply:?}");
    // Malformed lines answer an error without killing the connection.
    let line = raw_line(&mut writer, &mut reader, "{\"cmd\":\"wat\"}");
    assert!(line.contains("\"ok\":false"), "bad cmd must error: {line}");

    // Poll status until the job drains.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let json = roundtrip(&mut writer, &mut reader, &Request::Status { id: None });
        assert!(ok(&json));
        let all_done = match json.get("jobs") {
            Some(cv_bench::perf::Json::Arr(jobs)) => {
                !jobs.is_empty()
                    && jobs.iter().all(|j| {
                        j.get("state") == Some(&cv_bench::perf::Json::Str("done".to_string()))
                    })
            }
            _ => false,
        };
        if all_done {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never drained");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let json = roundtrip(
        &mut writer,
        &mut reader,
        &Request::Frontier { id: spec.id() },
    );
    assert!(ok(&json));
    match json.get("front") {
        Some(cv_bench::perf::Json::Arr(points)) => {
            assert!(!points.is_empty(), "drained job must serve a frontier")
        }
        other => panic!("malformed frontier: {other:?}"),
    }
    let json = roundtrip(&mut writer, &mut reader, &Request::Shutdown);
    assert!(ok(&json));
    server
        .join()
        .expect("server thread")
        .expect("serve returns cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Ingress hardening: fuzz frames, torn connections, overload shedding
// ---------------------------------------------------------------------

/// A raw line-protocol client for the fuzz tests.
struct Client {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            reader: std::io::BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Sends `frame` (arbitrary bytes) terminated by a newline, as one
    /// write. Fails the test if the connection is gone.
    fn send_raw(&mut self, frame: &[u8]) {
        self.try_send_raw(frame).expect("send");
    }

    /// Like [`Client::send_raw`], but surfaces a dead connection
    /// (shed/closed by the server) instead of failing the test.
    fn try_send_raw(&mut self, frame: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let mut line = Vec::with_capacity(frame.len() + 1);
        line.extend_from_slice(frame);
        line.push(b'\n');
        self.writer.write_all(&line)?;
        self.writer.flush()
    }

    /// Reads one response line; `None` means the server closed the
    /// connection (a reset counts: the server tearing down a connection
    /// with bytes still in flight surfaces as ECONNRESET client-side).
    fn recv(&mut self) -> Option<String> {
        use std::io::BufRead;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim().to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => None,
            Err(e) => panic!("recv failed: {e}"),
        }
    }

    /// Round-trips a well-formed request and asserts `"ok":true`.
    fn expect_ok(&mut self, req: &Request) {
        self.send_raw(req.render().as_bytes());
        let reply = self.recv().expect("server closed on a valid request");
        assert!(reply.contains("\"ok\":true"), "request rejected: {reply}");
    }
}

/// Polls until every connection handler in this process has exited.
fn assert_connections_drain() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while active_connections() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "{} connection handler(s) leaked",
            active_connections()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn malformed_frames_get_errors_and_never_kill_the_daemon() {
    let _net = net_serialize();
    let dir = base_dir("fuzz");
    let opts = ServeOptions {
        max_line_bytes: 512,
        ..ServeOptions::default()
    };
    let (port, server) = spawn_server(&dir, opts);

    // Every malformed frame must answer a structured error on the same
    // connection — never a panic, never a silent close.
    let bad: &[&[u8]] = &[
        b"{\"cmd\":\"explode\"}",   // unknown verb
        b"{\"cmd\":\"submit\"",     // truncated JSON
        b"not json at all",         // garbage text
        b"{}",                      // missing cmd
        b"[1,2,3]",                 // wrong JSON shape
        b"\"cmd\"",                 // bare string
        b"{\"cmd\":42}",            // wrong cmd type
        b"{\"cmd\":\"retry\"}",     // verb missing its id
        b"\xff\xfe\x00garbage\x80", // invalid UTF-8 binary
    ];
    let mut client = Client::connect(port);
    for frame in bad {
        client.send_raw(frame);
        let reply = client
            .recv()
            .unwrap_or_else(|| panic!("connection died on malformed frame {frame:?}"));
        assert!(
            reply.contains("\"ok\":false"),
            "malformed frame {frame:?} must error, got: {reply}"
        );
    }
    // The same connection still serves real requests afterwards.
    client.expect_ok(&Request::Ping);

    // An oversized line ends the connection — with an error naming the
    // cap when the reply outruns the teardown (the server may close
    // while oversized bytes are still in flight, which resets the
    // stream before the reply is readable).
    // A missing reply is fine too — reset-before-reply means the
    // connection is gone either way.
    let assert_capped = |client: &mut Client, what: &str| {
        if let Some(reply) = client.recv() {
            assert!(
                reply.contains("\"ok\":false") && reply.contains("exceeds"),
                "{what} must name the cap: {reply}"
            );
            assert!(client.recv().is_none(), "server must close after {what}");
        }
    };
    client.send_raw(&vec![b'a'; 600]);
    assert_capped(&mut client, "an oversized line");

    // A torn connection — half a frame, then the peer vanishes — must
    // only tear down that connection.
    {
        use std::io::Write;
        let mut torn = Client::connect(port);
        torn.writer
            .write_all(b"{\"cmd\":\"stat")
            .expect("partial frame");
        torn.writer.flush().expect("flush");
    } // dropped mid-request

    // A newline-free binary flood is capped and the connection ends.
    let mut flood = Client::connect(port);
    flood.send_raw(&vec![0u8; 2048]);
    assert_capped(&mut flood, "a binary flood");

    // After all of the above the daemon still serves and shuts down
    // cleanly, and no handler thread leaked.
    let mut survivor = Client::connect(port);
    survivor.expect_ok(&Request::Ping);
    survivor.expect_ok(&Request::Shutdown);
    server
        .join()
        .expect("server thread")
        .expect("serve survives fuzzed ingress");
    // Handlers exit on their client's EOF: close ours, then the gauge
    // must drain — no thread leaked for any of the abuse above.
    drop(client);
    drop(survivor);
    assert_connections_drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_limit_sheds_with_structured_overload() {
    let _net = net_serialize();
    let dir = base_dir("conn_limit");
    let opts = ServeOptions {
        max_connections: 2,
        ..ServeOptions::default()
    };
    let (port, server) = spawn_server(&dir, opts);

    // Fill the admission limit (each ping proves the handler is live,
    // so the next accept sees the updated gauge).
    let mut c1 = Client::connect(port);
    c1.expect_ok(&Request::Ping);
    let mut c2 = Client::connect(port);
    c2.expect_ok(&Request::Ping);

    // The third connection is shed with a structured overload notice
    // and closed — without ever getting a handler thread.
    let mut c3 = Client::connect(port);
    let reply = c3.recv().expect("shed connections are told why");
    assert!(
        reply.contains("\"overloaded\":true") && reply.contains("connection limit"),
        "expected a structured overload notice: {reply}"
    );
    assert!(c3.recv().is_none(), "shed connections must be closed");

    // Freeing a slot restores admission.
    drop(c1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut admitted = loop {
        let mut c = Client::connect(port);
        // A still-full server may have already shed (and closed) this
        // connection, so the write itself can fail — that is a retry,
        // not an error.
        if c.try_send_raw(Request::Ping.render().as_bytes()).is_ok() {
            match c.recv() {
                Some(reply) if reply.contains("\"ok\":true") => break c,
                Some(reply) => assert!(
                    reply.contains("overloaded"),
                    "unexpected admission failure: {reply}"
                ),
                None => {}
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "freed connection slot was never reclaimed"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    admitted.expect_ok(&Request::Shutdown);
    server
        .join()
        .expect("server thread")
        .expect("serve returns cleanly");
    drop(c2);
    drop(admitted);
    assert_connections_drain();
    let _ = std::fs::remove_dir_all(&dir);
}
