//! Experiment harness regenerating every table and figure of the
//! CircuitVAE paper (see `DESIGN.md` §5 for the experiment index).
//!
//! Binaries (one per paper artifact) live in `src/bin/`; criterion
//! smoke benches live in `benches/`. This library provides the shared
//! machinery: method dispatch, multi-seed statistics, and plain-text
//! table/series printers.

#![deny(missing_docs)]

pub mod campaign;
pub mod driver;
pub mod faults;
pub mod harness;
pub mod perf;
mod persist;
pub mod service;
pub mod stats;

pub use campaign::{run_campaign, run_units, CampaignConfig, CampaignTask, TaskResult};
pub use driver::{make_driver, MethodDriver, VaeMethodDriver};
pub use harness::{
    build_evaluator, run_method, run_method_on, ExperimentSpec, Method, Scale, TechLibrary,
};
pub use perf::{validate_report, AbPerf, GemmPerf, PerfReport};
pub use stats::{
    hypervolume, hypervolume_within, igd, median_iqr, nadir_reference, pareto_filter,
    quantile_sorted, CurveSet, Quartiles,
};
