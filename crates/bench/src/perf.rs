//! Machine-readable performance reporting for the compute-core benches.
//!
//! `benches/gemm.rs` measures the GEMM kernels, the width-32 VAE
//! training step, and batched evaluation, then emits
//! `results/bench_perf.json` through [`PerfReport`] so CI can archive a
//! perf trajectory instead of scraping bench stdout. The schema is
//! validated by [`validate_report`] (also exposed as the `perf_schema`
//! binary), backed by a minimal dependency-free JSON parser — the
//! vendored `serde` is a marker facade, so the wire format is explicit
//! here just like the checkpoint codec.

use std::fmt::Write as _;

/// Schema identifier stamped into every report.
///
/// v2 makes thread accounting honest and adds the thread-scaling plane:
/// every timed section records the *effective* parallelism its timed
/// region used (`threads`), the report records the machine's
/// `cpu_cores`, and a `scaling` section carries 1/2/4/8/16 curves for
/// `evaluate_batch` and the training step. Each scaling point is
/// labeled with its measurement `basis`: `"wall"` when the machine had
/// enough cores for the wall clock to mean parallel speedup, or
/// `"modeled"` (zero-contention critical-path makespan computed from
/// individually measured per-design simulation times) when it did not —
/// so a report produced on a 1-core container can never pass off
/// timeshared wall clock, or quietly claim pool parallelism it didn't
/// have.
///
/// v3 extends the same honesty to SIMD dispatch (DESIGN.md Contract 12):
/// the report records the CPU features the machine actually exposes
/// (`cpu_features`) and the SIMD level the kernels actually ran at
/// (`simd_level`, top-level and per timed section — the level *used*,
/// never the one requested), plus a `simd_scaling` section with
/// per-level strict-mode GEMM/training curves and a recomputable
/// headline (max per-shape strict speedup over scalar at the best
/// level). On AVX2 hardware the headline is gated ≥2x by
/// `perf_schema --min-simd-speedup`; hosts without AVX2 skip that gate
/// with an explicit label, never silently.
pub const PERF_SCHEMA: &str = "cv-bench-perf-v3";

/// One GEMM kernel measurement (naive reference vs. compute core).
#[derive(Debug, Clone)]
pub struct GemmPerf {
    /// Kernel variant: `"nn"`, `"nt"`, or `"tn"`.
    pub op: String,
    /// Left rows.
    pub m: usize,
    /// Contraction size.
    pub k: usize,
    /// Right columns.
    pub n: usize,
    /// Naive kernel wall-clock, milliseconds per call.
    pub naive_ms: f64,
    /// Compute-core wall-clock, milliseconds per call.
    pub fast_ms: f64,
    /// Worker-pool threads the fast kernel's timed region dispatched on.
    pub threads: usize,
    /// SIMD level the fast kernel's timed region actually dispatched at
    /// (`"scalar"`, `"sse2"`, or `"avx2"` — `cv_nn::gemm::simd_level()`
    /// at measurement time, never the requested level).
    pub simd_level: &'static str,
}

impl GemmPerf {
    fn gflops(&self, ms: f64) -> f64 {
        if ms <= 0.0 {
            0.0
        } else {
            (2.0 * self.m as f64 * self.k as f64 * self.n as f64) / (ms * 1e6)
        }
    }

    /// GFLOP/s of the naive kernel.
    pub fn gflops_naive(&self) -> f64 {
        self.gflops(self.naive_ms)
    }

    /// GFLOP/s of the compute core.
    pub fn gflops_fast(&self) -> f64 {
        self.gflops(self.fast_ms)
    }
}

/// A naive-vs-fast wall-clock pair for an end-to-end path.
#[derive(Debug, Clone, Copy)]
pub struct AbPerf {
    /// Problem size tag (circuit width).
    pub width: usize,
    /// Reference-path milliseconds.
    pub naive_ms: f64,
    /// Compute-core milliseconds.
    pub fast_ms: f64,
    /// Effective parallelism of the fast path's timed region — the
    /// number of workers that actually ran it, not the pool's nominal
    /// size. A `pool_threads: 1` report can therefore never describe a
    /// pooled run (and vice versa): each section carries its own truth.
    pub threads: usize,
    /// SIMD level the fast path's timed region actually dispatched at.
    pub simd_level: &'static str,
}

impl AbPerf {
    /// naive / fast (1.0 when degenerate).
    pub fn speedup(&self) -> f64 {
        if self.fast_ms <= 0.0 {
            1.0
        } else {
            self.naive_ms / self.fast_ms
        }
    }
}

/// One point of a thread-scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Requested thread count (the chunking the batch was split into).
    pub threads: usize,
    /// Workers that actually executed the timed region (pool size; 1
    /// when the dispatch ran inline).
    pub workers: usize,
    /// Measured wall-clock milliseconds.
    pub wall_ms: f64,
    /// Zero-contention critical-path makespan, milliseconds: the max
    /// over workers of their summed per-design simulation times (each
    /// measured individually on the sequential path) plus the measured
    /// sequential residue. `None` for sections without per-item
    /// instrumentation.
    pub modeled_ms: Option<f64>,
}

impl ScalePoint {
    /// `(speedup, basis)` relative to `baseline_ms`: the wall-clock
    /// ratio (basis `"wall"`) when the machine's cores cover the
    /// requested threads — timesharing can then only *understate* the
    /// speedup — or the modeled-makespan ratio (basis `"modeled"`) when
    /// they do not and a model is available. A core-starved point
    /// without a model stays honest: wall basis, speedup ≈ 1.
    pub fn headline(&self, baseline_ms: f64, cpu_cores: usize) -> (f64, &'static str) {
        let ratio = |ms: f64| if ms <= 0.0 { 1.0 } else { baseline_ms / ms };
        match self.modeled_ms {
            Some(modeled) if cpu_cores < self.threads => (ratio(modeled), "modeled"),
            _ => (ratio(self.wall_ms), "wall"),
        }
    }

    /// Measured wall-clock speedup relative to `baseline_ms`.
    pub fn wall_speedup(&self, baseline_ms: f64) -> f64 {
        if self.wall_ms <= 0.0 {
            1.0
        } else {
            baseline_ms / self.wall_ms
        }
    }
}

/// A thread-scaling curve for one end-to-end section.
#[derive(Debug, Clone, Default)]
pub struct ScalingCurve {
    /// Problem size tag (circuit width).
    pub width: usize,
    /// Measured single-thread wall-clock, milliseconds (the curve's
    /// denominator).
    pub baseline_ms: f64,
    /// Measured points, ascending in `threads`.
    pub points: Vec<ScalePoint>,
}

/// One strict-mode GEMM shape measured at one SIMD level (single
/// thread, order-alternated against the scalar tier of the same shape).
#[derive(Debug, Clone)]
pub struct SimdShapePerf {
    /// Kernel variant: `"nn"`, `"nt"`, or `"tn"`.
    pub op: String,
    /// Left rows.
    pub m: usize,
    /// Contraction size.
    pub k: usize,
    /// Right columns.
    pub n: usize,
    /// Wall-clock milliseconds per call at this level.
    pub ms: f64,
    /// Median of per-pair `scalar_ms / level_ms` ratios (the PR 5/6
    /// order-alternated A/B methodology); 1.0 for the scalar row itself.
    pub speedup_vs_scalar: f64,
}

impl SimdShapePerf {
    /// GFLOP/s at this level.
    pub fn gflops(&self) -> f64 {
        if self.ms <= 0.0 {
            0.0
        } else {
            (2.0 * self.m as f64 * self.k as f64 * self.n as f64) / (self.ms * 1e6)
        }
    }
}

/// All strict-mode measurements for one SIMD level.
#[derive(Debug, Clone)]
pub struct SimdLevelPerf {
    /// The level (`"scalar"`, `"sse2"`, `"avx2"`).
    pub level: String,
    /// Per-shape GEMM measurements.
    pub gemm: Vec<SimdShapePerf>,
    /// Width-32 training-step milliseconds at this level.
    pub training_ms: f64,
    /// Median per-pair training-step speedup vs the scalar tier.
    pub training_speedup_vs_scalar: f64,
}

/// The headline claim of the `simd_scaling` section: the single best
/// per-shape strict GEMM speedup over scalar across all measured
/// non-scalar levels (recomputed by the validator, gated by
/// `perf_schema --min-simd-speedup` on AVX2 hosts).
#[derive(Debug, Clone)]
pub struct SimdHeadline {
    /// Level the headline shape ran at.
    pub level: String,
    /// Kernel variant of the headline shape.
    pub op: String,
    /// Headline shape dimensions.
    pub m: usize,
    /// Contraction size.
    pub k: usize,
    /// Right columns.
    pub n: usize,
    /// The headline `speedup_vs_scalar`.
    pub speedup: f64,
}

/// The strict-mode SIMD scaling section of a v3 report.
#[derive(Debug, Clone)]
pub struct SimdScaling {
    /// Per-level curves, ascending in capability; always includes the
    /// `"scalar"` baseline row.
    pub levels: Vec<SimdLevelPerf>,
    /// The best per-shape strict speedup (see [`SimdHeadline`]); `None`
    /// only when scalar was the only measurable level.
    pub headline: Option<SimdHeadline>,
}

impl SimdScaling {
    /// Recomputes the headline from the per-level shape tables: the
    /// maximum `speedup_vs_scalar` over every non-scalar level × shape.
    pub fn computed_headline(&self) -> Option<SimdHeadline> {
        let mut best: Option<SimdHeadline> = None;
        for lvl in self.levels.iter().filter(|l| l.level != "scalar") {
            for g in &lvl.gemm {
                if best
                    .as_ref()
                    .map_or(true, |b| g.speedup_vs_scalar > b.speedup)
                {
                    best = Some(SimdHeadline {
                        level: lvl.level.clone(),
                        op: g.op.clone(),
                        m: g.m,
                        k: g.k,
                        n: g.n,
                        speedup: g.speedup_vs_scalar,
                    });
                }
            }
        }
        best
    }
}

/// The full bench report serialized to `results/bench_perf.json`.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Worker-pool size the benches ran with (`CV_POOL_THREADS` or the
    /// machine's available parallelism).
    pub pool_threads: usize,
    /// CPU cores actually available to this process — the context every
    /// wall-clock number in the report must be read against.
    pub cpu_cores: usize,
    /// The SIMD level the kernels dispatched at for the non-`simd_scaling`
    /// sections (`cv_nn::gemm::simd_level()` — the level used, not the
    /// one requested).
    pub simd_level: String,
    /// Dispatch-relevant CPU features the machine reports
    /// (`cv_nn::gemm::cpu_features()`), so a reader can tell a
    /// scalar-because-old-CPU report from a scalar-because-overridden
    /// one.
    pub cpu_features: Vec<String>,
    /// GEMM kernel measurements.
    pub gemm: Vec<GemmPerf>,
    /// Width-32 VAE training-step A/B.
    pub training_step: Option<AbPerf>,
    /// `evaluate_batch` pool path vs. sequential loop.
    pub evaluate_batch: Option<AbPerf>,
    /// `evaluate_batch` thread-scaling curve (1/2/4/8/16).
    pub batch_scaling: Option<ScalingCurve>,
    /// Training-step thread-scaling curve (1/2/4/8/16).
    pub training_scaling: Option<ScalingCurve>,
    /// Strict-mode SIMD level scaling (scalar/sse2/avx2 curves).
    pub simd_scaling: Option<SimdScaling>,
    /// Incremental-evaluation speedup (the `incremental` bench's gate
    /// quantity), when measured.
    pub incremental_speedup: Option<f64>,
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

impl PerfReport {
    /// Serializes the report to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{PERF_SCHEMA}\",");
        let _ = writeln!(s, "  \"pool_threads\": {},", self.pool_threads);
        let _ = writeln!(s, "  \"cpu_cores\": {},", self.cpu_cores);
        let _ = writeln!(s, "  \"simd_level\": \"{}\",", self.simd_level);
        s.push_str("  \"cpu_features\": [");
        for (i, f) in self.cpu_features.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{f}\"");
        }
        s.push_str("],\n");
        s.push_str("  \"gemm\": [\n");
        for (i, g) in self.gemm.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \"simd_level\": \"{}\", \"naive_ms\": ",
                g.op, g.m, g.k, g.n, g.threads, g.simd_level
            );
            push_num(&mut s, g.naive_ms);
            s.push_str(", \"fast_ms\": ");
            push_num(&mut s, g.fast_ms);
            s.push_str(", \"gflops_naive\": ");
            push_num(&mut s, g.gflops_naive());
            s.push_str(", \"gflops_fast\": ");
            push_num(&mut s, g.gflops_fast());
            s.push_str(", \"speedup\": ");
            push_num(
                &mut s,
                if g.fast_ms > 0.0 {
                    g.naive_ms / g.fast_ms
                } else {
                    1.0
                },
            );
            s.push('}');
            s.push_str(if i + 1 < self.gemm.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        for (key, ab) in [
            ("training_step", &self.training_step),
            ("evaluate_batch", &self.evaluate_batch),
        ] {
            match ab {
                Some(ab) => {
                    let _ = write!(
                        s,
                        "  \"{key}\": {{\"width\": {}, \"threads\": {}, \"simd_level\": \"{}\", \"naive_ms\": ",
                        ab.width, ab.threads, ab.simd_level
                    );
                    push_num(&mut s, ab.naive_ms);
                    s.push_str(", \"fast_ms\": ");
                    push_num(&mut s, ab.fast_ms);
                    s.push_str(", \"speedup\": ");
                    push_num(&mut s, ab.speedup());
                    s.push_str("},\n");
                }
                None => {
                    let _ = writeln!(s, "  \"{key}\": null,");
                }
            }
        }
        s.push_str("  \"scaling\": {\n");
        for (i, (key, curve)) in [
            ("evaluate_batch", &self.batch_scaling),
            ("training_step", &self.training_scaling),
        ]
        .into_iter()
        .enumerate()
        {
            let sep = if i == 0 { ",\n" } else { "\n" };
            match curve {
                Some(c) => {
                    let _ = write!(
                        s,
                        "    \"{key}\": {{\"width\": {}, \"baseline_ms\": ",
                        c.width
                    );
                    push_num(&mut s, c.baseline_ms);
                    s.push_str(", \"points\": [\n");
                    for (j, p) in c.points.iter().enumerate() {
                        let (speedup, basis) = p.headline(c.baseline_ms, self.cpu_cores);
                        let _ = write!(
                            s,
                            "      {{\"threads\": {}, \"workers\": {}, \"wall_ms\": ",
                            p.threads, p.workers
                        );
                        push_num(&mut s, p.wall_ms);
                        s.push_str(", \"wall_speedup\": ");
                        push_num(&mut s, p.wall_speedup(c.baseline_ms));
                        s.push_str(", \"modeled_ms\": ");
                        match p.modeled_ms {
                            Some(m) => push_num(&mut s, m),
                            None => s.push_str("null"),
                        }
                        s.push_str(", \"speedup\": ");
                        push_num(&mut s, speedup);
                        let _ = write!(s, ", \"basis\": \"{basis}\"}}");
                        s.push_str(if j + 1 < c.points.len() { ",\n" } else { "\n" });
                    }
                    let _ = write!(s, "    ]}}{sep}");
                }
                None => {
                    let _ = write!(s, "    \"{key}\": null{sep}");
                }
            }
        }
        s.push_str("  },\n");
        s.push_str("  \"simd_scaling\": ");
        match &self.simd_scaling {
            Some(sc) => {
                s.push_str("{\n    \"levels\": [\n");
                for (i, lvl) in sc.levels.iter().enumerate() {
                    let _ = writeln!(s, "      {{\"level\": \"{}\", \"gemm\": [", lvl.level);
                    for (j, g) in lvl.gemm.iter().enumerate() {
                        let _ = write!(
                            s,
                            "        {{\"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"ms\": ",
                            g.op, g.m, g.k, g.n
                        );
                        push_num(&mut s, g.ms);
                        s.push_str(", \"gflops\": ");
                        push_num(&mut s, g.gflops());
                        s.push_str(", \"speedup_vs_scalar\": ");
                        push_num(&mut s, g.speedup_vs_scalar);
                        s.push('}');
                        s.push_str(if j + 1 < lvl.gemm.len() { ",\n" } else { "\n" });
                    }
                    s.push_str("      ], \"training_ms\": ");
                    push_num(&mut s, lvl.training_ms);
                    s.push_str(", \"training_speedup_vs_scalar\": ");
                    push_num(&mut s, lvl.training_speedup_vs_scalar);
                    s.push('}');
                    s.push_str(if i + 1 < sc.levels.len() { ",\n" } else { "\n" });
                }
                s.push_str("    ],\n    \"headline\": ");
                match &sc.headline {
                    Some(h) => {
                        let _ = write!(
                            s,
                            "{{\"level\": \"{}\", \"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"speedup\": ",
                            h.level, h.op, h.m, h.k, h.n
                        );
                        push_num(&mut s, h.speedup);
                        s.push('}');
                    }
                    None => s.push_str("null"),
                }
                s.push_str("\n  },\n");
            }
            None => s.push_str("null,\n"),
        }
        s.push_str("  \"incremental_speedup\": ");
        match self.incremental_speedup {
            Some(v) => push_num(&mut s, v),
            None => s.push_str("null"),
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes the validated report to `path` (creating parent dirs).
    ///
    /// # Panics
    ///
    /// Panics if the serialized report fails its own schema check or the
    /// file cannot be written — both are bench-infrastructure bugs that
    /// must fail loudly in CI.
    pub fn write(&self, path: &std::path::Path) {
        let json = self.to_json();
        validate_report(&json).expect("generated report must satisfy its own schema");
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("results dir must be creatable");
        }
        std::fs::write(path, json).expect("bench_perf.json must be writable");
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parsing + schema validation
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough structure for schema checks).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            // Copy unescaped runs as str slices: '"' and '\\' are ASCII,
            // so the run boundaries always fall on UTF-8 char boundaries
            // and multi-byte content survives intact.
            let start = self.pos;
            while let Some(&c) = self.bytes.get(self.pos) {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(&self.text[start..self.pos]);
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    s.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                other => return Err(format!("unexpected byte {other} in string")),
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => {
                            return Err(format!("expected ',' or ']', got '{}'", other as char))
                        }
                    }
                }
            }
            b'{' => {
                self.eat(b'{')?;
                let mut members = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    members.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        other => {
                            return Err(format!("expected ',' or '}}', got '{}'", other as char))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    /// Scans a number following the JSON grammar exactly:
    /// `-? (0 | [1-9][0-9]*) (. [0-9]+)? ([eE] [+-]? [0-9]+)?`.
    ///
    /// A permissive scanner here once accepted any soup of sign/digit/
    /// dot/exponent bytes (`+5`, `.5`, `5.`, `01`, `1e`), so a
    /// malformed `bench_perf.json` could parse to a garbage float and
    /// sail through validation; now every non-grammar number is a
    /// syntax error.
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > from
        };
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit run (no leading
        // zeros, no bare sign).
        match self.bytes.get(self.pos) {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                digits(self);
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!(
                    "invalid number at byte {start}: fraction needs digits"
                ));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!(
                    "invalid number at byte {start}: exponent needs digits"
                ));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number at byte {start}: {e}"))
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        other => Err(format!("{ctx}.{key}: expected number, got {other:?}")),
    }
}

/// The SIMD level names a v3 report may record.
const SIMD_LEVELS: [&str; 3] = ["scalar", "sse2", "avx2"];

fn require_simd_level(obj: &Json, key: &str, ctx: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) if SIMD_LEVELS.contains(&s.as_str()) => Ok(s.clone()),
        other => Err(format!(
            "{ctx}.{key}: expected one of {SIMD_LEVELS:?}, got {other:?}"
        )),
    }
}

fn check_ab(v: &Json, ctx: &str) -> Result<(), String> {
    match v {
        Json::Null => Ok(()),
        Json::Obj(_) => {
            require_num(v, "width", ctx)?;
            require_num(v, "threads", ctx)?;
            require_simd_level(v, "simd_level", ctx)?;
            require_num(v, "naive_ms", ctx)?;
            require_num(v, "fast_ms", ctx)?;
            require_num(v, "speedup", ctx)?;
            Ok(())
        }
        other => Err(format!("{ctx}: expected object or null, got {other:?}")),
    }
}

/// Validates the `simd_scaling` section and recomputes its headline
/// against the per-level tables, so the number the CI gate reads can
/// never drift from the measurements backing it. `has_avx2` is whether
/// the report's `cpu_features` lists `avx2`: such a machine must have
/// measured an `avx2` level (a silently narrower matrix would make the
/// headline gate vacuous).
fn check_simd_scaling(v: &Json, has_avx2: bool) -> Result<(), String> {
    let ctx = "simd_scaling";
    match v {
        Json::Null => Ok(()),
        Json::Obj(_) => {
            let levels = match v.get("levels") {
                Some(Json::Arr(levels)) if !levels.is_empty() => levels,
                other => {
                    return Err(format!(
                        "{ctx}.levels: expected non-empty array, got {other:?}"
                    ))
                }
            };
            let mut names = Vec::new();
            let mut best: Option<f64> = None;
            for (i, lvl) in levels.iter().enumerate() {
                let lctx = format!("{ctx}.levels[{i}]");
                let name = require_simd_level(lvl, "level", &lctx)?;
                if names.contains(&name) {
                    return Err(format!("{lctx}.level: duplicate \"{name}\""));
                }
                let gemm = match lvl.get("gemm") {
                    Some(Json::Arr(gemm)) if !gemm.is_empty() => gemm,
                    other => {
                        return Err(format!(
                            "{lctx}.gemm: expected non-empty array, got {other:?}"
                        ))
                    }
                };
                for (j, g) in gemm.iter().enumerate() {
                    let gctx = format!("{lctx}.gemm[{j}]");
                    match g.get("op") {
                        Some(Json::Str(op)) if matches!(op.as_str(), "nn" | "nt" | "tn") => {}
                        other => {
                            return Err(format!("{gctx}.op: expected nn|nt|tn, got {other:?}"))
                        }
                    }
                    for key in ["m", "k", "n", "ms", "gflops", "speedup_vs_scalar"] {
                        require_num(g, key, &gctx)?;
                    }
                    if name != "scalar" {
                        let s = require_num(g, "speedup_vs_scalar", &gctx)?;
                        if best.map_or(true, |b| s > b) {
                            best = Some(s);
                        }
                    }
                }
                require_num(lvl, "training_ms", &lctx)?;
                require_num(lvl, "training_speedup_vs_scalar", &lctx)?;
                names.push(name);
            }
            if !names.iter().any(|n| n == "scalar") {
                return Err(format!("{ctx}.levels: missing the \"scalar\" baseline"));
            }
            if has_avx2 && !names.iter().any(|n| n == "avx2") {
                return Err(format!(
                    "{ctx}.levels: cpu_features reports avx2 but no avx2 level was measured"
                ));
            }
            match (v.get("headline"), best) {
                (Some(Json::Null) | None, None) => Ok(()),
                (Some(Json::Null) | None, Some(_)) => Err(format!(
                    "{ctx}.headline: null although non-scalar levels were measured"
                )),
                (Some(h @ Json::Obj(_)), best) => {
                    require_simd_level(h, "level", &format!("{ctx}.headline"))?;
                    match h.get("op") {
                        Some(Json::Str(op)) if matches!(op.as_str(), "nn" | "nt" | "tn") => {}
                        other => {
                            return Err(format!(
                                "{ctx}.headline.op: expected nn|nt|tn, got {other:?}"
                            ))
                        }
                    }
                    for key in ["m", "k", "n"] {
                        require_num(h, key, &format!("{ctx}.headline"))?;
                    }
                    let claimed = require_num(h, "speedup", &format!("{ctx}.headline"))?;
                    let Some(best) = best else {
                        return Err(format!(
                            "{ctx}.headline: present although only scalar was measured"
                        ));
                    };
                    // Serialized at 6 decimals; recompute with matching
                    // tolerance.
                    if (claimed - best).abs() > 1e-5 {
                        return Err(format!(
                            "{ctx}.headline.speedup: claims {claimed} but the level tables \
                             support {best}"
                        ));
                    }
                    Ok(())
                }
                (other, _) => Err(format!(
                    "{ctx}.headline: expected object or null, got {other:?}"
                )),
            }
        }
        other => Err(format!("{ctx}: expected object or null, got {other:?}")),
    }
}

/// The strict-mode SIMD headline speedup an already-parsed v3 report
/// claims (`simd_scaling.headline.speedup`), or `None` when the section
/// or headline is absent.
pub fn simd_headline_speedup(doc: &Json) -> Option<f64> {
    match doc.get("simd_scaling")?.get("headline")?.get("speedup") {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

/// Whether an already-parsed report's `cpu_features` lists `feature`.
pub fn report_has_cpu_feature(doc: &Json, feature: &str) -> bool {
    match doc.get("cpu_features") {
        Some(Json::Arr(items)) => items
            .iter()
            .any(|f| matches!(f, Json::Str(s) if s == feature)),
        _ => false,
    }
}

fn check_curve(v: &Json, ctx: &str) -> Result<(), String> {
    match v {
        Json::Null => Ok(()),
        Json::Obj(_) => {
            require_num(v, "width", ctx)?;
            require_num(v, "baseline_ms", ctx)?;
            let points = match v.get("points") {
                Some(Json::Arr(points)) if !points.is_empty() => points,
                other => {
                    return Err(format!(
                        "{ctx}.points: expected non-empty array, got {other:?}"
                    ))
                }
            };
            for (i, p) in points.iter().enumerate() {
                let pctx = format!("{ctx}.points[{i}]");
                for key in ["threads", "workers", "wall_ms", "wall_speedup", "speedup"] {
                    require_num(p, key, &pctx)?;
                }
                let modeled = match p.get("modeled_ms") {
                    Some(Json::Null) => false,
                    Some(Json::Num(_)) => true,
                    other => {
                        return Err(format!(
                            "{pctx}.modeled_ms: expected number or null, got {other:?}"
                        ))
                    }
                };
                match p.get("basis") {
                    Some(Json::Str(b)) if b == "wall" => {}
                    Some(Json::Str(b)) if b == "modeled" => {
                        if !modeled {
                            return Err(format!(
                                "{pctx}: basis \"modeled\" requires a modeled_ms number"
                            ));
                        }
                    }
                    other => {
                        return Err(format!(
                            "{pctx}.basis: expected \"wall\" or \"modeled\", got {other:?}"
                        ))
                    }
                }
            }
            Ok(())
        }
        other => Err(format!("{ctx}: expected object or null, got {other:?}")),
    }
}

/// The headline speedup the report claims for `section` (`"evaluate_batch"`
/// or `"training_step"`) at exactly `threads` threads, from the `scaling`
/// curves of an already-parsed report. `None` when the curve or point is
/// absent.
pub fn scaling_speedup_at(doc: &Json, section: &str, threads: usize) -> Option<f64> {
    let curve = doc.get("scaling")?.get(section)?;
    let Json::Arr(points) = curve.get("points")? else {
        return None;
    };
    points
        .iter()
        .find_map(|p| match (p.get("threads"), p.get("speedup")) {
            (Some(Json::Num(t)), Some(Json::Num(s))) if *t == threads as f64 => Some(*s),
            _ => None,
        })
}

/// Validates a `bench_perf.json` document against the
/// [`PERF_SCHEMA`] shape.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == PERF_SCHEMA => {}
        other => return Err(format!("schema: expected \"{PERF_SCHEMA}\", got {other:?}")),
    }
    let threads = require_num(&doc, "pool_threads", "report")?;
    if threads < 1.0 {
        return Err("pool_threads: must be >= 1".to_string());
    }
    let cores = require_num(&doc, "cpu_cores", "report")?;
    if cores < 1.0 {
        return Err("cpu_cores: must be >= 1".to_string());
    }
    require_simd_level(&doc, "simd_level", "report")?;
    let has_avx2 = match doc.get("cpu_features") {
        Some(Json::Arr(items)) => {
            for (i, f) in items.iter().enumerate() {
                if !matches!(f, Json::Str(_)) {
                    return Err(format!("cpu_features[{i}]: expected string, got {f:?}"));
                }
            }
            report_has_cpu_feature(&doc, "avx2")
        }
        other => return Err(format!("cpu_features: expected array, got {other:?}")),
    };
    match doc.get("gemm") {
        Some(Json::Arr(items)) => {
            if items.is_empty() {
                return Err("gemm: at least one kernel measurement required".to_string());
            }
            for (i, item) in items.iter().enumerate() {
                let ctx = format!("gemm[{i}]");
                match item.get("op") {
                    Some(Json::Str(op)) if matches!(op.as_str(), "nn" | "nt" | "tn") => {}
                    other => return Err(format!("{ctx}.op: expected nn|nt|tn, got {other:?}")),
                }
                require_simd_level(item, "simd_level", &ctx)?;
                for key in [
                    "m",
                    "k",
                    "n",
                    "threads",
                    "naive_ms",
                    "fast_ms",
                    "gflops_naive",
                    "gflops_fast",
                    "speedup",
                ] {
                    require_num(item, key, &ctx)?;
                }
            }
        }
        other => return Err(format!("gemm: expected array, got {other:?}")),
    }
    check_ab(
        doc.get("training_step").unwrap_or(&Json::Null),
        "training_step",
    )?;
    check_ab(
        doc.get("evaluate_batch").unwrap_or(&Json::Null),
        "evaluate_batch",
    )?;
    match doc.get("scaling") {
        Some(scaling @ Json::Obj(_)) => {
            check_curve(
                scaling.get("evaluate_batch").unwrap_or(&Json::Null),
                "scaling.evaluate_batch",
            )?;
            check_curve(
                scaling.get("training_step").unwrap_or(&Json::Null),
                "scaling.training_step",
            )?;
        }
        other => return Err(format!("scaling: expected object, got {other:?}")),
    }
    check_simd_scaling(doc.get("simd_scaling").unwrap_or(&Json::Null), has_avx2)?;
    match doc.get("incremental_speedup") {
        Some(Json::Null) | Some(Json::Num(_)) => {}
        other => {
            return Err(format!(
                "incremental_speedup: expected number or null, got {other:?}"
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            pool_threads: 4,
            cpu_cores: 2,
            simd_level: "avx2".into(),
            cpu_features: vec!["sse2".into(), "avx".into(), "avx2".into(), "fma".into()],
            gemm: vec![GemmPerf {
                op: "nn".into(),
                m: 64,
                k: 768,
                n: 128,
                naive_ms: 10.0,
                fast_ms: 2.5,
                threads: 4,
                simd_level: "avx2",
            }],
            training_step: Some(AbPerf {
                width: 32,
                naive_ms: 500.0,
                fast_ms: 100.0,
                threads: 1,
                simd_level: "avx2",
            }),
            evaluate_batch: None,
            batch_scaling: Some(ScalingCurve {
                width: 32,
                baseline_ms: 80.0,
                points: vec![
                    ScalePoint {
                        threads: 1,
                        workers: 1,
                        wall_ms: 80.0,
                        modeled_ms: Some(80.0),
                    },
                    ScalePoint {
                        threads: 2,
                        workers: 2,
                        wall_ms: 41.0,
                        modeled_ms: Some(40.0),
                    },
                    ScalePoint {
                        threads: 4,
                        workers: 4,
                        wall_ms: 79.0,
                        modeled_ms: Some(20.0),
                    },
                ],
            }),
            training_scaling: None,
            simd_scaling: Some(SimdScaling {
                levels: vec![
                    SimdLevelPerf {
                        level: "scalar".into(),
                        gemm: vec![SimdShapePerf {
                            op: "nn".into(),
                            m: 64,
                            k: 768,
                            n: 128,
                            ms: 0.8,
                            speedup_vs_scalar: 1.0,
                        }],
                        training_ms: 120.0,
                        training_speedup_vs_scalar: 1.0,
                    },
                    SimdLevelPerf {
                        level: "avx2".into(),
                        gemm: vec![SimdShapePerf {
                            op: "nn".into(),
                            m: 64,
                            k: 768,
                            n: 128,
                            ms: 0.32,
                            speedup_vs_scalar: 2.5,
                        }],
                        training_ms: 60.0,
                        training_speedup_vs_scalar: 2.0,
                    },
                ],
                headline: Some(SimdHeadline {
                    level: "avx2".into(),
                    op: "nn".into(),
                    m: 64,
                    k: 768,
                    n: 128,
                    speedup: 2.5,
                }),
            }),
            incremental_speedup: Some(5.1),
        }
    }

    #[test]
    fn report_roundtrips_through_its_own_validator() {
        let json = sample().to_json();
        validate_report(&json).expect("self-produced report must validate");
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("schema"), Some(&Json::Str(PERF_SCHEMA.into())));
        assert_eq!(doc.get("cpu_cores"), Some(&Json::Num(2.0)));
        let ts = doc.get("training_step").unwrap();
        assert_eq!(ts.get("speedup"), Some(&Json::Num(5.0)));
        assert_eq!(ts.get("threads"), Some(&Json::Num(1.0)));
        assert_eq!(doc.get("evaluate_batch"), Some(&Json::Null));
        let scaling = doc.get("scaling").unwrap();
        assert_eq!(scaling.get("training_step"), Some(&Json::Null));
        assert!(scaling
            .get("evaluate_batch")
            .unwrap()
            .get("points")
            .is_some());
    }

    #[test]
    fn scaling_basis_switches_to_model_only_when_core_starved() {
        // cpu_cores = 2: the t=1 and t=2 points have enough cores, so
        // their headline is the measured wall clock; t=4 does not, so its
        // headline is the zero-contention makespan, clearly labeled.
        let json = sample().to_json();
        let doc = parse_json(&json).unwrap();
        let points = match doc
            .get("scaling")
            .and_then(|s| s.get("evaluate_batch"))
            .and_then(|c| c.get("points"))
        {
            Some(Json::Arr(points)) => points,
            other => panic!("missing scaling points: {other:?}"),
        };
        let basis: Vec<_> = points.iter().map(|p| p.get("basis").cloned()).collect();
        assert_eq!(
            basis,
            vec![
                Some(Json::Str("wall".into())),
                Some(Json::Str("wall".into())),
                Some(Json::Str("modeled".into())),
            ]
        );
        assert_eq!(scaling_speedup_at(&doc, "evaluate_batch", 4), Some(4.0));
        // Serialized at 6 decimals, so compare with matching tolerance.
        let at2 = scaling_speedup_at(&doc, "evaluate_batch", 2).unwrap();
        assert!((at2 - 80.0 / 41.0).abs() < 1e-6, "got {at2}");
        assert_eq!(scaling_speedup_at(&doc, "evaluate_batch", 16), None);
        assert_eq!(scaling_speedup_at(&doc, "training_step", 1), None);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_report("{").is_err());
        assert!(validate_report("{}").is_err());
        assert!(validate_report(r#"{"schema": "wrong"}"#).is_err());
        // Right schema marker but an empty gemm section.
        let bad = format!(
            r#"{{"schema": "{PERF_SCHEMA}", "pool_threads": 1, "cpu_cores": 1,
                "simd_level": "scalar", "cpu_features": [], "gemm": [],
                "training_step": null, "evaluate_batch": null,
                "scaling": {{"evaluate_batch": null, "training_step": null}},
                "simd_scaling": null, "incremental_speedup": null}}"#
        );
        assert!(validate_report(&bad).unwrap_err().contains("gemm"));
        // A gemm entry with a missing field.
        let bad = format!(
            r#"{{"schema": "{PERF_SCHEMA}", "pool_threads": 2, "cpu_cores": 1,
                "simd_level": "scalar", "cpu_features": [],
                "gemm": [{{"op": "nn", "simd_level": "scalar", "m": 1, "k": 2, "n": 3}}],
                "training_step": null, "evaluate_batch": null,
                "scaling": {{"evaluate_batch": null, "training_step": null}},
                "simd_scaling": null, "incremental_speedup": null}}"#
        );
        assert!(validate_report(&bad).unwrap_err().contains("threads"));
        // Thread-honesty requirements of v2: cpu_cores and the scaling
        // section are mandatory, and a "modeled" basis must carry the
        // model that produced it.
        let mut report = sample().to_json();
        report = report.replacen("  \"cpu_cores\": 2,\n", "", 1);
        assert!(validate_report(&report).unwrap_err().contains("cpu_cores"));
        let mut report = sample().to_json();
        let start = report.find("  \"scaling\": {").unwrap();
        let end = report.find("  \"incremental_speedup\"").unwrap();
        report.replace_range(start..end, "");
        assert!(validate_report(&report).unwrap_err().contains("scaling"));
        let dishonest = sample().to_json().replacen(
            "\"modeled_ms\": 20.000000, \"speedup\": 4.000000, \"basis\": \"modeled\"",
            "\"modeled_ms\": null, \"speedup\": 4.000000, \"basis\": \"modeled\"",
            1,
        );
        assert!(validate_report(&dishonest)
            .unwrap_err()
            .contains("modeled_ms"));
    }

    #[test]
    fn v3_simd_fields_are_required_and_cross_checked() {
        // The top-level SIMD level must be a recognized name.
        let bad = sample().to_json().replacen(
            "\"simd_level\": \"avx2\",\n",
            "\"simd_level\": \"avx512\",\n",
            1,
        );
        assert!(validate_report(&bad).unwrap_err().contains("simd_level"));
        // A headline that drifts from the level tables is rejected: the
        // gate quantity must be recomputable from the measurements.
        let drifted =
            sample()
                .to_json()
                .replacen("\"speedup\": 2.500000}", "\"speedup\": 9.000000}", 1);
        let err = validate_report(&drifted).unwrap_err();
        assert!(err.contains("headline"), "got: {err}");
        // A machine reporting avx2 cannot commit a simd_scaling section
        // that quietly skipped the avx2 leg.
        let mut report = sample();
        report.simd_scaling.as_mut().unwrap().levels.pop();
        report.simd_scaling.as_mut().unwrap().headline = None;
        let err = validate_report(&report.to_json()).unwrap_err();
        assert!(err.contains("avx2"), "got: {err}");
        // ...but the same section is fine on a machine without avx2.
        report.cpu_features = vec!["sse2".into()];
        report.simd_level = "sse2".into();
        validate_report(&report.to_json()).expect("scalar-only section on a non-avx2 host");
        // A non-scalar measurement with a null headline is dishonest.
        let mut report = sample();
        report.simd_scaling.as_mut().unwrap().headline = None;
        let err = validate_report(&report.to_json()).unwrap_err();
        assert!(err.contains("headline"), "got: {err}");
    }

    #[test]
    fn simd_headline_helpers_read_the_committed_shape() {
        let json = sample().to_json();
        let doc = parse_json(&json).unwrap();
        assert_eq!(simd_headline_speedup(&doc), Some(2.5));
        assert!(report_has_cpu_feature(&doc, "avx2"));
        assert!(!report_has_cpu_feature(&doc, "avx512f"));
        assert_eq!(
            sample()
                .simd_scaling
                .unwrap()
                .computed_headline()
                .unwrap()
                .speedup,
            2.5
        );
    }

    /// Satellite guard: `results/bench_perf.json` is a committed artifact
    /// (ROADMAP requires the perf trajectory to live in-tree). A deleted
    /// or stale-schema file must fail `cargo test`, not just the CI
    /// perf-smoke job.
    #[test]
    fn committed_perf_report_exists_and_validates() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_perf.json");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "results/bench_perf.json missing or unreadable ({e}); \
                 regenerate it with `cargo bench --bench gemm` and commit it"
            )
        });
        validate_report(&text).expect("committed bench_perf.json violates the current schema");
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let doc = parse_json(r#"{"a": [1, -2.5e1, "x\ny"], "b": {"c": true}}"#).unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Str("x\ny".into())
            ]))
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        // Multi-byte UTF-8 survives intact (strings are copied as str
        // slices between ASCII delimiters, never byte-by-byte).
        let doc = parse_json(r#"{"unit": "µs → ναι"}"#).unwrap();
        assert_eq!(doc.get("unit"), Some(&Json::Str("µs → ναι".into())));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} garbage").is_err());
    }

    #[test]
    fn number_scanner_follows_the_json_grammar() {
        // Everything the grammar admits parses to the exact float.
        for (text, expect) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("42", 42.0),
            ("-17", -17.0),
            ("0.5", 0.5),
            ("-0.125", -0.125),
            ("6.65", 6.65),
            ("1e3", 1000.0),
            ("2E-2", 0.02),
            ("1.5e+2", 150.0),
            ("10.25e1", 102.5),
        ] {
            assert_eq!(parse_json(text).unwrap(), Json::Num(expect), "{text}");
        }
        // Non-grammar soups the old scanner let `f64::parse` bless (or
        // garble) must now be syntax errors: a malformed
        // bench_perf.json fails validation instead of parsing to a
        // garbage float.
        for text in [
            "+5",    // leading plus
            ".5",    // no integer part
            "5.",    // dangling fraction dot
            "01",    // leading zero
            "-01",   // leading zero, signed
            "--5",   // double sign
            "1.2.3", // two dots
            "1e",    // empty exponent
            "1e+",   // signed empty exponent
            "1.e3",  // fraction dot without digits
            "-",     // bare sign
            "1d",    // trailing junk
            "0x10",  // hex is not JSON
            "NaN",   // f64::parse would accept this
            "inf",   // …and this
        ] {
            assert!(parse_json(text).is_err(), "`{text}` must be rejected");
            // Inside a structure, too (the scanner must not silently
            // stop early and leave the garbage to the container rules).
            let nested = format!(r#"{{"v": [{text}]}}"#);
            assert!(parse_json(&nested).is_err(), "`{nested}` must be rejected");
        }
        // Numbers terminate cleanly at structural delimiters.
        let doc = parse_json(r#"{"a":[1,2.5e0,-3],"b":0}"#).unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0)
            ]))
        );
    }

    #[test]
    fn speedup_and_gflops_are_consistent() {
        let g = sample().gemm[0].clone();
        assert!((g.gflops_fast() / g.gflops_naive() - 4.0).abs() < 1e-9);
        let ab = sample().training_step.unwrap();
        assert_eq!(ab.speedup(), 5.0);
    }
}
