//! Multi-seed statistics: medians, interquartile ranges, stepwise
//! best-cost curves sampled at budget checkpoints, and multi-objective
//! frontier metrics (hypervolume, IGD) over (area, delay) points.

use cv_synth::{dominates_xy, Observation, SearchOutcome};
use serde::{Deserialize, Serialize};

/// Median and interquartile range of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl std::fmt::Display for Quartiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ({:.3} - {:.3})", self.median, self.q1, self.q3)
    }
}

/// Linearly interpolated quantile of an ascending-sorted, non-empty
/// slice (the "R-7" rule used by numpy's default `quantile`). `p` is
/// clamped to `[0, 1]`.
///
/// Edge cases are part of the contract:
/// * a single-element slice returns that element for every `p`;
/// * `p = 0` / `p = 1` return the first / last element exactly (no
///   floating-point interpolation residue).
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty slice");
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    if lo == hi {
        // Exact index (includes len == 1, p == 0, p == 1): no blending.
        return sorted[lo];
    }
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median and IQR of `values`, ignoring non-finite entries (NaN and
/// ±∞ are dropped *before* any quantile math).
///
/// Pinned edge-case behavior:
/// * no finite values (empty input, or all NaN/∞) → `None`;
/// * exactly one finite value `x` → `q1 == median == q3 == x`;
/// * two finite values `a ≤ b` → `median = (a+b)/2`, `q1`/`q3` at the
///   R-7 quarter positions (`a + 0.25·(b−a)` and `a + 0.75·(b−a)`).
pub fn median_iqr(values: &[f64]) -> Option<Quartiles> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    Some(Quartiles {
        q1: quantile_sorted(&v, 0.25),
        median: quantile_sorted(&v, 0.5),
        q3: quantile_sorted(&v, 0.75),
    })
}

/// Multi-seed best-cost curves for one method on one setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurveSet {
    /// Method label (e.g. "CircuitVAE").
    pub label: String,
    /// One outcome per seed.
    pub outcomes: Vec<SearchOutcome>,
}

impl CurveSet {
    /// Creates a labelled curve set.
    pub fn new(label: impl Into<String>, outcomes: Vec<SearchOutcome>) -> Self {
        CurveSet {
            label: label.into(),
            outcomes,
        }
    }

    /// Median/IQR of best-cost-so-far at each budget checkpoint.
    /// Seeds that have not produced any design by a checkpoint are
    /// skipped at that checkpoint.
    pub fn at_checkpoints(&self, checkpoints: &[usize]) -> Vec<(usize, Option<Quartiles>)> {
        checkpoints
            .iter()
            .map(|&b| {
                let vals: Vec<f64> = self.outcomes.iter().map(|o| o.best_within(b)).collect();
                (b, median_iqr(&vals))
            })
            .collect()
    }

    /// Median final best cost across seeds.
    pub fn final_quartiles(&self) -> Option<Quartiles> {
        let vals: Vec<f64> = self.outcomes.iter().map(|o| o.best_cost).collect();
        median_iqr(&vals)
    }
}

/// Renders a set of curves as an aligned text table: one row per
/// checkpoint, one column per method (the text analogue of a Fig. 3 /
/// Fig. 7 panel).
pub fn render_series_table(title: &str, curves: &[CurveSet], checkpoints: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:>10}", "sims"));
    for c in curves {
        out.push_str(&format!("{:>24}", c.label));
    }
    out.push('\n');
    let columns: Vec<Vec<(usize, Option<Quartiles>)>> = curves
        .iter()
        .map(|c| c.at_checkpoints(checkpoints))
        .collect();
    for (row, &b) in checkpoints.iter().enumerate() {
        out.push_str(&format!("{b:>10}"));
        for col in &columns {
            match col[row].1 {
                Some(q) => out.push_str(&format!("{:>24}", q.to_string())),
                None => out.push_str(&format!("{:>24}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes `(x, y...)` series as CSV (one column set per curve) for
/// external plotting.
pub fn render_series_csv(curves: &[CurveSet], checkpoints: &[usize]) -> String {
    let mut out = String::from("sims");
    for c in curves {
        out.push_str(&format!(",{}_q1,{}_med,{}_q3", c.label, c.label, c.label));
    }
    out.push('\n');
    let columns: Vec<Vec<(usize, Option<Quartiles>)>> = curves
        .iter()
        .map(|c| c.at_checkpoints(checkpoints))
        .collect();
    for (row, &b) in checkpoints.iter().enumerate() {
        out.push_str(&b.to_string());
        for col in &columns {
            match col[row].1 {
                Some(q) => out.push_str(&format!(",{:.4},{:.4},{:.4}", q.q1, q.median, q.q3)),
                None => out.push_str(",,,"),
            }
        }
        out.push('\n');
    }
    out
}

/// Evenly spaced budget checkpoints `step, 2·step, ..., budget`.
pub fn checkpoints(budget: usize, count: usize) -> Vec<usize> {
    let count = count.max(1);
    (1..=count).map(|i| budget * i / count).collect()
}

/// The non-dominated subset of `(area, delay)` minimization points,
/// sorted by ascending area (hence strictly descending delay).
/// Non-finite points and duplicates are dropped.
pub fn pareto_filter(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut front: Vec<(f64, f64)> = Vec::new();
    for &p in points {
        if !p.0.is_finite() || !p.1.is_finite() {
            continue;
        }
        if front.iter().any(|&q| dominates_xy(q, p) || q == p) {
            continue;
        }
        front.retain(|&q| !dominates_xy(p, q));
        front.push(p);
    }
    front.sort_by(|a, b| a.0.total_cmp(&b.0));
    front
}

/// 2-D hypervolume (minimization): the area of the region dominated by
/// `points` and bounded by `reference` (which should be worse than every
/// point in both objectives). Points not strictly better than the
/// reference in both objectives contribute nothing. Returns 0 for an
/// empty set.
///
/// Monotone under insertion: adding a point can never shrink the
/// dominated region (pinned by a property test).
pub fn hypervolume(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let clipped: Vec<(f64, f64)> = pareto_filter(points)
        .into_iter()
        .filter(|&(a, d)| a < reference.0 && d < reference.1)
        .collect();
    let mut hv = 0.0;
    let mut prev_delay = reference.1;
    for (a, d) in clipped {
        hv += (reference.0 - a) * (prev_delay - d);
        prev_delay = d;
    }
    hv
}

/// Inverted generational distance: the mean Euclidean distance from each
/// point of `reference_front` to its nearest neighbour in `front`
/// (lower is better; 0 means the reference is fully covered). Returns
/// `f64::INFINITY` when `front` is empty and `None` when the reference
/// is empty.
pub fn igd(front: &[(f64, f64)], reference_front: &[(f64, f64)]) -> Option<f64> {
    if reference_front.is_empty() {
        return None;
    }
    if front.is_empty() {
        return Some(f64::INFINITY);
    }
    let total: f64 = reference_front
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|p| ((p.0 - r.0).powi(2) + (p.1 - r.1).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    Some(total / reference_front.len() as f64)
}

/// Hypervolume of the frontier traced by `observations` within the first
/// `budget` simulations — one cell of a hypervolume-vs-simulations
/// table. The observation log is what a logging
/// [`ParetoArchive`](cv_synth::ParetoArchive) records, so the frontier
/// at any budget cut is recoverable after the fact.
pub fn hypervolume_within(
    observations: &[Observation],
    budget: usize,
    reference: (f64, f64),
) -> f64 {
    let pts: Vec<(f64, f64)> = observations
        .iter()
        .filter(|o| o.sims <= budget)
        .map(|o| (o.area_um2, o.delay_ns))
        .collect();
    hypervolume(&pts, reference)
}

/// A reference point guaranteed to be dominated by every listed point:
/// the component-wise maximum plus a `margin` fraction of each range
/// (the standard recipe for comparing hypervolumes across methods — all
/// methods must share the result). Returns `None` when `points` has no
/// finite entry.
pub fn nadir_reference(points: &[(f64, f64)], margin: f64) -> Option<(f64, f64)> {
    let finite: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|p| p.0.is_finite() && p.1.is_finite())
        .collect();
    if finite.is_empty() {
        return None;
    }
    let max_a = finite.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_a = finite.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_d = finite.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let min_d = finite.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    Some((
        max_a + margin * (max_a - min_a).max(1e-9),
        max_d + margin * (max_d - min_d).max(1e-9),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(history: Vec<(usize, f64)>) -> SearchOutcome {
        let best = history
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        SearchOutcome {
            history,
            best_cost: best,
            best_grid: None,
            evaluated: vec![],
        }
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = median_iqr(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert!(median_iqr(&[]).is_none());
        assert!(median_iqr(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn empty_and_nonfinite_inputs_yield_none() {
        assert!(median_iqr(&[]).is_none());
        assert!(median_iqr(&[f64::NAN]).is_none());
        assert!(median_iqr(&[f64::NEG_INFINITY, f64::INFINITY, f64::NAN]).is_none());
    }

    #[test]
    fn single_element_collapses_all_quartiles() {
        let q = median_iqr(&[42.5]).unwrap();
        assert_eq!((q.q1, q.median, q.q3), (42.5, 42.5, 42.5));
        // A single survivor after filtering behaves the same way.
        let q = median_iqr(&[f64::NAN, 42.5, f64::INFINITY]).unwrap();
        assert_eq!((q.q1, q.median, q.q3), (42.5, 42.5, 42.5));
    }

    #[test]
    fn two_elements_interpolate_r7_positions() {
        let q = median_iqr(&[1.0, 3.0]).unwrap();
        assert!((q.median - 2.0).abs() < 1e-12);
        assert!((q.q1 - 1.5).abs() < 1e-12);
        assert!((q.q3 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn four_elements_match_numpy_default() {
        // numpy.quantile([1,2,3,4], [.25,.5,.75]) == [1.75, 2.5, 3.25]
        let q = median_iqr(&[4.0, 2.0, 1.0, 3.0]).unwrap(); // order-free
        assert!((q.q1 - 1.75).abs() < 1e-12);
        assert!((q.median - 2.5).abs() < 1e-12);
        assert!((q.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_sorted_endpoints_are_exact() {
        let v = [1.0, 2.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
        assert_eq!(quantile_sorted(&v, -3.0), 1.0); // clamped
        assert_eq!(quantile_sorted(&v, 2.0), 10.0); // clamped
        assert_eq!(quantile_sorted(&[7.0], 0.33), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn quantile_sorted_rejects_empty() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn curves_at_checkpoints() {
        let cs = CurveSet::new(
            "m",
            vec![
                outcome(vec![(10, 5.0), (50, 3.0)]),
                outcome(vec![(10, 6.0), (40, 4.0)]),
            ],
        );
        let rows = cs.at_checkpoints(&[10, 60]);
        assert_eq!(rows[0].1.unwrap().median, 5.5);
        assert_eq!(rows[1].1.unwrap().median, 3.5);
    }

    #[test]
    fn render_contains_labels_and_rows() {
        let cs = CurveSet::new("CircuitVAE", vec![outcome(vec![(5, 2.0)])]);
        let s = render_series_table("panel", std::slice::from_ref(&cs), &[5, 10]);
        assert!(s.contains("CircuitVAE"));
        assert_eq!(s.lines().count(), 4);
        let csv = render_series_csv(&[cs], &[5, 10]);
        assert!(csv.starts_with("sims,CircuitVAE_q1"));
    }

    #[test]
    fn checkpoint_spacing() {
        assert_eq!(checkpoints(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(checkpoints(7, 1), vec![7]);
    }

    #[test]
    fn pareto_filter_keeps_only_non_dominated_sorted() {
        let pts = [
            (3.0, 3.0),
            (1.0, 4.0),
            (2.0, 2.0),
            (4.0, 1.0),
            (1.0, 4.0), // duplicate
            (f64::NAN, 1.0),
        ];
        assert_eq!(
            pareto_filter(&pts),
            vec![(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
        );
        assert!(pareto_filter(&[]).is_empty());
    }

    #[test]
    fn hypervolume_of_known_front() {
        // Two points vs reference (5, 5):
        // (1,4): (5-1)*(5-4) = 4;  (3,2): (5-3)*(4-2) = 4. Total 8.
        let hv = hypervolume(&[(1.0, 4.0), (3.0, 2.0)], (5.0, 5.0));
        assert!((hv - 8.0).abs() < 1e-12, "got {hv}");
        assert_eq!(hypervolume(&[], (5.0, 5.0)), 0.0);
        // A point beyond the reference contributes nothing.
        assert_eq!(hypervolume(&[(6.0, 1.0)], (5.0, 5.0)), 0.0);
        // Dominated points change nothing.
        let hv2 = hypervolume(&[(1.0, 4.0), (3.0, 2.0), (4.0, 4.5)], (5.0, 5.0));
        assert!((hv2 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn igd_zero_when_covered_and_grows_with_distance() {
        let reference = [(1.0, 4.0), (3.0, 2.0)];
        assert_eq!(igd(&reference, &reference), Some(0.0));
        let off = [(2.0, 4.0), (4.0, 2.0)];
        let d = igd(&off, &reference).unwrap();
        assert!((d - 1.0).abs() < 1e-12, "each reference point is 1 away");
        assert_eq!(igd(&[], &reference), Some(f64::INFINITY));
        assert_eq!(igd(&reference, &[]), None);
    }

    #[test]
    fn hypervolume_within_respects_budget_cut() {
        let obs = [
            Observation {
                sims: 1,
                area_um2: 3.0,
                delay_ns: 2.0,
            },
            Observation {
                sims: 10,
                area_um2: 1.0,
                delay_ns: 4.0,
            },
        ];
        let reference = (5.0, 5.0);
        let early = hypervolume_within(&obs, 5, reference);
        let late = hypervolume_within(&obs, 10, reference);
        assert!((early - 6.0).abs() < 1e-12);
        assert!((late - 8.0).abs() < 1e-12);
        assert!(late >= early, "hv-vs-sims is monotone");
        assert_eq!(hypervolume_within(&obs, 0, reference), 0.0);
    }

    #[test]
    fn nadir_reference_dominated_by_all() {
        let pts = [(1.0, 4.0), (3.0, 2.0)];
        let r = nadir_reference(&pts, 0.1).unwrap();
        for p in pts {
            assert!(p.0 < r.0 && p.1 < r.1);
        }
        assert!(nadir_reference(&[(f64::NAN, 1.0)], 0.1).is_none());
    }
}
