//! Method dispatch onto the step-driver engine: one constructor that
//! turns any [`Method`] × [`ExperimentSpec`] × seed into a resumable
//! [`SearchDriver`], and the harness-policy VAE driver (GA-built initial
//! dataset, then Algorithm-1 rounds) the figure binaries rely on.

use crate::harness::{vae_config, ExperimentSpec, Method};
use circuitvae::driver::{
    read_opt_outcome, read_rng, read_vae_config, write_opt_outcome, write_rng, write_vae_config,
    Checkpointable, SearchDriver, StepStatus,
};
use circuitvae::{Acquisition, CircuitVae, CircuitVaeDriver};
use cv_baselines::{
    ga_initial_dataset, GaConfig, GaDriver, RandomSearchDriver, RlConfig, RlDriver, SaConfig,
    SaDriver,
};
use cv_prefix::PrefixGrid;
use cv_synth::ckpt::{CkptError, Dec, Enc};
use cv_synth::{CachedEvaluator, SearchOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The harness's two-phase CircuitVAE/BO method as a driver: first a
/// GA-built initial dataset (one step, charged to the budget like the
/// paper does), then one Algorithm-1 round per step, and finally the
/// init-prefix merge every two-phase method shares.
pub struct VaeMethodDriver {
    width: usize,
    budget: usize,
    init_budget: usize,
    vae_seed: u64,
    bayes: bool,
    config: circuitvae::CircuitVaeConfig,
    used: usize,
    phase: VaePhase,
    outcome: Option<SearchOutcome>,
}

enum VaePhase {
    /// The GA initialization has not run yet; `rng` is the harness seed
    /// stream.
    Init { rng: StdRng },
    /// Algorithm-1 rounds, plus the frozen init-phase summary needed for
    /// the final merge.
    Rounds {
        inner: Box<CircuitVaeDriver>,
        init_used: usize,
        init_best: f64,
        init_best_grid: Option<PrefixGrid>,
    },
}

impl VaeMethodDriver {
    /// A driver matching `run_method_on`'s CircuitVae/LatentBo arms.
    pub fn new(spec: &ExperimentSpec, seed: u64, bayes: bool) -> Self {
        let init_budget =
            ((spec.budget as f64 * spec.init_fraction) as usize).clamp(1, spec.budget);
        VaeMethodDriver {
            width: spec.width,
            budget: spec.budget,
            init_budget,
            vae_seed: seed ^ 0x5eed,
            bayes,
            config: vae_config(spec),
            used: 0,
            phase: VaePhase::Init {
                rng: StdRng::seed_from_u64(seed),
            },
            outcome: None,
        }
    }
}

impl SearchDriver for VaeMethodDriver {
    fn step(&mut self, evaluator: &CachedEvaluator) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        let before = evaluator.counter().count();
        match &mut self.phase {
            VaePhase::Init { rng } => {
                let initial = ga_initial_dataset(self.width, evaluator, self.init_budget, rng);
                let init_used = evaluator.counter().count() - before;
                let init_best = initial
                    .iter()
                    .map(|(_, c)| *c)
                    .fold(f64::INFINITY, f64::min);
                let init_best_grid = initial
                    .iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(g, _)| g.clone());
                let acquisition = if self.bayes {
                    Acquisition::BayesOpt
                } else {
                    Acquisition::GradientSearch
                };
                let vae = CircuitVae::new(self.width, self.config.clone(), initial, self.vae_seed)
                    .with_acquisition(acquisition);
                let inner = CircuitVaeDriver::from_vae(vae, self.budget.saturating_sub(init_used));
                self.phase = VaePhase::Rounds {
                    inner: Box::new(inner),
                    init_used,
                    init_best,
                    init_best_grid,
                };
            }
            VaePhase::Rounds {
                inner,
                init_used,
                init_best,
                init_best_grid,
            } => {
                if let StepStatus::Done = inner.step(evaluator) {
                    let merged = inner
                        .outcome()
                        .cloned()
                        .expect("inner driver is done")
                        .with_init_prefix(*init_used, *init_best, init_best_grid.clone());
                    self.outcome = Some(merged);
                    self.used += evaluator.counter().count() - before;
                    return StepStatus::Done;
                }
            }
        }
        self.used += evaluator.counter().count() - before;
        StepStatus::Running
    }

    fn sims_used(&self) -> usize {
        self.used
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn outcome(&self) -> Option<&SearchOutcome> {
        self.outcome.as_ref()
    }

    fn best_cost(&self) -> f64 {
        if let Some(o) = &self.outcome {
            return o.best_cost;
        }
        match &self.phase {
            VaePhase::Init { .. } => f64::INFINITY,
            VaePhase::Rounds {
                inner, init_best, ..
            } => inner.best_cost().min(*init_best),
        }
    }
}

const VAE_METHOD_MAGIC: &[u8; 8] = b"CVDRVM01";

impl Checkpointable for VaeMethodDriver {
    fn save(&self) -> Vec<u8> {
        let mut enc = Enc::with_magic(VAE_METHOD_MAGIC);
        enc.usize(self.width);
        enc.usize(self.budget);
        enc.usize(self.init_budget);
        enc.u64(self.vae_seed);
        enc.bool(self.bayes);
        // The config is reconstructed through the inner driver's own
        // checkpoint in the Rounds phase; in the Init phase only the
        // spec-independent fields matter, so serialize via the inner
        // format either way.
        write_vae_config(&mut enc, &self.config);
        enc.usize(self.used);
        match &self.phase {
            VaePhase::Init { rng } => {
                enc.u64(0);
                write_rng(&mut enc, rng);
            }
            VaePhase::Rounds {
                inner,
                init_used,
                init_best,
                init_best_grid,
            } => {
                enc.u64(1);
                enc.bytes(&inner.save());
                enc.usize(*init_used);
                enc.f64(*init_best);
                enc.opt_grid(init_best_grid.as_ref());
            }
        }
        write_opt_outcome(&mut enc, self.outcome.as_ref());
        enc.finish()
    }

    fn load(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Dec::with_magic(bytes, VAE_METHOD_MAGIC)?;
        let width = dec.usize()?;
        let budget = dec.usize()?;
        let init_budget = dec.usize()?;
        let vae_seed = dec.u64()?;
        let bayes = dec.bool()?;
        let config = read_vae_config(&mut dec)?;
        let used = dec.usize()?;
        let phase = match dec.u64()? {
            0 => VaePhase::Init {
                rng: read_rng(&mut dec)?,
            },
            1 => VaePhase::Rounds {
                inner: Box::new(CircuitVaeDriver::load(dec.bytes()?)?),
                init_used: dec.usize()?,
                init_best: dec.f64()?,
                init_best_grid: dec.opt_grid()?,
            },
            _ => return Err(CkptError::Invalid("VaePhase tag")),
        };
        let outcome = read_opt_outcome(&mut dec)?;
        dec.finish()?;
        Ok(VaeMethodDriver {
            width,
            budget,
            init_budget,
            vae_seed,
            bayes,
            config,
            used,
            phase,
            outcome,
        })
    }
}

/// Any harness method as one driver type — the campaign's unit of work.
pub enum MethodDriver {
    /// Simulated annealing.
    Sa(SaDriver),
    /// Genetic algorithm (either ranking mode, per its config).
    Ga(GaDriver),
    /// PrefixRL-lite DQN.
    Rl(Box<RlDriver>),
    /// Random search.
    Random(RandomSearchDriver),
    /// CircuitVAE / latent BO with the GA init phase.
    Vae(Box<VaeMethodDriver>),
}

/// Builds the driver `run_method_on` steps for a method/spec/seed
/// triple. The RNG streams match the pre-driver harness exactly, so
/// outcomes are bit-for-bit identical to earlier revisions.
pub fn make_driver(method: Method, spec: &ExperimentSpec, seed: u64) -> MethodDriver {
    match method {
        Method::Ga => MethodDriver::Ga(GaDriver::new(
            spec.width,
            GaConfig::default(),
            spec.budget,
            usize::MAX,
            false,
            seed,
        )),
        Method::GaNsga2 => MethodDriver::Ga(GaDriver::new(
            spec.width,
            GaConfig::nsga2(),
            spec.budget,
            usize::MAX,
            false,
            seed,
        )),
        Method::Sa => MethodDriver::Sa(SaDriver::new(
            spec.width,
            SaConfig::default(),
            spec.budget,
            seed,
        )),
        Method::Random => {
            MethodDriver::Random(RandomSearchDriver::new(spec.width, spec.budget, seed))
        }
        Method::Rl => {
            let hidden = if spec.width >= 32 { 96 } else { 64 };
            MethodDriver::Rl(Box::new(RlDriver::new(
                spec.width,
                RlConfig {
                    hidden,
                    train_interval: 4,
                    ..RlConfig::default()
                },
                spec.budget,
                seed,
            )))
        }
        Method::CircuitVae => MethodDriver::Vae(Box::new(VaeMethodDriver::new(spec, seed, false))),
        Method::LatentBo => MethodDriver::Vae(Box::new(VaeMethodDriver::new(spec, seed, true))),
    }
}

macro_rules! delegate {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            MethodDriver::Sa($d) => $body,
            MethodDriver::Ga($d) => $body,
            MethodDriver::Rl($d) => $body,
            MethodDriver::Random($d) => $body,
            MethodDriver::Vae($d) => $body,
        }
    };
}

impl SearchDriver for MethodDriver {
    fn step(&mut self, evaluator: &CachedEvaluator) -> StepStatus {
        delegate!(self, d => d.step(evaluator))
    }

    fn sims_used(&self) -> usize {
        delegate!(self, d => d.sims_used())
    }

    fn budget(&self) -> usize {
        delegate!(self, d => d.budget())
    }

    fn outcome(&self) -> Option<&SearchOutcome> {
        delegate!(self, d => d.outcome())
    }

    fn best_cost(&self) -> f64 {
        delegate!(self, d => d.best_cost())
    }
}

impl Checkpointable for MethodDriver {
    fn save(&self) -> Vec<u8> {
        let (tag, bytes) = match self {
            MethodDriver::Sa(d) => (0u64, d.save()),
            MethodDriver::Ga(d) => (1, d.save()),
            MethodDriver::Rl(d) => (2, d.save()),
            MethodDriver::Random(d) => (3, d.save()),
            MethodDriver::Vae(d) => (4, d.save()),
        };
        let mut enc = Enc::new();
        enc.u64(tag);
        enc.bytes(&bytes);
        enc.finish()
    }

    fn load(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Dec::new(bytes);
        let tag = dec.u64()?;
        let inner = dec.bytes()?;
        dec.finish()?;
        Ok(match tag {
            0 => MethodDriver::Sa(SaDriver::load(inner)?),
            1 => MethodDriver::Ga(GaDriver::load(inner)?),
            2 => MethodDriver::Rl(Box::new(RlDriver::load(inner)?)),
            3 => MethodDriver::Random(RandomSearchDriver::load(inner)?),
            4 => MethodDriver::Vae(Box::new(VaeMethodDriver::load(inner)?)),
            _ => return Err(CkptError::Invalid("MethodDriver tag")),
        })
    }
}
