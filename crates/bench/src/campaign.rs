//! The resumable campaign orchestrator: method×seed×width×tech grids
//! executed on the process-wide [`cv_pool::WorkerPool`], with per-round
//! JSONL telemetry and on-disk checkpoints that make an interrupted
//! campaign resume bit-for-bit (Contract 8, DESIGN.md §7).
//!
//! Campaign tasks are coarse and independent (each owns its evaluator,
//! archive, and on-disk files), so they ride the pool's *dynamic*
//! assignment: scheduling balances load without influencing any result.
//!
//! Each task runs one `MethodDriver` through the shared
//! `crate::persist::RunningTask` step engine — the same engine the
//! `campaignd` service (DESIGN.md §10) interleaves across jobs. Every
//! `checkpoint_every` simulations the engine atomically persists
//!
//! * `<id>.ckpt` — driver state + evaluator snapshot + archive +
//!   telemetry lines emitted so far,
//! * `<id>.jsonl` — the telemetry stream up to the checkpoint.
//!
//! On completion the engine writes `<id>.done` (outcome + archive
//! bytes), finalizes the JSONL, and removes the checkpoint. A re-run of
//! the same campaign directory skips `.done` tasks, resumes `.ckpt`
//! tasks from their snapshot, and starts the rest fresh — so after a
//! kill (or a deterministic `halt_after` stop) the final outputs
//! byte-match an uninterrupted run; the CI campaign-smoke job enforces
//! exactly that.
//!
//! **Durability (Contract 10, DESIGN.md §9).** Every persistent
//! artifact flows through the audited write path in [`cv_journal::fs`]
//! (unique staging names, fsync before rename, parent-directory sync),
//! and each task additionally records its life in an append-only
//! checksummed [`cv_journal::Journal`] (`<id>.journal`): *started*,
//! *simulated-N* + *checkpointed* at every checkpoint, *completed* (the
//! final result and telemetry bytes) at the end, when the segment is
//! atomically rotated down to that single record. Recovery replays the
//! journal's durable prefix: a torn tail is truncated, a corrupt or
//! truncated `.done`/`.ckpt` is logged and treated as absent (never a
//! panic), and a crash that landed after the *completed* record but
//! before the result files heals the files from the journal — so every
//! injected crash point resumes to byte-identical outputs. The
//! fault-injection proptests in `tests/crash_recovery.rs` and the CI
//! `crash-smoke` job (`CV_FAILPOINT`) pin exactly that.

use crate::harness::{ExperimentSpec, Method, TechLibrary};
use crate::persist::{OpenedTask, RunningTask, TaskStep};
use cv_journal::{failpoint, fs};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub use crate::persist::TaskResult;

/// One unit of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignTask {
    /// The search method.
    pub method: Method,
    /// The experiment setting (width, tech, ω, budget).
    pub spec: ExperimentSpec,
    /// The method seed.
    pub seed: u64,
}

impl CampaignTask {
    /// The task's stable identifier — the stem of its on-disk files.
    pub fn id(&self) -> String {
        let tech = match self.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        format!(
            "{tech}_w{}_{}_s{}",
            self.spec.width,
            self.method.label().to_lowercase().replace('-', ""),
            self.seed
        )
    }
}

/// Campaign execution policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Where checkpoints/telemetry/results live; `None` disables
    /// persistence (pure in-memory pool run).
    pub dir: Option<PathBuf>,
    /// Simulations between checkpoints.
    pub checkpoint_every: usize,
    /// Worker threads of the persistent pool.
    pub threads: usize,
    /// Stop the whole campaign after this many checkpoint writes — the
    /// deterministic stand-in for a mid-run kill, used by the CI
    /// resume-equality smoke. `None` runs to completion.
    pub halt_after: Option<usize>,
    /// Rotate a task's event journal once its segment exceeds this many
    /// bytes (compacting it to the latest durable state). Keeps
    /// long-running tasks' journals bounded; tests shrink it to force
    /// rotation under fault injection.
    pub journal_max_bytes: u64,
}

/// Default journal segment cap (see
/// [`CampaignConfig::journal_max_bytes`]).
pub const JOURNAL_MAX_BYTES: u64 = 1 << 20;

impl CampaignConfig {
    /// An in-memory configuration (no persistence) with `threads`
    /// workers.
    pub fn in_memory(threads: usize) -> Self {
        CampaignConfig {
            dir: None,
            checkpoint_every: usize::MAX,
            threads,
            halt_after: None,
            journal_max_bytes: JOURNAL_MAX_BYTES,
        }
    }
}

/// Shared halt bookkeeping: counts checkpoint writes and flips the halt
/// flag once the configured limit is reached.
struct HaltState {
    checkpoints: AtomicUsize,
    halted: AtomicBool,
    limit: Option<usize>,
}

impl HaltState {
    fn new(limit: Option<usize>) -> Self {
        HaltState {
            checkpoints: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            limit,
        }
    }

    fn halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    fn note_checkpoint(&self) {
        let n = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.limit {
            if n >= limit {
                self.halted.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Runs one task to completion (or to the campaign halt) through the
/// shared [`RunningTask`] step engine. Returns `Ok(None)` when the task
/// was interrupted by the halt flag (its checkpoint is on disk).
///
/// # Errors
///
/// Propagates persistence failures — including crashes injected by an
/// armed [`failpoint`] in `Error` mode, which the campaign treats as a
/// process death.
fn run_task(
    task: &CampaignTask,
    cfg: &CampaignConfig,
    halt: &HaltState,
) -> io::Result<Option<TaskResult>> {
    let id = task.id();
    let mut running = match RunningTask::open(task, id, cfg.dir.as_deref(), cfg.journal_max_bytes)?
    {
        OpenedTask::Done(result) => return Ok(Some(result)),
        OpenedTask::Run(running) => running,
    };
    loop {
        if halt.halted() {
            running.checkpoint_now()?;
            running.detach();
            return Ok(None);
        }
        match running.step(cfg.checkpoint_every)? {
            TaskStep::Done(result) => return Ok(Some(*result)),
            TaskStep::Running { checkpointed } => {
                if checkpointed {
                    halt.note_checkpoint();
                }
            }
        }
    }
}

/// Executes a campaign grid on the shared worker pool (at most
/// [`CampaignConfig::threads`] tasks in flight). Returns one entry per
/// task, in task order; `None` marks tasks interrupted by
/// [`CampaignConfig::halt_after`] (resume by re-running with the same
/// directory) or never started before the halt.
pub fn run_campaign(tasks: &[CampaignTask], cfg: &CampaignConfig) -> Vec<Option<TaskResult>> {
    if let Some(dir) = &cfg.dir {
        std::fs::create_dir_all(dir).expect("campaign dir must be creatable");
        // Recovery step zero: staging files orphaned by a kill are
        // noise the directory must shed before it can byte-match a
        // clean run.
        fs::sweep_tmp(dir).expect("campaign dir must be sweepable");
    }
    let halt = HaltState::new(cfg.halt_after);
    let results: Vec<parking_lot::Mutex<Option<TaskResult>>> = tasks
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    cv_pool::WorkerPool::global().run_dynamic(tasks.len(), cfg.threads.max(1), |i| {
        if halt.halted() {
            return;
        }
        match run_task(&tasks[i], cfg, &halt) {
            Ok(result) => *results[i].lock() = result,
            Err(e) if failpoint::is_crash(&e) => {
                // An injected crash: this "process" is dead. Stop the
                // campaign exactly as a halt would; the on-disk state is
                // whatever the crash point left durable.
                halt.halted.store(true, Ordering::Relaxed);
            }
            Err(e) => panic!("campaign persistence failed for {}: {e}", tasks[i].id()),
        }
    });
    results.into_iter().map(|m| m.into_inner()).collect()
}

/// Renders the campaign summary CSV (one row per completed task, in
/// task order) — the shared artifact the `campaign` binary publishes
/// and the crash-recovery suite byte-compares across resumes.
///
/// # Panics
///
/// Panics when any task is incomplete; callers gate on completeness.
pub fn summary_csv(tasks: &[CampaignTask], results: &[Option<TaskResult>]) -> String {
    let mut csv = String::from("tech,width,method,seed,sims,best_cost,front_size\n");
    for (task, result) in tasks.iter().zip(results) {
        let r = result.as_ref().expect("campaign completed");
        let tech = match task.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        let sims = r.outcome.history.last().map_or(0, |&(s, _)| s);
        csv.push_str(&format!(
            "{tech},{},{},{},{sims},{:.9},{}\n",
            task.spec.width,
            task.method.label(),
            task.seed,
            r.outcome.best_cost,
            r.archive.len()
        ));
    }
    csv
}

/// A boxed unit of pool work (what [`run_units`] consumes).
pub type Unit<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs independent units on the shared worker pool, preserving input
/// order in the returned vector. The generic cousin of [`run_campaign`]
/// — `frontier` panels and multi-seed curve sets ride on it.
pub fn run_units<T: Send>(units: Vec<Unit<T>>, threads: usize) -> Vec<T> {
    let n = units.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return units.into_iter().map(|u| u()).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<Unit<T>>>> = units
        .into_iter()
        .map(|u| parking_lot::Mutex::new(Some(u)))
        .collect();
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    cv_pool::WorkerPool::global().run_dynamic(n, threads, |i| {
        let unit = slots[i].lock().take().expect("each unit runs once");
        *results[i].lock() = Some(unit());
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("all units completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_prefix::CircuitKind;

    fn tiny_task(method: Method, seed: u64) -> CampaignTask {
        CampaignTask {
            method,
            spec: ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 30),
            seed,
        }
    }

    #[test]
    fn task_ids_are_stable_and_filesystem_safe() {
        let t = tiny_task(Method::GaNsga2, 7);
        assert_eq!(t.id(), "nangate45_w8_gansga2_s7");
        let mut t2 = tiny_task(Method::Sa, 1);
        t2.spec.tech = TechLibrary::Scaled8nmLike;
        assert_eq!(t2.id(), "scaled8nm_w8_sa_s1");
    }

    #[test]
    fn in_memory_campaign_matches_direct_runs() {
        let tasks = vec![tiny_task(Method::Sa, 3), tiny_task(Method::Random, 4)];
        let results = run_campaign(&tasks, &CampaignConfig::in_memory(2));
        for (task, result) in tasks.iter().zip(&results) {
            let direct = crate::harness::run_method(task.method, &task.spec, task.seed);
            let got = &result.as_ref().expect("completed").outcome;
            assert_eq!(got.to_ckpt_bytes(), direct.to_ckpt_bytes());
        }
    }

    #[test]
    fn halted_campaign_resumes_to_byte_identical_outputs() {
        let base = std::env::temp_dir().join(format!("cv_campaign_test_{}", std::process::id()));
        let clean_dir = base.join("clean");
        let resumed_dir = base.join("resumed");
        let _ = std::fs::remove_dir_all(&base);
        let tasks = vec![tiny_task(Method::Sa, 9), tiny_task(Method::Ga, 9)];
        let cfg = |dir: &PathBuf, halt: Option<usize>| CampaignConfig {
            dir: Some(dir.clone()),
            checkpoint_every: 7,
            threads: 1,
            halt_after: halt,
            journal_max_bytes: JOURNAL_MAX_BYTES,
        };

        let clean = run_campaign(&tasks, &cfg(&clean_dir, None));
        assert!(clean.iter().all(Option::is_some));

        // Halt after two checkpoints (mid-first-task), then resume.
        let halted = run_campaign(&tasks, &cfg(&resumed_dir, Some(2)));
        assert!(
            halted.iter().any(Option::is_none),
            "the halt must interrupt at least one task"
        );
        let resumed = run_campaign(&tasks, &cfg(&resumed_dir, None));
        assert!(resumed.iter().all(Option::is_some));

        for (a, b) in clean.iter().zip(&resumed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.outcome.to_ckpt_bytes(), b.outcome.to_ckpt_bytes());
            assert_eq!(a.archive.to_ckpt_bytes(), b.archive.to_ckpt_bytes());
        }
        // On-disk telemetry byte-matches too.
        for task in &tasks {
            let id = task.id();
            let a = std::fs::read(clean_dir.join(format!("{id}.jsonl"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.jsonl"))).unwrap();
            assert_eq!(a, b, "telemetry for {id} must byte-match");
            let a = std::fs::read(clean_dir.join(format!("{id}.done"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.done"))).unwrap();
            assert_eq!(a, b, "results for {id} must byte-match");
            let a = std::fs::read(clean_dir.join(format!("{id}.journal"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.journal"))).unwrap();
            assert_eq!(a, b, "journals for {id} must byte-match");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn run_units_preserves_order() {
        let units: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..17usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_units(units, 4);
        assert_eq!(out, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }
}
