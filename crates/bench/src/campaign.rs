//! The resumable campaign orchestrator: method×seed×width×tech grids
//! executed on the process-wide [`cv_pool::WorkerPool`], with per-round
//! JSONL telemetry and on-disk checkpoints that make an interrupted
//! campaign resume bit-for-bit (Contract 8, DESIGN.md §7).
//!
//! Campaign tasks are coarse and independent (each owns its evaluator,
//! archive, and on-disk files), so they ride the pool's *dynamic*
//! assignment: scheduling balances load without influencing any result.
//!
//! Each task runs one [`MethodDriver`] on its own evaluator with a
//! logging [`ParetoArchive`] attached. Every `checkpoint_every`
//! simulations the runner atomically (tmp + rename) persists
//!
//! * `<id>.ckpt` — driver state + evaluator snapshot + archive +
//!   telemetry lines emitted so far,
//! * `<id>.jsonl` — the telemetry stream up to the checkpoint.
//!
//! On completion the runner writes `<id>.done` (outcome + archive
//! bytes), finalizes the JSONL, and removes the checkpoint. A re-run of
//! the same campaign directory skips `.done` tasks, resumes `.ckpt`
//! tasks from their snapshot, and starts the rest fresh — so after a
//! kill (or a deterministic `halt_after` stop) the final outputs
//! byte-match an uninterrupted run; the CI campaign-smoke job enforces
//! exactly that.
//!
//! **Durability (Contract 10, DESIGN.md §9).** Every persistent
//! artifact flows through the audited write path in [`cv_journal::fs`]
//! (unique staging names, fsync before rename, parent-directory sync),
//! and each task additionally records its life in an append-only
//! checksummed [`cv_journal::Journal`] (`<id>.journal`): *started*,
//! *simulated-N* + *checkpointed* at every checkpoint, *completed* (the
//! final result and telemetry bytes) at the end, when the segment is
//! atomically rotated down to that single record. Recovery replays the
//! journal's durable prefix: a torn tail is truncated, a corrupt or
//! truncated `.done`/`.ckpt` is logged and treated as absent (never a
//! panic), and a crash that landed after the *completed* record but
//! before the result files heals the files from the journal — so every
//! injected crash point resumes to byte-identical outputs. The
//! fault-injection proptests in `tests/crash_recovery.rs` and the CI
//! `crash-smoke` job (`CV_FAILPOINT`) pin exactly that.

use crate::driver::{make_driver, MethodDriver};
use crate::harness::{build_evaluator, ExperimentSpec, Method, TechLibrary};
use circuitvae::driver::{Checkpointable, SearchDriver, StepStatus};
use cv_journal::{failpoint, fs, Journal};
use cv_synth::ckpt::{CkptError, Dec, Enc};
use cv_synth::{EvaluatorState, ParetoArchive, SearchOutcome};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One unit of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignTask {
    /// The search method.
    pub method: Method,
    /// The experiment setting (width, tech, ω, budget).
    pub spec: ExperimentSpec,
    /// The method seed.
    pub seed: u64,
}

impl CampaignTask {
    /// The task's stable identifier — the stem of its on-disk files.
    pub fn id(&self) -> String {
        let tech = match self.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        format!(
            "{tech}_w{}_{}_s{}",
            self.spec.width,
            self.method.label().to_lowercase().replace('-', ""),
            self.seed
        )
    }
}

/// Campaign execution policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Where checkpoints/telemetry/results live; `None` disables
    /// persistence (pure in-memory pool run).
    pub dir: Option<PathBuf>,
    /// Simulations between checkpoints.
    pub checkpoint_every: usize,
    /// Worker threads of the persistent pool.
    pub threads: usize,
    /// Stop the whole campaign after this many checkpoint writes — the
    /// deterministic stand-in for a mid-run kill, used by the CI
    /// resume-equality smoke. `None` runs to completion.
    pub halt_after: Option<usize>,
    /// Rotate a task's event journal once its segment exceeds this many
    /// bytes (compacting it to the latest durable state). Keeps
    /// long-running tasks' journals bounded; tests shrink it to force
    /// rotation under fault injection.
    pub journal_max_bytes: u64,
}

/// Default journal segment cap (see
/// [`CampaignConfig::journal_max_bytes`]).
pub const JOURNAL_MAX_BYTES: u64 = 1 << 20;

impl CampaignConfig {
    /// An in-memory configuration (no persistence) with `threads`
    /// workers.
    pub fn in_memory(threads: usize) -> Self {
        CampaignConfig {
            dir: None,
            checkpoint_every: usize::MAX,
            threads,
            halt_after: None,
            journal_max_bytes: JOURNAL_MAX_BYTES,
        }
    }
}

/// A completed task: the outcome plus the frontier its run traced.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The search outcome.
    pub outcome: SearchOutcome,
    /// The archive observed during the run.
    pub archive: ParetoArchive,
}

const DONE_MAGIC: &[u8; 8] = b"CVCPDN01";
const CKPT_MAGIC: &[u8; 8] = b"CVCPCK01";

// ---------------------------------------------------------------------
// Task event journal (Contract 10)
// ---------------------------------------------------------------------

/// One durable event in a task's journal. Payloads ride inside
/// checksummed journal frames, so decoding sees only intact records.
#[derive(Debug, Clone, PartialEq)]
enum TaskEvent {
    /// The task began a fresh run.
    Started,
    /// The task has consumed `sims` simulations (stamped alongside each
    /// checkpoint — the budget axis of the journal).
    Progress {
        /// Simulations consumed so far.
        sims: u64,
    },
    /// A full resume snapshot (the same bytes as the `.ckpt` file).
    Checkpoint {
        /// Encoded [`encode_ckpt`] bytes.
        bytes: Vec<u8>,
    },
    /// The task finished: the final result and telemetry, byte-exact.
    Completed {
        /// Encoded [`encode_done`] bytes.
        done: Vec<u8>,
        /// The final `.jsonl` content.
        jsonl: Vec<u8>,
    },
}

const EV_STARTED: u8 = 1;
const EV_PROGRESS: u8 = 2;
const EV_CHECKPOINT: u8 = 3;
const EV_COMPLETED: u8 = 4;

impl TaskEvent {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            TaskEvent::Started => enc.u8(EV_STARTED),
            TaskEvent::Progress { sims } => {
                enc.u8(EV_PROGRESS);
                enc.u64(*sims);
            }
            TaskEvent::Checkpoint { bytes } => {
                enc.u8(EV_CHECKPOINT);
                enc.bytes(bytes);
            }
            TaskEvent::Completed { done, jsonl } => {
                enc.u8(EV_COMPLETED);
                enc.bytes(done);
                enc.bytes(jsonl);
            }
        }
        enc.finish()
    }

    fn decode(payload: &[u8]) -> Result<TaskEvent, CkptError> {
        let mut dec = Dec::new(payload);
        let ev = match dec.u8()? {
            EV_STARTED => TaskEvent::Started,
            EV_PROGRESS => TaskEvent::Progress { sims: dec.u64()? },
            EV_CHECKPOINT => TaskEvent::Checkpoint {
                bytes: dec.bytes()?.to_vec(),
            },
            EV_COMPLETED => TaskEvent::Completed {
                done: dec.bytes()?.to_vec(),
                jsonl: dec.bytes()?.to_vec(),
            },
            _ => return Err(CkptError::Invalid("task event tag")),
        };
        dec.finish()?;
        Ok(ev)
    }
}

/// What a journal's durable prefix reconstructs: exactly the state the
/// orchestrator held at the last durable record.
#[derive(Debug, Default)]
struct ReplayedState {
    /// The latest durable checkpoint snapshot, if any.
    checkpoint: Option<Vec<u8>>,
    /// The final result + telemetry, if the task completed durably.
    completed: Option<(Vec<u8>, Vec<u8>)>,
    /// The highest durable simulation count.
    sims: u64,
}

/// Replays decoded journal records into orchestrator state. A record
/// that fails to decode (a version change — CRCs already screened out
/// corruption) ends the trusted prefix, mirroring the torn-tail rule.
fn replay(records: &[Vec<u8>]) -> ReplayedState {
    let mut state = ReplayedState::default();
    for record in records {
        match TaskEvent::decode(record) {
            Ok(TaskEvent::Started) => {}
            Ok(TaskEvent::Progress { sims }) => state.sims = state.sims.max(sims),
            Ok(TaskEvent::Checkpoint { bytes }) => state.checkpoint = Some(bytes),
            Ok(TaskEvent::Completed { done, jsonl }) => state.completed = Some((done, jsonl)),
            Err(_) => break,
        }
    }
    state
}

/// A task's open journal plus the rotation policy.
struct TaskJournal {
    journal: Option<Journal>,
    max_bytes: u64,
}

impl TaskJournal {
    fn open(path: &Path) -> io::Result<(TaskJournal, ReplayedState)> {
        let opened = Journal::open(path)?;
        if opened.truncated_bytes > 0 {
            eprintln!(
                "campaign: truncated {} bytes of torn tail from {}",
                opened.truncated_bytes,
                path.display()
            );
        }
        let state = replay(&opened.records);
        Ok((
            TaskJournal {
                journal: Some(opened.journal),
                max_bytes: JOURNAL_MAX_BYTES,
            },
            state,
        ))
    }

    fn started(&mut self) -> io::Result<()> {
        let payload = TaskEvent::Started.encode();
        self.journal
            .as_mut()
            .expect("journal open")
            .append(&payload)
    }

    /// Appends the per-checkpoint event pair (one durable write +
    /// fsync) and rotates the segment down to it when the cap is
    /// exceeded.
    fn checkpoint(&mut self, sims: u64, bytes: &[u8]) -> io::Result<()> {
        let payloads = [
            TaskEvent::Progress { sims }.encode(),
            TaskEvent::Checkpoint {
                bytes: bytes.to_vec(),
            }
            .encode(),
        ];
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let journal = self.journal.as_mut().expect("journal open");
        journal.append_all(&refs)?;
        if journal.len() > self.max_bytes {
            let rotated = self.journal.take().expect("journal open").rotate(&refs)?;
            self.journal = Some(rotated);
        }
        Ok(())
    }

    /// Rotates the segment down to the single *completed* record — the
    /// durable statement that this task's results are final.
    fn complete(&mut self, done: &[u8], jsonl: &[u8]) -> io::Result<()> {
        let payload = TaskEvent::Completed {
            done: done.to_vec(),
            jsonl: jsonl.to_vec(),
        }
        .encode();
        let rotated = self
            .journal
            .take()
            .expect("journal open")
            .rotate(&[&payload])?;
        self.journal = Some(rotated);
        Ok(())
    }
}

fn encode_done(result: &TaskResult) -> Vec<u8> {
    let mut enc = Enc::with_magic(DONE_MAGIC);
    result.outcome.write_ckpt(&mut enc);
    result.archive.write_ckpt(&mut enc);
    enc.finish()
}

fn decode_done(bytes: &[u8]) -> Result<TaskResult, CkptError> {
    let mut dec = Dec::with_magic(bytes, DONE_MAGIC)?;
    let outcome = SearchOutcome::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    dec.finish()?;
    Ok(TaskResult { outcome, archive })
}

fn encode_ckpt(
    driver: &MethodDriver,
    evaluator_state: &EvaluatorState,
    archive: &ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: &[String],
) -> Vec<u8> {
    let mut enc = Enc::with_magic(CKPT_MAGIC);
    enc.bytes(&driver.save());
    evaluator_state.write_ckpt(&mut enc);
    archive.write_ckpt(&mut enc);
    enc.usize(round);
    enc.usize(last_line_sims);
    enc.usize(lines.len());
    for l in lines {
        enc.str(l);
    }
    enc.finish()
}

struct ResumedTask {
    driver: MethodDriver,
    evaluator_state: EvaluatorState,
    archive: ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: Vec<String>,
}

fn decode_ckpt(bytes: &[u8]) -> Result<ResumedTask, CkptError> {
    let mut dec = Dec::with_magic(bytes, CKPT_MAGIC)?;
    let driver = MethodDriver::load(dec.bytes()?)?;
    let evaluator_state = EvaluatorState::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    let round = dec.usize()?;
    let last_line_sims = dec.usize()?;
    let n = dec.seq_len()?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(dec.str()?);
    }
    dec.finish()?;
    Ok(ResumedTask {
        driver,
        evaluator_state,
        archive,
        round,
        last_line_sims,
        lines,
    })
}

fn telemetry_line(task_id: &str, round: usize, sims: usize, best: f64) -> String {
    if best.is_finite() {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":{best:.9}}}"#)
    } else {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":null}}"#)
    }
}

/// Shared halt bookkeeping: counts checkpoint writes and flips the halt
/// flag once the configured limit is reached.
struct HaltState {
    checkpoints: AtomicUsize,
    halted: AtomicBool,
    limit: Option<usize>,
}

impl HaltState {
    fn new(limit: Option<usize>) -> Self {
        HaltState {
            checkpoints: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            limit,
        }
    }

    fn halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    fn note_checkpoint(&self) {
        let n = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.limit {
            if n >= limit {
                self.halted.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// The on-disk file set of one persistent task.
struct TaskPaths {
    done: PathBuf,
    ckpt: PathBuf,
    jsonl: PathBuf,
    journal: PathBuf,
}

impl TaskPaths {
    fn new(dir: &Path, id: &str) -> TaskPaths {
        TaskPaths {
            done: dir.join(format!("{id}.done")),
            ckpt: dir.join(format!("{id}.ckpt")),
            jsonl: dir.join(format!("{id}.jsonl")),
            journal: dir.join(format!("{id}.journal")),
        }
    }
}

/// Reads and decodes a `.done`/`.ckpt` artifact; a corrupt or truncated
/// file is logged and **deleted** (recovery treats it as absent and
/// falls back — never a panic; Contract 10).
fn read_or_quarantine<T>(
    path: &Path,
    what: &str,
    decode: impl FnOnce(&[u8]) -> Result<T, CkptError>,
) -> Option<T> {
    let bytes = std::fs::read(path).ok()?;
    match decode(&bytes) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!(
                "campaign: corrupt {what} at {} ({e}); treating as absent",
                path.display()
            );
            let _ = std::fs::remove_file(path);
            None
        }
    }
}

/// Runs one task to completion (or to the campaign halt), reading and
/// writing its on-disk state through the audited durable write path.
/// Returns `Ok(None)` when the task was interrupted by the halt flag
/// (its checkpoint is on disk).
///
/// # Errors
///
/// Propagates persistence failures — including crashes injected by an
/// armed [`failpoint`] in `Error` mode, which the campaign treats as a
/// process death.
fn run_task(
    task: &CampaignTask,
    cfg: &CampaignConfig,
    halt: &HaltState,
) -> io::Result<Option<TaskResult>> {
    let id = task.id();
    let paths = cfg.dir.as_ref().map(|d| TaskPaths::new(d, &id));

    // Completed on a previous run: reuse the stored result verbatim. A
    // real kill can land between the `.done` write and the checkpoint
    // removal, so sweep up any leftover `.ckpt` here — otherwise the
    // stale file would survive every later resume and the directory
    // would never byte-match a clean run.
    if let Some(p) = &paths {
        if let Some(result) = read_or_quarantine(&p.done, ".done file", decode_done) {
            let _ = std::fs::remove_file(&p.ckpt);
            return Ok(Some(result));
        }
    }

    // Open the event journal and replay its durable prefix. The journal
    // is authoritative: its records were appended *before* the matching
    // `.ckpt`/`.done` files were published, so it is never behind them.
    let journal = match &paths {
        Some(p) => {
            let (mut journal, state) = TaskJournal::open(&p.journal)?;
            journal.max_bytes = cfg.journal_max_bytes;
            if let Some((done_bytes, jsonl_bytes)) = &state.completed {
                if let Ok(result) = decode_done(done_bytes) {
                    // The task completed durably but died before (or
                    // while) publishing its result files: heal them
                    // from the journal, byte-exact.
                    fs::write_atomic(&p.jsonl, jsonl_bytes)?;
                    fs::write_atomic(&p.done, done_bytes)?;
                    let _ = std::fs::remove_file(&p.ckpt);
                    return Ok(Some(result));
                }
                eprintln!(
                    "campaign: undecodable completed record in {}; replaying from checkpoint",
                    p.journal.display()
                );
            }
            Some((journal, state))
        }
        None => None,
    };

    let evaluator = build_evaluator(&task.spec);
    // Resume source, in order of trust: the journal's latest durable
    // checkpoint, then the `.ckpt` file (pre-journal directories), then
    // a fresh start.
    let resumed = journal
        .as_ref()
        .and_then(|(_, state)| state.checkpoint.as_deref())
        .and_then(|bytes| match decode_ckpt(bytes) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("campaign: undecodable journal checkpoint for {id} ({e})");
                None
            }
        })
        .or_else(|| {
            let p = paths.as_ref()?;
            read_or_quarantine(&p.ckpt, ".ckpt file", decode_ckpt)
        });
    let mut journal = journal.map(|(j, _)| j);

    let (mut driver, archive, mut round, mut last_line_sims, mut lines) = match resumed {
        Some(resumed) => {
            evaluator.restore_state(&resumed.evaluator_state);
            let shared = resumed.archive.into_shared();
            evaluator.attach_archive(shared.clone());
            (
                resumed.driver,
                shared,
                resumed.round,
                resumed.last_line_sims,
                resumed.lines,
            )
        }
        None => {
            if let Some(journal) = &mut journal {
                journal.started()?;
            }
            let shared = ParetoArchive::new().with_log().into_shared();
            evaluator.attach_archive(shared.clone());
            (
                make_driver(task.method, &task.spec, task.seed),
                shared,
                0,
                usize::MAX, // sentinel: force a line on the first progress
                Vec::new(),
            )
        }
    };

    // One audited checkpoint write: journal first (the durable record),
    // then the derived `.ckpt` and `.jsonl` artifacts.
    let persist_checkpoint = |journal: &mut Option<TaskJournal>,
                              driver: &MethodDriver,
                              evaluator_state: &EvaluatorState,
                              archive: &ParetoArchive,
                              round: usize,
                              last_line_sims: usize,
                              lines: &[String]|
     -> io::Result<()> {
        let Some(p) = &paths else { return Ok(()) };
        let bytes = encode_ckpt(
            driver,
            evaluator_state,
            archive,
            round,
            last_line_sims,
            lines,
        );
        if let Some(journal) = journal {
            journal.checkpoint(driver.sims_used() as u64, &bytes)?;
        }
        fs::write_atomic(&p.ckpt, &bytes)?;
        fs::write_atomic(&p.jsonl, lines.join("\n").as_bytes())
    };

    let mut last_ckpt = driver.sims_used();
    loop {
        if halt.halted() {
            persist_checkpoint(
                &mut journal,
                &driver,
                &evaluator.state(),
                &archive.lock(),
                round,
                last_line_sims,
                &lines,
            )?;
            evaluator.detach_archive();
            return Ok(None);
        }
        match driver.step(&evaluator) {
            StepStatus::Done => break,
            StepStatus::Running => {
                round += 1;
                let sims = driver.sims_used();
                // One telemetry line per round that made progress on the
                // budget axis (phase transitions and cache hits stay
                // silent, so the stream length is bounded by the budget).
                if sims != last_line_sims && sims > 0 {
                    lines.push(telemetry_line(&id, round, sims, driver.best_cost()));
                    last_line_sims = sims;
                }
                if sims - last_ckpt >= cfg.checkpoint_every {
                    persist_checkpoint(
                        &mut journal,
                        &driver,
                        &evaluator.state(),
                        &archive.lock(),
                        round,
                        last_line_sims,
                        &lines,
                    )?;
                    last_ckpt = sims;
                    halt.note_checkpoint();
                }
            }
        }
    }
    evaluator.detach_archive();

    let outcome = driver.outcome().cloned().expect("driver completed");
    lines.push(telemetry_line(
        &id,
        round,
        driver.sims_used(),
        outcome.best_cost,
    ));
    let result = TaskResult {
        outcome,
        archive: archive.lock().clone(),
    };
    if let Some(p) = &paths {
        let done_bytes = encode_done(&result);
        let jsonl_bytes = lines.join("\n").into_bytes();
        // Durable completion first (journal rotated down to the single
        // *completed* record), then the derived files: a crash anywhere
        // in this sequence heals to the same bytes on resume.
        if let Some(journal) = &mut journal {
            journal.complete(&done_bytes, &jsonl_bytes)?;
        }
        fs::write_atomic(&p.jsonl, &jsonl_bytes)?;
        fs::write_atomic(&p.done, &done_bytes)?;
        let _ = std::fs::remove_file(&p.ckpt);
    }
    Ok(Some(result))
}

/// Executes a campaign grid on the shared worker pool (at most
/// [`CampaignConfig::threads`] tasks in flight). Returns one entry per
/// task, in task order; `None` marks tasks interrupted by
/// [`CampaignConfig::halt_after`] (resume by re-running with the same
/// directory) or never started before the halt.
pub fn run_campaign(tasks: &[CampaignTask], cfg: &CampaignConfig) -> Vec<Option<TaskResult>> {
    if let Some(dir) = &cfg.dir {
        std::fs::create_dir_all(dir).expect("campaign dir must be creatable");
        // Recovery step zero: staging files orphaned by a kill are
        // noise the directory must shed before it can byte-match a
        // clean run.
        fs::sweep_tmp(dir).expect("campaign dir must be sweepable");
    }
    let halt = HaltState::new(cfg.halt_after);
    let results: Vec<parking_lot::Mutex<Option<TaskResult>>> = tasks
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    cv_pool::WorkerPool::global().run_dynamic(tasks.len(), cfg.threads.max(1), |i| {
        if halt.halted() {
            return;
        }
        match run_task(&tasks[i], cfg, &halt) {
            Ok(result) => *results[i].lock() = result,
            Err(e) if failpoint::is_crash(&e) => {
                // An injected crash: this "process" is dead. Stop the
                // campaign exactly as a halt would; the on-disk state is
                // whatever the crash point left durable.
                halt.halted.store(true, Ordering::Relaxed);
            }
            Err(e) => panic!("campaign persistence failed for {}: {e}", tasks[i].id()),
        }
    });
    results.into_iter().map(|m| m.into_inner()).collect()
}

/// Renders the campaign summary CSV (one row per completed task, in
/// task order) — the shared artifact the `campaign` binary publishes
/// and the crash-recovery suite byte-compares across resumes.
///
/// # Panics
///
/// Panics when any task is incomplete; callers gate on completeness.
pub fn summary_csv(tasks: &[CampaignTask], results: &[Option<TaskResult>]) -> String {
    let mut csv = String::from("tech,width,method,seed,sims,best_cost,front_size\n");
    for (task, result) in tasks.iter().zip(results) {
        let r = result.as_ref().expect("campaign completed");
        let tech = match task.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        let sims = r.outcome.history.last().map_or(0, |&(s, _)| s);
        csv.push_str(&format!(
            "{tech},{},{},{},{sims},{:.9},{}\n",
            task.spec.width,
            task.method.label(),
            task.seed,
            r.outcome.best_cost,
            r.archive.len()
        ));
    }
    csv
}

/// A boxed unit of pool work (what [`run_units`] consumes).
pub type Unit<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs independent units on the shared worker pool, preserving input
/// order in the returned vector. The generic cousin of [`run_campaign`]
/// — `frontier` panels and multi-seed curve sets ride on it.
pub fn run_units<T: Send>(units: Vec<Unit<T>>, threads: usize) -> Vec<T> {
    let n = units.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return units.into_iter().map(|u| u()).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<Unit<T>>>> = units
        .into_iter()
        .map(|u| parking_lot::Mutex::new(Some(u)))
        .collect();
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    cv_pool::WorkerPool::global().run_dynamic(n, threads, |i| {
        let unit = slots[i].lock().take().expect("each unit runs once");
        *results[i].lock() = Some(unit());
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("all units completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_prefix::CircuitKind;

    fn tiny_task(method: Method, seed: u64) -> CampaignTask {
        CampaignTask {
            method,
            spec: ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 30),
            seed,
        }
    }

    #[test]
    fn task_ids_are_stable_and_filesystem_safe() {
        let t = tiny_task(Method::GaNsga2, 7);
        assert_eq!(t.id(), "nangate45_w8_gansga2_s7");
        let mut t2 = tiny_task(Method::Sa, 1);
        t2.spec.tech = TechLibrary::Scaled8nmLike;
        assert_eq!(t2.id(), "scaled8nm_w8_sa_s1");
    }

    #[test]
    fn in_memory_campaign_matches_direct_runs() {
        let tasks = vec![tiny_task(Method::Sa, 3), tiny_task(Method::Random, 4)];
        let results = run_campaign(&tasks, &CampaignConfig::in_memory(2));
        for (task, result) in tasks.iter().zip(&results) {
            let direct = crate::harness::run_method(task.method, &task.spec, task.seed);
            let got = &result.as_ref().expect("completed").outcome;
            assert_eq!(got.to_ckpt_bytes(), direct.to_ckpt_bytes());
        }
    }

    #[test]
    fn halted_campaign_resumes_to_byte_identical_outputs() {
        let base = std::env::temp_dir().join(format!("cv_campaign_test_{}", std::process::id()));
        let clean_dir = base.join("clean");
        let resumed_dir = base.join("resumed");
        let _ = std::fs::remove_dir_all(&base);
        let tasks = vec![tiny_task(Method::Sa, 9), tiny_task(Method::Ga, 9)];
        let cfg = |dir: &PathBuf, halt: Option<usize>| CampaignConfig {
            dir: Some(dir.clone()),
            checkpoint_every: 7,
            threads: 1,
            halt_after: halt,
            journal_max_bytes: JOURNAL_MAX_BYTES,
        };

        let clean = run_campaign(&tasks, &cfg(&clean_dir, None));
        assert!(clean.iter().all(Option::is_some));

        // Halt after two checkpoints (mid-first-task), then resume.
        let halted = run_campaign(&tasks, &cfg(&resumed_dir, Some(2)));
        assert!(
            halted.iter().any(Option::is_none),
            "the halt must interrupt at least one task"
        );
        let resumed = run_campaign(&tasks, &cfg(&resumed_dir, None));
        assert!(resumed.iter().all(Option::is_some));

        for (a, b) in clean.iter().zip(&resumed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.outcome.to_ckpt_bytes(), b.outcome.to_ckpt_bytes());
            assert_eq!(a.archive.to_ckpt_bytes(), b.archive.to_ckpt_bytes());
        }
        // On-disk telemetry byte-matches too.
        for task in &tasks {
            let id = task.id();
            let a = std::fs::read(clean_dir.join(format!("{id}.jsonl"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.jsonl"))).unwrap();
            assert_eq!(a, b, "telemetry for {id} must byte-match");
            let a = std::fs::read(clean_dir.join(format!("{id}.done"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.done"))).unwrap();
            assert_eq!(a, b, "results for {id} must byte-match");
            let a = std::fs::read(clean_dir.join(format!("{id}.journal"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.journal"))).unwrap();
            assert_eq!(a, b, "journals for {id} must byte-match");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn run_units_preserves_order() {
        let units: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..17usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_units(units, 4);
        assert_eq!(out, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }
}
