//! The resumable campaign orchestrator: method×seed×width×tech grids
//! executed on the process-wide [`cv_pool::WorkerPool`], with per-round
//! JSONL telemetry and on-disk checkpoints that make an interrupted
//! campaign resume bit-for-bit (Contract 8, DESIGN.md §7).
//!
//! Campaign tasks are coarse and independent (each owns its evaluator,
//! archive, and on-disk files), so they ride the pool's *dynamic*
//! assignment: scheduling balances load without influencing any result.
//!
//! Each task runs one [`MethodDriver`] on its own evaluator with a
//! logging [`ParetoArchive`] attached. Every `checkpoint_every`
//! simulations the runner atomically (tmp + rename) persists
//!
//! * `<id>.ckpt` — driver state + evaluator snapshot + archive +
//!   telemetry lines emitted so far,
//! * `<id>.jsonl` — the telemetry stream up to the checkpoint.
//!
//! On completion the runner writes `<id>.done` (outcome + archive
//! bytes), finalizes the JSONL, and removes the checkpoint. A re-run of
//! the same campaign directory skips `.done` tasks, resumes `.ckpt`
//! tasks from their snapshot, and starts the rest fresh — so after a
//! kill (or a deterministic `halt_after` stop) the final outputs
//! byte-match an uninterrupted run; the CI campaign-smoke job enforces
//! exactly that.

use crate::driver::{make_driver, MethodDriver};
use crate::harness::{build_evaluator, ExperimentSpec, Method, TechLibrary};
use circuitvae::driver::{Checkpointable, SearchDriver, StepStatus};
use cv_synth::ckpt::{CkptError, Dec, Enc};
use cv_synth::{EvaluatorState, ParetoArchive, SearchOutcome};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One unit of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignTask {
    /// The search method.
    pub method: Method,
    /// The experiment setting (width, tech, ω, budget).
    pub spec: ExperimentSpec,
    /// The method seed.
    pub seed: u64,
}

impl CampaignTask {
    /// The task's stable identifier — the stem of its on-disk files.
    pub fn id(&self) -> String {
        let tech = match self.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        format!(
            "{tech}_w{}_{}_s{}",
            self.spec.width,
            self.method.label().to_lowercase().replace('-', ""),
            self.seed
        )
    }
}

/// Campaign execution policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Where checkpoints/telemetry/results live; `None` disables
    /// persistence (pure in-memory pool run).
    pub dir: Option<PathBuf>,
    /// Simulations between checkpoints.
    pub checkpoint_every: usize,
    /// Worker threads of the persistent pool.
    pub threads: usize,
    /// Stop the whole campaign after this many checkpoint writes — the
    /// deterministic stand-in for a mid-run kill, used by the CI
    /// resume-equality smoke. `None` runs to completion.
    pub halt_after: Option<usize>,
}

impl CampaignConfig {
    /// An in-memory configuration (no persistence) with `threads`
    /// workers.
    pub fn in_memory(threads: usize) -> Self {
        CampaignConfig {
            dir: None,
            checkpoint_every: usize::MAX,
            threads,
            halt_after: None,
        }
    }
}

/// A completed task: the outcome plus the frontier its run traced.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The search outcome.
    pub outcome: SearchOutcome,
    /// The archive observed during the run.
    pub archive: ParetoArchive,
}

const DONE_MAGIC: &[u8; 8] = b"CVCPDN01";
const CKPT_MAGIC: &[u8; 8] = b"CVCPCK01";

fn write_atomic(path: &Path, bytes: &[u8]) {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).expect("campaign state must be writable");
    std::fs::rename(&tmp, path).expect("campaign state rename");
}

fn encode_done(result: &TaskResult) -> Vec<u8> {
    let mut enc = Enc::with_magic(DONE_MAGIC);
    result.outcome.write_ckpt(&mut enc);
    result.archive.write_ckpt(&mut enc);
    enc.finish()
}

fn decode_done(bytes: &[u8]) -> Result<TaskResult, CkptError> {
    let mut dec = Dec::with_magic(bytes, DONE_MAGIC)?;
    let outcome = SearchOutcome::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    dec.finish()?;
    Ok(TaskResult { outcome, archive })
}

fn encode_ckpt(
    driver: &MethodDriver,
    evaluator_state: &EvaluatorState,
    archive: &ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: &[String],
) -> Vec<u8> {
    let mut enc = Enc::with_magic(CKPT_MAGIC);
    enc.bytes(&driver.save());
    evaluator_state.write_ckpt(&mut enc);
    archive.write_ckpt(&mut enc);
    enc.usize(round);
    enc.usize(last_line_sims);
    enc.usize(lines.len());
    for l in lines {
        enc.str(l);
    }
    enc.finish()
}

struct ResumedTask {
    driver: MethodDriver,
    evaluator_state: EvaluatorState,
    archive: ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: Vec<String>,
}

fn decode_ckpt(bytes: &[u8]) -> Result<ResumedTask, CkptError> {
    let mut dec = Dec::with_magic(bytes, CKPT_MAGIC)?;
    let driver = MethodDriver::load(dec.bytes()?)?;
    let evaluator_state = EvaluatorState::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    let round = dec.usize()?;
    let last_line_sims = dec.usize()?;
    let n = dec.seq_len()?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(dec.str()?);
    }
    dec.finish()?;
    Ok(ResumedTask {
        driver,
        evaluator_state,
        archive,
        round,
        last_line_sims,
        lines,
    })
}

fn telemetry_line(task_id: &str, round: usize, sims: usize, best: f64) -> String {
    if best.is_finite() {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":{best:.9}}}"#)
    } else {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":null}}"#)
    }
}

/// Shared halt bookkeeping: counts checkpoint writes and flips the halt
/// flag once the configured limit is reached.
struct HaltState {
    checkpoints: AtomicUsize,
    halted: AtomicBool,
    limit: Option<usize>,
}

impl HaltState {
    fn new(limit: Option<usize>) -> Self {
        HaltState {
            checkpoints: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            limit,
        }
    }

    fn halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    fn note_checkpoint(&self) {
        let n = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.limit {
            if n >= limit {
                self.halted.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Runs one task to completion (or to the campaign halt), reading and
/// writing its on-disk state. Returns `None` when the task was
/// interrupted by the halt flag (its checkpoint is on disk).
fn run_task(task: &CampaignTask, cfg: &CampaignConfig, halt: &HaltState) -> Option<TaskResult> {
    let id = task.id();
    let paths = cfg.dir.as_ref().map(|d| {
        (
            d.join(format!("{id}.done")),
            d.join(format!("{id}.ckpt")),
            d.join(format!("{id}.jsonl")),
        )
    });

    // Completed on a previous run: reuse the stored result verbatim. A
    // real kill can land between the `.done` write and the checkpoint
    // removal, so sweep up any leftover `.ckpt` here — otherwise the
    // stale file would survive every later resume and the directory
    // would never byte-match a clean run.
    if let Some((done, ckpt, _)) = &paths {
        if let Ok(bytes) = std::fs::read(done) {
            let _ = std::fs::remove_file(ckpt);
            return Some(decode_done(&bytes).expect("valid .done file"));
        }
    }

    let evaluator = build_evaluator(&task.spec);
    let (mut driver, archive, mut round, mut last_line_sims, mut lines) = match &paths {
        Some((_, ckpt, _)) if ckpt.exists() => {
            let resumed =
                decode_ckpt(&std::fs::read(ckpt).expect("readable .ckpt")).expect("valid .ckpt");
            evaluator.restore_state(&resumed.evaluator_state);
            let shared = resumed.archive.into_shared();
            evaluator.attach_archive(shared.clone());
            (
                resumed.driver,
                shared,
                resumed.round,
                resumed.last_line_sims,
                resumed.lines,
            )
        }
        _ => {
            let shared = ParetoArchive::new().with_log().into_shared();
            evaluator.attach_archive(shared.clone());
            (
                make_driver(task.method, &task.spec, task.seed),
                shared,
                0,
                usize::MAX, // sentinel: force a line on the first progress
                Vec::new(),
            )
        }
    };

    let mut last_ckpt = driver.sims_used();
    loop {
        if halt.halted() {
            if let Some((_, ckpt, jsonl)) = &paths {
                let bytes = encode_ckpt(
                    &driver,
                    &evaluator.state(),
                    &archive.lock(),
                    round,
                    last_line_sims,
                    &lines,
                );
                write_atomic(ckpt, &bytes);
                write_atomic(jsonl, lines.join("\n").as_bytes());
            }
            evaluator.detach_archive();
            return None;
        }
        match driver.step(&evaluator) {
            StepStatus::Done => break,
            StepStatus::Running => {
                round += 1;
                let sims = driver.sims_used();
                // One telemetry line per round that made progress on the
                // budget axis (phase transitions and cache hits stay
                // silent, so the stream length is bounded by the budget).
                if sims != last_line_sims && sims > 0 {
                    lines.push(telemetry_line(&id, round, sims, driver.best_cost()));
                    last_line_sims = sims;
                }
                if sims - last_ckpt >= cfg.checkpoint_every {
                    if let Some((_, ckpt, jsonl)) = &paths {
                        let bytes = encode_ckpt(
                            &driver,
                            &evaluator.state(),
                            &archive.lock(),
                            round,
                            last_line_sims,
                            &lines,
                        );
                        write_atomic(ckpt, &bytes);
                        write_atomic(jsonl, lines.join("\n").as_bytes());
                    }
                    last_ckpt = sims;
                    halt.note_checkpoint();
                }
            }
        }
    }
    evaluator.detach_archive();

    let outcome = driver.outcome().cloned().expect("driver completed");
    lines.push(telemetry_line(
        &id,
        round,
        driver.sims_used(),
        outcome.best_cost,
    ));
    let result = TaskResult {
        outcome,
        archive: archive.lock().clone(),
    };
    if let Some((done, ckpt, jsonl)) = &paths {
        write_atomic(jsonl, lines.join("\n").as_bytes());
        write_atomic(done, &encode_done(&result));
        let _ = std::fs::remove_file(ckpt);
    }
    Some(result)
}

/// Executes a campaign grid on the shared worker pool (at most
/// [`CampaignConfig::threads`] tasks in flight). Returns one entry per
/// task, in task order; `None` marks tasks interrupted by
/// [`CampaignConfig::halt_after`] (resume by re-running with the same
/// directory) or never started before the halt.
pub fn run_campaign(tasks: &[CampaignTask], cfg: &CampaignConfig) -> Vec<Option<TaskResult>> {
    if let Some(dir) = &cfg.dir {
        std::fs::create_dir_all(dir).expect("campaign dir must be creatable");
    }
    let halt = HaltState::new(cfg.halt_after);
    let results: Vec<parking_lot::Mutex<Option<TaskResult>>> = tasks
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    cv_pool::WorkerPool::global().run_dynamic(tasks.len(), cfg.threads.max(1), |i| {
        if halt.halted() {
            return;
        }
        *results[i].lock() = run_task(&tasks[i], cfg, &halt);
    });
    results.into_iter().map(|m| m.into_inner()).collect()
}

/// A boxed unit of pool work (what [`run_units`] consumes).
pub type Unit<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs independent units on the shared worker pool, preserving input
/// order in the returned vector. The generic cousin of [`run_campaign`]
/// — `frontier` panels and multi-seed curve sets ride on it.
pub fn run_units<T: Send>(units: Vec<Unit<T>>, threads: usize) -> Vec<T> {
    let n = units.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return units.into_iter().map(|u| u()).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<Unit<T>>>> = units
        .into_iter()
        .map(|u| parking_lot::Mutex::new(Some(u)))
        .collect();
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    cv_pool::WorkerPool::global().run_dynamic(n, threads, |i| {
        let unit = slots[i].lock().take().expect("each unit runs once");
        *results[i].lock() = Some(unit());
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("all units completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_prefix::CircuitKind;

    fn tiny_task(method: Method, seed: u64) -> CampaignTask {
        CampaignTask {
            method,
            spec: ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 30),
            seed,
        }
    }

    #[test]
    fn task_ids_are_stable_and_filesystem_safe() {
        let t = tiny_task(Method::GaNsga2, 7);
        assert_eq!(t.id(), "nangate45_w8_gansga2_s7");
        let mut t2 = tiny_task(Method::Sa, 1);
        t2.spec.tech = TechLibrary::Scaled8nmLike;
        assert_eq!(t2.id(), "scaled8nm_w8_sa_s1");
    }

    #[test]
    fn in_memory_campaign_matches_direct_runs() {
        let tasks = vec![tiny_task(Method::Sa, 3), tiny_task(Method::Random, 4)];
        let results = run_campaign(&tasks, &CampaignConfig::in_memory(2));
        for (task, result) in tasks.iter().zip(&results) {
            let direct = crate::harness::run_method(task.method, &task.spec, task.seed);
            let got = &result.as_ref().expect("completed").outcome;
            assert_eq!(got.to_ckpt_bytes(), direct.to_ckpt_bytes());
        }
    }

    #[test]
    fn halted_campaign_resumes_to_byte_identical_outputs() {
        let base = std::env::temp_dir().join(format!("cv_campaign_test_{}", std::process::id()));
        let clean_dir = base.join("clean");
        let resumed_dir = base.join("resumed");
        let _ = std::fs::remove_dir_all(&base);
        let tasks = vec![tiny_task(Method::Sa, 9), tiny_task(Method::Ga, 9)];
        let cfg = |dir: &PathBuf, halt: Option<usize>| CampaignConfig {
            dir: Some(dir.clone()),
            checkpoint_every: 7,
            threads: 1,
            halt_after: halt,
        };

        let clean = run_campaign(&tasks, &cfg(&clean_dir, None));
        assert!(clean.iter().all(Option::is_some));

        // Halt after two checkpoints (mid-first-task), then resume.
        let halted = run_campaign(&tasks, &cfg(&resumed_dir, Some(2)));
        assert!(
            halted.iter().any(Option::is_none),
            "the halt must interrupt at least one task"
        );
        let resumed = run_campaign(&tasks, &cfg(&resumed_dir, None));
        assert!(resumed.iter().all(Option::is_some));

        for (a, b) in clean.iter().zip(&resumed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.outcome.to_ckpt_bytes(), b.outcome.to_ckpt_bytes());
            assert_eq!(a.archive.to_ckpt_bytes(), b.archive.to_ckpt_bytes());
        }
        // On-disk telemetry byte-matches too.
        for task in &tasks {
            let id = task.id();
            let a = std::fs::read(clean_dir.join(format!("{id}.jsonl"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.jsonl"))).unwrap();
            assert_eq!(a, b, "telemetry for {id} must byte-match");
            let a = std::fs::read(clean_dir.join(format!("{id}.done"))).unwrap();
            let b = std::fs::read(resumed_dir.join(format!("{id}.done"))).unwrap();
            assert_eq!(a, b, "results for {id} must byte-match");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn run_units_preserves_order() {
        let units: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..17usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_units(units, 4);
        assert_eq!(out, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }
}
