//! The `campaignd` wire protocol: line-delimited JSON over a local TCP
//! socket (DESIGN.md §10).
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses always carry `"ok": true|false`;
//! failed requests carry `"error": "<message>"` and never change daemon
//! state. The codec reuses the dependency-free JSON parser from
//! [`crate::perf`] — the protocol needs nothing beyond objects, strings
//! and numbers.

use crate::harness::{ExperimentSpec, Method, TechLibrary};
use crate::perf::{parse_json, Json};
use cv_prefix::CircuitKind;

/// A job specification — the submit payload. The job's identity
/// ([`JobSpec::id`]) is a pure function of the spec, so re-submitting
/// after a crash is idempotent.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The search method.
    pub method: Method,
    /// The prefix-circuit family.
    pub kind: CircuitKind,
    /// Circuit bitwidth.
    pub width: usize,
    /// Technology library.
    pub tech: TechLibrary,
    /// Delay weight ω of the scalarized objective.
    pub delay_weight: f64,
    /// Total simulation budget.
    pub budget: usize,
    /// Method seed.
    pub seed: u64,
}

/// The machine slug of a tech library (wire + job-id vocabulary).
pub fn tech_slug(tech: TechLibrary) -> &'static str {
    match tech {
        TechLibrary::Nangate45Like => "nangate45",
        TechLibrary::Scaled8nmLike => "scaled8nm",
    }
}

/// The machine slug of a method (wire + job-id vocabulary): the paper
/// label, lowercased, separators removed (`GA-NSGA2` → `gansga2`).
pub fn method_slug(method: Method) -> String {
    method.label().to_lowercase().replace('-', "")
}

fn parse_method(slug: &str) -> Result<Method, String> {
    for m in [
        Method::CircuitVae,
        Method::LatentBo,
        Method::Ga,
        Method::GaNsga2,
        Method::Rl,
        Method::Sa,
        Method::Random,
    ] {
        if method_slug(m) == slug {
            return Ok(m);
        }
    }
    Err(format!("unknown method `{slug}`"))
}

fn parse_tech(slug: &str) -> Result<TechLibrary, String> {
    match slug {
        "nangate45" => Ok(TechLibrary::Nangate45Like),
        "scaled8nm" => Ok(TechLibrary::Scaled8nmLike),
        other => Err(format!("unknown tech `{other}`")),
    }
}

fn parse_kind(slug: &str) -> Result<CircuitKind, String> {
    match slug {
        "adder" => Ok(CircuitKind::Adder),
        "gray2bin" => Ok(CircuitKind::GrayToBinary),
        "lzd" => Ok(CircuitKind::LeadingZero),
        other => Err(format!("unknown kind `{other}`")),
    }
}

impl JobSpec {
    /// The job's stable identity — the stem of its on-disk files and the
    /// handle every lifecycle command uses. Deterministic in the spec,
    /// so a client can re-submit blindly after a daemon restart.
    pub fn id(&self) -> String {
        format!(
            "{}_{}_w{}_{}_b{}_s{}",
            tech_slug(self.tech),
            self.kind.name(),
            self.width,
            method_slug(self.method),
            self.budget,
            self.seed
        )
    }

    /// The experiment spec this job runs (standard IO/init policy, as
    /// the campaign binaries use).
    pub fn to_spec(&self) -> ExperimentSpec {
        let mut spec =
            ExperimentSpec::standard(self.width, self.kind, self.delay_weight, self.budget);
        spec.tech = self.tech;
        spec
    }

    /// Renders the spec as the `"job"` JSON object of a submit request.
    pub fn render(&self) -> String {
        format!(
            r#"{{"method":"{}","kind":"{}","width":{},"tech":"{}","delay_weight":{},"budget":{},"seed":{}}}"#,
            method_slug(self.method),
            self.kind.name(),
            self.width,
            tech_slug(self.tech),
            self.delay_weight,
            self.budget,
            self.seed
        )
    }

    fn from_json(json: &Json) -> Result<JobSpec, String> {
        let str_field = |key: &str| -> Result<&str, String> {
            match json.get(key) {
                Some(Json::Str(s)) => Ok(s.as_str()),
                _ => Err(format!("job.{key} must be a string")),
            }
        };
        let num_field = |key: &str| -> Result<f64, String> {
            match json.get(key) {
                Some(Json::Num(n)) => Ok(*n),
                _ => Err(format!("job.{key} must be a number")),
            }
        };
        let uint_field = |key: &str| -> Result<u64, String> {
            let n = num_field(key)?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("job.{key} must be a non-negative integer"));
            }
            Ok(n as u64)
        };
        let width = uint_field("width")? as usize;
        if width < 2 {
            return Err("job.width must be at least 2".to_string());
        }
        let budget = uint_field("budget")? as usize;
        if budget == 0 {
            return Err("job.budget must be positive".to_string());
        }
        let delay_weight = match json.get("delay_weight") {
            None => 0.5,
            Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 && *n <= 1.0 => *n,
            _ => return Err("job.delay_weight must be a number in [0, 1]".to_string()),
        };
        Ok(JobSpec {
            method: parse_method(str_field("method")?)?,
            kind: parse_kind(str_field("kind")?)?,
            width,
            tech: parse_tech(str_field("tech")?)?,
            delay_weight,
            budget,
            seed: uint_field("seed")?,
        })
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job (idempotent on the derived id).
    Submit(JobSpec),
    /// Job table (all jobs, or one id).
    Status {
        /// Restrict to this job, when present.
        id: Option<String>,
    },
    /// Pause a running job (checkpointing it durably first).
    Pause {
        /// The job to pause.
        id: String,
    },
    /// Resume a paused job.
    Resume {
        /// The job to resume.
        id: String,
    },
    /// Cancel a job and remove its on-disk artifacts.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// The job's current Pareto frontier, from the live in-memory
    /// archive.
    Frontier {
        /// The job to query.
        id: String,
    },
    /// Manually restart a failed or quarantined job from its last
    /// durable checkpoint, resetting its retry budget.
    Retry {
        /// The job to retry.
        id: String,
    },
    /// Failure details (retry count, pending backoff, reason) for a
    /// failed or quarantined job.
    FailInfo {
        /// The job to query.
        id: String,
    },
    /// Liveness probe.
    Ping,
    /// Checkpoint every running job durably and stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, unknown
    /// commands, or missing/ill-typed fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = parse_json(line)?;
        let cmd = match json.get("cmd") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("request must carry a string `cmd`".to_string()),
        };
        let id = || -> Result<String, String> {
            match json.get("id") {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("`{cmd}` requires a string `id`")),
            }
        };
        match cmd.as_str() {
            "submit" => {
                let job = json.get("job").ok_or("`submit` requires a `job` object")?;
                Ok(Request::Submit(JobSpec::from_json(job)?))
            }
            "status" => Ok(Request::Status {
                id: match json.get("id") {
                    Some(Json::Str(s)) => Some(s.clone()),
                    None => None,
                    Some(_) => return Err("`status` id must be a string".to_string()),
                },
            }),
            "pause" => Ok(Request::Pause { id: id()? }),
            "resume" => Ok(Request::Resume { id: id()? }),
            "cancel" => Ok(Request::Cancel { id: id()? }),
            "frontier" => Ok(Request::Frontier { id: id()? }),
            "retry" => Ok(Request::Retry { id: id()? }),
            "fail-info" => Ok(Request::FailInfo { id: id()? }),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Submit(spec) => format!(r#"{{"cmd":"submit","job":{}}}"#, spec.render()),
            Request::Status { id: None } => r#"{"cmd":"status"}"#.to_string(),
            Request::Status { id: Some(id) } => {
                format!(r#"{{"cmd":"status","id":"{}"}}"#, escape(id))
            }
            Request::Pause { id } => format!(r#"{{"cmd":"pause","id":"{}"}}"#, escape(id)),
            Request::Resume { id } => format!(r#"{{"cmd":"resume","id":"{}"}}"#, escape(id)),
            Request::Cancel { id } => format!(r#"{{"cmd":"cancel","id":"{}"}}"#, escape(id)),
            Request::Frontier { id } => format!(r#"{{"cmd":"frontier","id":"{}"}}"#, escape(id)),
            Request::Retry { id } => format!(r#"{{"cmd":"retry","id":"{}"}}"#, escape(id)),
            Request::FailInfo { id } => format!(r#"{{"cmd":"fail-info","id":"{}"}}"#, escape(id)),
            Request::Ping => r#"{"cmd":"ping"}"#.to_string(),
            Request::Shutdown => r#"{"cmd":"shutdown"}"#.to_string(),
        }
    }
}

/// One row of a status response.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: String,
    /// Lifecycle state: `running`, `paused`, `done`, `failed`, or
    /// `quarantined`.
    pub state: &'static str,
    /// Simulations consumed so far.
    pub sims: usize,
    /// The job's total budget.
    pub budget: usize,
    /// Best scalar cost so far (`null` on the wire before the first
    /// evaluation).
    pub best: f64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success (pause/resume/cancel/ping/shutdown).
    Ok,
    /// Submit acknowledgement; `existing` flags an idempotent re-submit.
    Submitted {
        /// The derived job id.
        id: String,
        /// Whether the id was already in the table.
        existing: bool,
    },
    /// The job table (or the one requested row).
    Status {
        /// One row per job, in table order.
        jobs: Vec<JobStatus>,
    },
    /// A live frontier snapshot.
    Frontier {
        /// The queried job.
        id: String,
        /// `(area_um2, delay_ns, sims)` per non-dominated point.
        front: Vec<(f64, f64, usize)>,
    },
    /// Failure details of a failed or quarantined job.
    FailInfo {
        /// The queried job.
        id: String,
        /// `failed` or `quarantined`.
        state: &'static str,
        /// Automatic retries consumed so far.
        retries: u32,
        /// Scheduler rounds until the next automatic retry (0 when
        /// none is pending — quarantined, or already due).
        backoff_rounds: u32,
        /// Why the last attempt failed, when known.
        reason: Option<String>,
    },
    /// The request failed; daemon state is unchanged.
    Error {
        /// What went wrong.
        message: String,
    },
    /// The request failed because durable persistence is momentarily
    /// unavailable (a transient IO error); daemon state is unchanged
    /// and the same request will succeed once the brown-out clears.
    /// Carries `"transient": true` on the wire so clients can back off
    /// and retry instead of giving up.
    Transient {
        /// What went wrong.
        message: String,
    },
    /// The daemon shed this request under load; the client should back
    /// off and retry. Carries `"overloaded": true` on the wire so
    /// clients can tell shed load from a rejected request.
    Overloaded {
        /// What limit was hit.
        message: String,
    },
}

impl Response {
    /// Renders the response as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Ok => r#"{"ok":true}"#.to_string(),
            Response::Submitted { id, existing } => format!(
                r#"{{"ok":true,"id":"{}","existing":{existing}}}"#,
                escape(id)
            ),
            Response::Status { jobs } => {
                let rows: Vec<String> = jobs
                    .iter()
                    .map(|j| {
                        let best = if j.best.is_finite() {
                            format!("{:.9}", j.best)
                        } else {
                            "null".to_string()
                        };
                        format!(
                            r#"{{"id":"{}","state":"{}","sims":{},"budget":{},"best":{best}}}"#,
                            escape(&j.id),
                            j.state,
                            j.sims,
                            j.budget
                        )
                    })
                    .collect();
                format!(r#"{{"ok":true,"jobs":[{}]}}"#, rows.join(","))
            }
            Response::Frontier { id, front } => {
                let points: Vec<String> = front
                    .iter()
                    .map(|(area, delay, sims)| {
                        format!(r#"{{"area":{area:.9},"delay":{delay:.9},"sims":{sims}}}"#)
                    })
                    .collect();
                format!(
                    r#"{{"ok":true,"id":"{}","front":[{}]}}"#,
                    escape(id),
                    points.join(",")
                )
            }
            Response::FailInfo {
                id,
                state,
                retries,
                backoff_rounds,
                reason,
            } => {
                let reason = match reason {
                    Some(r) => format!("\"{}\"", escape(r)),
                    None => "null".to_string(),
                };
                format!(
                    r#"{{"ok":true,"id":"{}","state":"{state}","retries":{retries},"backoff_rounds":{backoff_rounds},"reason":{reason}}}"#,
                    escape(id)
                )
            }
            Response::Error { message } => {
                format!(r#"{{"ok":false,"error":"{}"}}"#, escape(message))
            }
            Response::Transient { message } => {
                format!(
                    r#"{{"ok":false,"transient":true,"error":"{}"}}"#,
                    escape(message)
                )
            }
            Response::Overloaded { message } => {
                format!(
                    r#"{{"ok":false,"overloaded":true,"error":"{}"}}"#,
                    escape(message)
                )
            }
        }
    }

    /// A convenience error constructor.
    pub fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            method: Method::GaNsga2,
            kind: CircuitKind::Adder,
            width: 8,
            tech: TechLibrary::Scaled8nmLike,
            delay_weight: 0.5,
            budget: 48,
            seed: 3,
        }
    }

    #[test]
    fn job_ids_are_stable() {
        assert_eq!(spec().id(), "scaled8nm_adder_w8_gansga2_b48_s3");
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(spec()),
            Request::Status { id: None },
            Request::Status {
                id: Some("x".to_string()),
            },
            Request::Pause {
                id: "a_b".to_string(),
            },
            Request::Resume {
                id: "a_b".to_string(),
            },
            Request::Cancel {
                id: "a_b".to_string(),
            },
            Request::Frontier {
                id: "a_b".to_string(),
            },
            Request::Retry {
                id: "a_b".to_string(),
            },
            Request::FailInfo {
                id: "a_b".to_string(),
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.render();
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn submit_defaults_and_rejects() {
        let req = r#"{"cmd":"submit","job":{"method":"sa","kind":"adder","width":8,"tech":"nangate45","budget":30,"seed":1}}"#;
        match Request::parse(req).unwrap() {
            Request::Submit(s) => assert_eq!(s.delay_weight, 0.5),
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            r#"{"cmd":"submit"}"#,
            r#"{"cmd":"submit","job":{"method":"nope","kind":"adder","width":8,"tech":"nangate45","budget":30,"seed":1}}"#,
            r#"{"cmd":"submit","job":{"method":"sa","kind":"adder","width":8,"tech":"nangate45","budget":0,"seed":1}}"#,
            r#"{"cmd":"pause"}"#,
            r#"{"cmd":"wat"}"#,
            "not json",
        ] {
            assert!(Request::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn responses_render_expected_shapes() {
        assert_eq!(Response::Ok.render(), r#"{"ok":true}"#);
        let line = Response::Submitted {
            id: "j".to_string(),
            existing: true,
        }
        .render();
        assert_eq!(line, r#"{"ok":true,"id":"j","existing":true}"#);
        let line = Response::Status {
            jobs: vec![JobStatus {
                id: "j".to_string(),
                state: "running",
                sims: 3,
                budget: 30,
                best: f64::INFINITY,
            }],
        }
        .render();
        assert_eq!(
            line,
            r#"{"ok":true,"jobs":[{"id":"j","state":"running","sims":3,"budget":30,"best":null}]}"#
        );
        let parsed = crate::perf::parse_json(&Response::error("boom \"x\"").render()).unwrap();
        assert_eq!(
            parsed.get("error"),
            Some(&Json::Str("boom \"x\"".to_string()))
        );
    }

    #[test]
    fn failure_responses_render_expected_shapes() {
        let line = Response::FailInfo {
            id: "j".to_string(),
            state: "failed",
            retries: 2,
            backoff_rounds: 4,
            reason: Some("panic: boom".to_string()),
        }
        .render();
        assert_eq!(
            line,
            r#"{"ok":true,"id":"j","state":"failed","retries":2,"backoff_rounds":4,"reason":"panic: boom"}"#
        );
        let line = Response::FailInfo {
            id: "j".to_string(),
            state: "quarantined",
            retries: 3,
            backoff_rounds: 0,
            reason: None,
        }
        .render();
        assert_eq!(
            line,
            r#"{"ok":true,"id":"j","state":"quarantined","retries":3,"backoff_rounds":0,"reason":null}"#
        );
        let line = Response::Overloaded {
            message: "scheduler queue full".to_string(),
        }
        .render();
        assert_eq!(
            line,
            r#"{"ok":false,"overloaded":true,"error":"scheduler queue full"}"#
        );
        let parsed = crate::perf::parse_json(&line).unwrap();
        assert_eq!(parsed.get("overloaded"), Some(&Json::Bool(true)));
        let line = Response::Transient {
            message: "disk hiccup".to_string(),
        }
        .render();
        assert_eq!(
            line,
            r#"{"ok":false,"transient":true,"error":"disk hiccup"}"#
        );
        let parsed = crate::perf::parse_json(&line).unwrap();
        assert_eq!(parsed.get("transient"), Some(&Json::Bool(true)));
    }
}
