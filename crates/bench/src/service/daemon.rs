//! The `campaignd` job table, scheduler, and service journal
//! (DESIGN.md §10, Contract 11).
//!
//! A [`Daemon`] owns a directory of durable state and a table of jobs,
//! each a `crate::persist::RunningTask` — the same step engine the
//! batch campaign drives, so per-job artifacts (`.done`/`.jsonl`/
//! rotated task journal) are byte-identical however the schedule
//! interleaves them. On top of the per-job files the daemon keeps one
//! *service journal* (`campaignd.journal`): an append-only
//! [`cv_journal::Journal`] of job-table transitions (*submitted*,
//! *paused*, *resumed*, *cancelled*, *finished*), appended **before**
//! the transition is applied or acknowledged. Restart replays the
//! journal's durable prefix, reopens every surviving job from its own
//! durable state, and compacts the journal to its canonical form — so a
//! `kill -9` at any tick resumes every in-flight job byte-identically
//! and, once drained, the directory `diff -r`-matches a never-killed
//! run (Contract 11).
//!
//! **Canonical journal form.** At startup and at every GC point (a job
//! finishing or being cancelled, or the segment outgrowing its cap) the
//! journal is rotated down to a normal form: for each live job in id
//! order, its *submitted* record, then *paused* if paused, then
//! *finished* if done; cancelled jobs vanish entirely. The normal form
//! is a pure function of the job table, which is what makes the final
//! on-disk bytes independent of the crash/restart history.
//!
//! **Scheduling.** One [`Daemon::round`] gives every running job a
//! fair slice of [`DaemonConfig::slice_steps`] driver steps, dispatched
//! onto the shared [`cv_pool::WorkerPool`] (dynamic assignment — job
//! results never depend on which worker runs a slice). The serving loop
//! interleaves rounds with command handling, so `pause`/`cancel`/
//! `frontier` take effect at step granularity.
//!
//! **Failure lifecycle (Contract 13).** A job whose driver step panics,
//! or whose durable writes fail *transiently* (anything short of an
//! injected process death), is **parked**: its poisoned in-memory
//! engine is discarded, a *failed* transition is journaled, and the
//! scheduler retries it from its last durable checkpoint after an
//! exponential, round-counted backoff (1, 2, 4, … rounds) — up to
//! [`DaemonConfig::max_retries`] automatic retries, after which the job
//! is **quarantined** until a manual `retry` (or an idempotent
//! re-submit) resets its budget. Because retries resume the job's own
//! deterministic driver/evaluator streams from durable state, a healed
//! job's artifacts are byte-identical to a never-faulted run — and a
//! fault never escapes the failing job: every other job's bytes,
//! schedule, and archives are untouched, and the daemon keeps serving.
//! Failure records are best-effort durable: losing one to the fault
//! that caused it merely replays the job as running (an immediate
//! retry). A transiently torn *service-journal* handle is discarded and
//! lazily reopened + recompacted — the in-memory table is authoritative
//! and never behind the journal's durable prefix.

use crate::campaign::CampaignTask;
use crate::persist::{
    remove_task_files, result_front, OpenedTask, RunningTask, TaskResult, TaskStep,
};
use crate::service::protocol::{JobSpec, JobStatus, Request, Response};
use cv_journal::{fs, Journal};
use cv_pool::TaskOutcome;
use cv_synth::ckpt::{CkptError, Dec, Enc};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// Daemon execution policy.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The durable state directory (created if absent).
    pub dir: PathBuf,
    /// Max workers a scheduling round may occupy.
    pub threads: usize,
    /// Simulations between periodic per-job checkpoints.
    pub checkpoint_every: usize,
    /// Driver steps per job per scheduling round.
    pub slice_steps: usize,
    /// Rotate journals (service and per-task) past this many bytes.
    pub journal_max_bytes: u64,
    /// Automatic retries a failing job gets before quarantine.
    pub max_retries: u32,
}

impl DaemonConfig {
    /// A sensible default policy rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            dir: dir.into(),
            threads: 4,
            checkpoint_every: 16,
            slice_steps: 4,
            journal_max_bytes: crate::campaign::JOURNAL_MAX_BYTES,
            max_retries: 3,
        }
    }
}

// ---------------------------------------------------------------------
// Service journal events
// ---------------------------------------------------------------------

const SJ_SUBMITTED: u8 = 1;
const SJ_PAUSED: u8 = 2;
const SJ_RESUMED: u8 = 3;
const SJ_CANCELLED: u8 = 4;
const SJ_FINISHED: u8 = 5;
const SJ_FAILED: u8 = 6;
const SJ_QUARANTINED: u8 = 7;
const SJ_RETRYING: u8 = 8;

fn method_tag(method: crate::harness::Method) -> u8 {
    use crate::harness::Method::*;
    match method {
        CircuitVae => 0,
        LatentBo => 1,
        Ga => 2,
        GaNsga2 => 3,
        Rl => 4,
        Sa => 5,
        Random => 6,
    }
}

fn method_from_tag(tag: u8) -> Result<crate::harness::Method, CkptError> {
    use crate::harness::Method::*;
    Ok(match tag {
        0 => CircuitVae,
        1 => LatentBo,
        2 => Ga,
        3 => GaNsga2,
        4 => Rl,
        5 => Sa,
        6 => Random,
        _ => return Err(CkptError::Invalid("method tag")),
    })
}

fn kind_tag(kind: cv_prefix::CircuitKind) -> u8 {
    use cv_prefix::CircuitKind::*;
    match kind {
        Adder => 0,
        GrayToBinary => 1,
        LeadingZero => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<cv_prefix::CircuitKind, CkptError> {
    use cv_prefix::CircuitKind::*;
    Ok(match tag {
        0 => Adder,
        1 => GrayToBinary,
        2 => LeadingZero,
        _ => return Err(CkptError::Invalid("kind tag")),
    })
}

fn tech_tag(tech: crate::harness::TechLibrary) -> u8 {
    match tech {
        crate::harness::TechLibrary::Nangate45Like => 0,
        crate::harness::TechLibrary::Scaled8nmLike => 1,
    }
}

fn tech_from_tag(tag: u8) -> Result<crate::harness::TechLibrary, CkptError> {
    Ok(match tag {
        0 => crate::harness::TechLibrary::Nangate45Like,
        1 => crate::harness::TechLibrary::Scaled8nmLike,
        _ => return Err(CkptError::Invalid("tech tag")),
    })
}

/// One durable job-table transition.
#[derive(Debug, Clone, PartialEq)]
enum ServiceEvent {
    Submitted(JobSpec),
    Paused(String),
    Resumed(String),
    Cancelled(String),
    Finished(String),
    Failed {
        id: String,
        retries: u32,
        sims: u64,
        reason: String,
    },
    Quarantined {
        id: String,
        retries: u32,
        sims: u64,
        reason: String,
    },
    Retrying(String),
}

impl ServiceEvent {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            ServiceEvent::Submitted(spec) => {
                enc.u8(SJ_SUBMITTED);
                enc.u8(method_tag(spec.method));
                enc.u8(kind_tag(spec.kind));
                enc.u8(tech_tag(spec.tech));
                enc.usize(spec.width);
                enc.f64(spec.delay_weight);
                enc.usize(spec.budget);
                enc.u64(spec.seed);
            }
            ServiceEvent::Paused(id) => {
                enc.u8(SJ_PAUSED);
                enc.str(id);
            }
            ServiceEvent::Resumed(id) => {
                enc.u8(SJ_RESUMED);
                enc.str(id);
            }
            ServiceEvent::Cancelled(id) => {
                enc.u8(SJ_CANCELLED);
                enc.str(id);
            }
            ServiceEvent::Finished(id) => {
                enc.u8(SJ_FINISHED);
                enc.str(id);
            }
            ServiceEvent::Failed {
                id,
                retries,
                sims,
                reason,
            } => {
                enc.u8(SJ_FAILED);
                enc.str(id);
                enc.u32(*retries);
                enc.u64(*sims);
                enc.str(reason);
            }
            ServiceEvent::Quarantined {
                id,
                retries,
                sims,
                reason,
            } => {
                enc.u8(SJ_QUARANTINED);
                enc.str(id);
                enc.u32(*retries);
                enc.u64(*sims);
                enc.str(reason);
            }
            ServiceEvent::Retrying(id) => {
                enc.u8(SJ_RETRYING);
                enc.str(id);
            }
        }
        enc.finish()
    }

    fn decode(payload: &[u8]) -> Result<ServiceEvent, CkptError> {
        let mut dec = Dec::new(payload);
        let ev = match dec.u8()? {
            SJ_SUBMITTED => ServiceEvent::Submitted(JobSpec {
                method: method_from_tag(dec.u8()?)?,
                kind: kind_from_tag(dec.u8()?)?,
                tech: tech_from_tag(dec.u8()?)?,
                width: dec.usize()?,
                delay_weight: dec.f64()?,
                budget: dec.usize()?,
                seed: dec.u64()?,
            }),
            SJ_PAUSED => ServiceEvent::Paused(dec.str()?),
            SJ_RESUMED => ServiceEvent::Resumed(dec.str()?),
            SJ_CANCELLED => ServiceEvent::Cancelled(dec.str()?),
            SJ_FINISHED => ServiceEvent::Finished(dec.str()?),
            SJ_FAILED => ServiceEvent::Failed {
                id: dec.str()?,
                retries: dec.u32()?,
                sims: dec.u64()?,
                reason: dec.str()?,
            },
            SJ_QUARANTINED => ServiceEvent::Quarantined {
                id: dec.str()?,
                retries: dec.u32()?,
                sims: dec.u64()?,
                reason: dec.str()?,
            },
            SJ_RETRYING => ServiceEvent::Retrying(dec.str()?),
            _ => return Err(CkptError::Invalid("service event tag")),
        };
        dec.finish()?;
        Ok(ev)
    }
}

/// A replayed job-table entry (pre-reopen).
#[derive(Debug)]
struct ReplayedJob {
    spec: JobSpec,
    paused: bool,
    failure: Option<ReplayedFailure>,
}

/// A replayed *failed*/*quarantined* record: the job restarts parked,
/// with its backoff recomputed from the retry count.
#[derive(Debug)]
struct ReplayedFailure {
    quarantined: bool,
    retries: u32,
    sims: u64,
    reason: String,
}

/// Replays the service journal's durable prefix into the job table it
/// described. Returns the surviving jobs (in first-submission order)
/// and the ids whose cancellation may still need its file GC re-run.
fn replay_service(records: &[Vec<u8>]) -> (Vec<(String, ReplayedJob)>, Vec<String>) {
    let mut jobs: Vec<(String, ReplayedJob)> = Vec::new();
    let mut cancelled = Vec::new();
    for record in records {
        let ev = match ServiceEvent::decode(record) {
            Ok(ev) => ev,
            // A record that fails to decode ends the trusted prefix
            // (CRC framing already screened out corruption).
            Err(_) => break,
        };
        match ev {
            ServiceEvent::Submitted(spec) => {
                let id = spec.id();
                if !jobs.iter().any(|(j, _)| *j == id) {
                    jobs.push((
                        id,
                        ReplayedJob {
                            spec,
                            paused: false,
                            failure: None,
                        },
                    ));
                }
            }
            ServiceEvent::Paused(id) => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.paused = true;
                }
            }
            ServiceEvent::Resumed(id) => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.paused = false;
                }
            }
            ServiceEvent::Cancelled(id) => {
                jobs.retain(|(j, _)| *j != id);
                cancelled.push(id);
            }
            // `finished` is advisory during replay: the job's own
            // durable files are authoritative for its result, and
            // reopening them yields `Done` regardless.
            ServiceEvent::Finished(_) => {}
            ServiceEvent::Failed {
                id,
                retries,
                sims,
                reason,
            } => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.failure = Some(ReplayedFailure {
                        quarantined: false,
                        retries,
                        sims,
                        reason,
                    });
                }
            }
            ServiceEvent::Quarantined {
                id,
                retries,
                sims,
                reason,
            } => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.failure = Some(ReplayedFailure {
                        quarantined: true,
                        retries,
                        sims,
                        reason,
                    });
                }
            }
            ServiceEvent::Retrying(id) => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.failure = None;
                }
            }
        }
    }
    (jobs, cancelled)
}

// ---------------------------------------------------------------------
// Job table
// ---------------------------------------------------------------------

/// Why a job is parked: the failure-lifecycle payload (DESIGN.md §10).
#[derive(Debug, Clone)]
struct FailureInfo {
    /// Automatic retries burned before this failure.
    retries: u32,
    /// Scheduler rounds until the next automatic retry (0 = none
    /// pending).
    backoff: u32,
    /// Simulations consumed when the job failed (best-effort: 0 if the
    /// poisoned engine could not even report it).
    sims: usize,
    /// The failure reason (panic message or IO error).
    reason: String,
}

/// The exponential, round-counted backoff before automatic retry
/// `attempt` (1-indexed): 1, 2, 4, … rounds, capped at 64. Counted in
/// scheduler rounds — not wall-clock — so recovery timing is as
/// deterministic as the schedule itself.
fn backoff_for(attempt: u32) -> u32 {
    1 << attempt.saturating_sub(1).min(6)
}

/// A job's lifecycle state.
enum JobState {
    Running(Box<RunningTask>),
    Paused(Box<RunningTask>),
    Done(TaskResult),
    /// Parked after a panic or transient persistence failure; an
    /// automatic retry is pending once the backoff drains.
    Failed(FailureInfo),
    /// Retry budget exhausted; only a manual `retry` (or idempotent
    /// re-submit) revives it.
    Quarantined(FailureInfo),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Running(_) => "running",
            JobState::Paused(_) => "paused",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Quarantined(_) => "quarantined",
        }
    }
}

/// One slot of the job table. The state sits behind a mutex so
/// scheduling rounds can step disjoint jobs from pool workers.
struct JobSlot {
    id: String,
    spec: JobSpec,
    /// Automatic retries burned so far (reset by a manual retry; after
    /// a restart, recovered from the replayed failure record).
    retries: AtomicU32,
    state: parking_lot::Mutex<JobState>,
}

/// The filename of the service journal inside the daemon directory.
pub const SERVICE_JOURNAL: &str = "campaignd.journal";

/// The `campaignd` core: a journaled, crash-replayable multi-job
/// scheduler. See the module docs for the durability contract.
pub struct Daemon {
    cfg: DaemonConfig,
    journal: Option<Journal>,
    jobs: Vec<JobSlot>,
    /// Set when a persistence failure (an injected crash in `Error`
    /// mode, or a real filesystem error) has killed the durable write
    /// path: the daemon refuses all further mutation, exactly as a dead
    /// process would.
    dead: bool,
}

impl Daemon {
    /// Opens (or creates) a daemon over `cfg.dir`, replaying the service
    /// journal: sweeps orphaned staging files, reopens every surviving
    /// job from its durable per-job state, re-runs pending cancellation
    /// GC, and compacts the journal to canonical form.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures (including injected crashes).
    pub fn open(cfg: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.dir)?;
        // Startup GC half 1: staging files orphaned by a kill.
        fs::sweep_tmp(&cfg.dir)?;

        let opened = Journal::open(&cfg.dir.join(SERVICE_JOURNAL))?;
        if opened.truncated_bytes > 0 {
            eprintln!(
                "campaignd: truncated {} bytes of torn tail from the service journal",
                opened.truncated_bytes
            );
        }
        let (replayed, cancelled) = replay_service(&opened.records);
        // Re-run cancellation GC: a crash between the durable
        // *cancelled* record and the file removal leaves artifacts the
        // replay must finish deleting (removal is idempotent).
        for id in &cancelled {
            remove_task_files(&cfg.dir, id);
        }

        let mut jobs = Vec::with_capacity(replayed.len());
        for (id, job) in replayed {
            let ReplayedJob {
                spec,
                paused,
                failure,
            } = job;
            // A replayed failure keeps the job parked (no reopen yet);
            // its backoff is recomputed from the retry count.
            let (state, retries) = match failure {
                Some(f) => {
                    let info = FailureInfo {
                        retries: f.retries,
                        backoff: if f.quarantined {
                            0
                        } else {
                            backoff_for(f.retries + 1)
                        },
                        sims: f.sims as usize,
                        reason: f.reason,
                    };
                    let retries = f.retries;
                    let state = if f.quarantined {
                        JobState::Quarantined(info)
                    } else {
                        JobState::Failed(info)
                    };
                    (state, retries)
                }
                None => (open_job(&spec, &id, &cfg, paused)?, 0),
            };
            jobs.push(JobSlot {
                id,
                spec,
                retries: AtomicU32::new(retries),
                state: parking_lot::Mutex::new(state),
            });
        }

        let mut daemon = Daemon {
            cfg,
            journal: Some(opened.journal),
            jobs,
            dead: false,
        };
        // Startup GC half 2: compact the journal to canonical form
        // (this also durably records *finished* for jobs that completed
        // right before a crash could record them).
        daemon.rotate_canonical()?;
        Ok(daemon)
    }

    /// Whether the durable write path has failed (simulated or real
    /// process death): all further mutation is refused.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether any job is currently runnable or awaiting an automatic
    /// retry (failed jobs need scheduler rounds to drain their
    /// backoff; quarantined jobs do not).
    pub fn has_running(&self) -> bool {
        self.jobs
            .iter()
            .any(|j| matches!(&*j.state.lock(), JobState::Running(_) | JobState::Failed(_)))
    }

    /// The daemon's state directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// The canonical journal records for the current job table (id
    /// order; see the module docs).
    fn canonical_records(&self) -> Vec<Vec<u8>> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| self.jobs[a].id.cmp(&self.jobs[b].id));
        let mut records = Vec::new();
        for idx in order {
            let slot = &self.jobs[idx];
            records.push(ServiceEvent::Submitted(slot.spec.clone()).encode());
            match &*slot.state.lock() {
                JobState::Running(_) => {}
                JobState::Paused(_) => {
                    records.push(ServiceEvent::Paused(slot.id.clone()).encode());
                }
                JobState::Done(_) => {
                    records.push(ServiceEvent::Finished(slot.id.clone()).encode());
                }
                JobState::Failed(info) => {
                    records.push(
                        ServiceEvent::Failed {
                            id: slot.id.clone(),
                            retries: info.retries,
                            sims: info.sims as u64,
                            reason: info.reason.clone(),
                        }
                        .encode(),
                    );
                }
                JobState::Quarantined(info) => {
                    records.push(
                        ServiceEvent::Quarantined {
                            id: slot.id.clone(),
                            retries: info.retries,
                            sims: info.sims as u64,
                            reason: info.reason.clone(),
                        }
                        .encode(),
                    );
                }
            }
        }
        records
    }

    /// Rotates the service journal down to canonical form. A `None`
    /// journal handle (discarded after a transient tear) is healed
    /// here: reopening truncates any torn tail, and the rotation
    /// rewrites the canonical form from the authoritative in-memory
    /// table. On error the handle stays `None` for the next attempt.
    fn rotate_canonical(&mut self) -> io::Result<()> {
        let journal = match self.journal.take() {
            Some(journal) => journal,
            None => Journal::open(&self.cfg.dir.join(SERVICE_JOURNAL))?.journal,
        };
        let records = self.canonical_records();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        self.journal = Some(journal.rotate(&refs)?);
        Ok(())
    }

    /// [`Daemon::rotate_canonical`], degraded: a transient rotation
    /// failure is logged and deferred (the handle stays `None`, healed
    /// on the next append) instead of failing the caller — used at GC
    /// points *after* a transition has already been applied and must be
    /// acknowledged.
    fn rotate_canonical_degraded(&mut self) -> io::Result<()> {
        match self.rotate_canonical() {
            Err(e) if cv_journal::failpoint::is_crash(&e) => {
                self.dead = true;
                Err(e)
            }
            Err(e) => {
                eprintln!(
                    "campaignd: service journal rotation failed transiently ({e}); healing deferred"
                );
                Ok(())
            }
            Ok(()) => Ok(()),
        }
    }

    /// Appends one transition event (healing a discarded journal handle
    /// first, and rotating if the segment has outgrown its cap). On a
    /// non-crash append error the handle is discarded: the tail may be
    /// torn mid-frame, and appending further through it would write
    /// records a scan can never reach.
    fn append_event(&mut self, ev: &ServiceEvent) -> io::Result<()> {
        if self.journal.is_none() {
            self.rotate_canonical()?;
        }
        let journal = self.journal.as_mut().expect("healed above");
        if journal.len() > self.cfg.journal_max_bytes {
            self.rotate_canonical()?;
        }
        let result = self
            .journal
            .as_mut()
            .expect("service journal open")
            .append(&ev.encode());
        if let Err(e) = &result {
            if !cv_journal::failpoint::is_crash(e) {
                self.journal = None;
            }
        }
        result
    }

    fn find(&self, id: &str) -> Option<usize> {
        self.jobs.iter().position(|j| j.id == id)
    }

    /// Handles one client request, journaling every state transition
    /// before applying or acknowledging it.
    ///
    /// # Errors
    ///
    /// `Err` means an injected process death killed the durable write
    /// path mid-command (the in-memory table may be behind the journal,
    /// never ahead of it); the daemon is dead from then on. Every
    /// *other* persistence failure degrades: the affected job is parked
    /// or the journal handle discarded for lazy healing, and the client
    /// sees a retryable [`Response::Error`]. Client-level failures
    /// (unknown id, spec collision, invalid transition) are `Ok` with
    /// [`Response::Error`] and change nothing.
    pub fn handle(&mut self, req: &Request) -> io::Result<Response> {
        if self.dead {
            return Ok(Response::error(
                "daemon is dead (durable write path failed)",
            ));
        }
        let result = match req {
            Request::Submit(spec) => self.submit(spec),
            Request::Status { id } => Ok(self.status(id.as_deref())),
            Request::Pause { id } => self.pause(id),
            Request::Resume { id } => self.resume(id),
            Request::Cancel { id } => self.cancel(id),
            Request::Frontier { id } => Ok(self.frontier(id)),
            Request::Retry { id } => self.retry(id),
            Request::FailInfo { id } => Ok(self.fail_info(id)),
            Request::Ping | Request::Shutdown => Ok(Response::Ok),
        };
        match result {
            Err(e) if cv_journal::failpoint::is_crash(&e) => {
                self.dead = true;
                Err(e)
            }
            Err(e) => {
                // Transient degradation before the transition applied:
                // state is unchanged (every command journals first),
                // the possibly-torn journal handle is discarded, and
                // the client may simply retry.
                self.journal = None;
                Ok(Response::Transient {
                    message: format!("transient persistence failure: {e}; retry"),
                })
            }
            ok => ok,
        }
    }

    fn submit(&mut self, spec: &JobSpec) -> io::Result<Response> {
        let id = spec.id();
        if let Some(idx) = self.find(&id) {
            if self.jobs[idx].spec != *spec {
                return Ok(Response::error(format!(
                    "job {id} exists with a different spec"
                )));
            }
            // Idempotent re-submit: the crash-retry path. For a failed
            // or quarantined job it doubles as the resubmit-to-retry
            // path (retry budget reset, like a manual `retry`).
            let parked = matches!(
                &*self.jobs[idx].state.lock(),
                JobState::Failed(_) | JobState::Quarantined(_)
            );
            if parked {
                self.retry_job(idx, true)?;
            }
            return Ok(Response::Submitted { id, existing: true });
        }
        // Journal first, then build: a crash after the append replays
        // into exactly the submit the client will retry.
        self.append_event(&ServiceEvent::Submitted(spec.clone()))?;
        let state = match open_job(spec, &id, &self.cfg, false) {
            Ok(state) => state,
            Err(e) if cv_journal::failpoint::is_crash(&e) => return Err(e),
            Err(e) => {
                // The *submitted* record is already durable; park the
                // job instead of desyncing the ack from the journal.
                JobState::Failed(FailureInfo {
                    retries: 0,
                    backoff: backoff_for(1),
                    sims: 0,
                    reason: format!("open failed: {e}"),
                })
            }
        };
        let finished = matches!(state, JobState::Done(_));
        let failed_ev = match &state {
            JobState::Failed(info) => Some(ServiceEvent::Failed {
                id: id.clone(),
                retries: 0,
                sims: 0,
                reason: info.reason.clone(),
            }),
            _ => None,
        };
        self.jobs.push(JobSlot {
            id: id.clone(),
            spec: spec.clone(),
            retries: AtomicU32::new(0),
            state: parking_lot::Mutex::new(state),
        });
        if let Some(ev) = failed_ev {
            // Best-effort: losing this record replays the job as
            // running, which just retries the open.
            match self.append_event(&ev) {
                Err(e) if cv_journal::failpoint::is_crash(&e) => return Err(e),
                Err(e) => eprintln!("campaignd: failed to journal failure of {id} ({e})"),
                Ok(()) => {}
            }
        }
        if finished {
            // The job had already completed durably under this id (a
            // pre-crash life): record it as finished right away.
            self.rotate_canonical_degraded()?;
        }
        Ok(Response::Submitted {
            id,
            existing: false,
        })
    }

    fn status(&self, id: Option<&str>) -> Response {
        let rows: Vec<JobStatus> = self
            .jobs
            .iter()
            .filter(|j| id.map_or(true, |id| j.id == id))
            .map(|j| {
                let state = j.state.lock();
                let (sims, best) = match &*state {
                    JobState::Running(rt) | JobState::Paused(rt) => {
                        (rt.sims_used(), rt.best_cost())
                    }
                    JobState::Done(r) => (
                        r.outcome.history.last().map_or(0, |&(s, _)| s),
                        r.outcome.best_cost,
                    ),
                    JobState::Failed(info) | JobState::Quarantined(info) => {
                        (info.sims, f64::INFINITY)
                    }
                };
                JobStatus {
                    id: j.id.clone(),
                    state: state.label(),
                    sims,
                    budget: j.spec.budget,
                    best,
                }
            })
            .collect();
        if id.is_some() && rows.is_empty() {
            return Response::error(format!("unknown job {}", id.unwrap_or_default()));
        }
        Response::Status { jobs: rows }
    }

    fn pause(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        {
            let mut state = self.jobs[idx].state.lock();
            match &mut *state {
                JobState::Paused(_) => return Ok(Response::Ok), // idempotent
                JobState::Done(_) => {
                    return Ok(Response::error(format!("job {id} already finished")))
                }
                JobState::Failed(_) | JobState::Quarantined(_) => {
                    return Ok(Response::error(format!(
                        "job {id} is {}; retry it first",
                        state.label()
                    )))
                }
                JobState::Running(rt) => {
                    // Persist progress before the durable transition, so
                    // a paused job survives a crash at its exact step.
                    match rt.checkpoint_now() {
                        Ok(()) => {}
                        Err(e) if cv_journal::failpoint::is_crash(&e) => return Err(e),
                        Err(e) => {
                            // The task journal may be torn: park the job
                            // (discarding the handle); a retry reopens
                            // from disk, which truncates any torn tail.
                            let sims =
                                catch_unwind(AssertUnwindSafe(|| rt.sims_used())).unwrap_or(0);
                            drop(state);
                            self.park_job(idx, sims, format!("checkpoint failed: {e}"))?;
                            return Ok(Response::error(format!(
                                "job {id} parked: transient checkpoint failure ({e})"
                            )));
                        }
                    }
                }
            }
        }
        self.append_event(&ServiceEvent::Paused(id.to_string()))?;
        let mut state = self.jobs[idx].state.lock();
        replace_with(&mut state, |s| match s {
            JobState::Running(rt) => JobState::Paused(rt),
            other => other,
        });
        Ok(Response::Ok)
    }

    fn resume(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        {
            let state = self.jobs[idx].state.lock();
            match &*state {
                JobState::Running(_) => return Ok(Response::Ok), // idempotent
                JobState::Done(_) => {
                    return Ok(Response::error(format!("job {id} already finished")))
                }
                JobState::Failed(_) | JobState::Quarantined(_) => {
                    return Ok(Response::error(format!(
                        "job {id} is {}; retry it first",
                        state.label()
                    )))
                }
                JobState::Paused(_) => {}
            }
        }
        self.append_event(&ServiceEvent::Resumed(id.to_string()))?;
        let mut state = self.jobs[idx].state.lock();
        replace_with(&mut state, |s| match s {
            JobState::Paused(rt) => JobState::Running(rt),
            other => other,
        });
        Ok(Response::Ok)
    }

    fn cancel(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        if matches!(&*self.jobs[idx].state.lock(), JobState::Done(_)) {
            return Ok(Response::error(format!(
                "job {id} already finished (results kept)"
            )));
        }
        // Durable tombstone first; the file GC below is idempotent and
        // re-run on replay if a crash interrupts it.
        self.append_event(&ServiceEvent::Cancelled(id.to_string()))?;
        let slot = self.jobs.remove(idx);
        match slot.state.into_inner() {
            JobState::Running(rt) | JobState::Paused(rt) => rt.remove_files(),
            // A parked job holds no engine; GC its files directly.
            JobState::Failed(_) | JobState::Quarantined(_) => {
                remove_task_files(&self.cfg.dir, &slot.id)
            }
            JobState::Done(_) => unreachable!("checked above"),
        }
        // GC point: drop the cancelled job's events from the journal.
        self.rotate_canonical_degraded()?;
        Ok(Response::Ok)
    }

    fn frontier(&self, id: &str) -> Response {
        let Some(idx) = self.find(id) else {
            return Response::error(format!("unknown job {id}"));
        };
        let state = self.jobs[idx].state.lock();
        let front = match &*state {
            JobState::Running(rt) | JobState::Paused(rt) => rt.front(),
            JobState::Done(result) => result_front(result),
            JobState::Failed(_) | JobState::Quarantined(_) => {
                return Response::error(format!(
                    "job {id} is {}; no live frontier (retry it first)",
                    state.label()
                ))
            }
        };
        Response::Frontier {
            id: id.to_string(),
            front,
        }
    }

    fn fail_info(&self, id: &str) -> Response {
        let Some(idx) = self.find(id) else {
            return Response::error(format!("unknown job {id}"));
        };
        let state = self.jobs[idx].state.lock();
        match &*state {
            JobState::Failed(info) | JobState::Quarantined(info) => Response::FailInfo {
                id: id.to_string(),
                state: state.label(),
                retries: info.retries,
                backoff_rounds: info.backoff,
                reason: Some(info.reason.clone()),
            },
            other => Response::error(format!("job {id} is not failed (state: {})", other.label())),
        }
    }

    fn retry(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        let parked = matches!(
            &*self.jobs[idx].state.lock(),
            JobState::Failed(_) | JobState::Quarantined(_)
        );
        if !parked {
            return Ok(Response::error(format!("job {id} is not failed")));
        }
        self.retry_job(idx, true)?;
        Ok(Response::Ok)
    }

    /// Revives a parked job from its last durable checkpoint: journals
    /// the *retrying* transition, adjusts the retry budget (`manual`
    /// resets it, an automatic retry burns one), and reopens the step
    /// engine from disk — which truncates any transiently torn task
    /// journal tail. A reopen failure parks the job again (counting
    /// toward quarantine).
    fn retry_job(&mut self, idx: usize, manual: bool) -> io::Result<()> {
        let id = self.jobs[idx].id.clone();
        let spec = self.jobs[idx].spec.clone();
        match self.append_event(&ServiceEvent::Retrying(id.clone())) {
            Err(e) if cv_journal::failpoint::is_crash(&e) => return Err(e),
            Err(e) => eprintln!("campaignd: failed to journal retry of {id} ({e})"),
            Ok(()) => {}
        }
        if manual {
            self.jobs[idx].retries.store(0, Ordering::Relaxed);
        } else {
            self.jobs[idx].retries.fetch_add(1, Ordering::Relaxed);
        }
        eprintln!("campaignd: retrying job {id} from its last durable checkpoint");
        match open_job(&spec, &id, &self.cfg, false) {
            Ok(state) => {
                let finished = matches!(state, JobState::Done(_));
                *self.jobs[idx].state.lock() = state;
                if finished {
                    self.rotate_canonical_degraded()?;
                }
            }
            Err(e) if cv_journal::failpoint::is_crash(&e) => return Err(e),
            Err(e) => self.park_job(idx, self.parked_sims(idx), format!("reopen failed: {e}"))?,
        }
        Ok(())
    }

    /// The last known sims count of a parked job (0 otherwise).
    fn parked_sims(&self, idx: usize) -> usize {
        match &*self.jobs[idx].state.lock() {
            JobState::Failed(info) | JobState::Quarantined(info) => info.sims,
            _ => 0,
        }
    }

    /// Parks job `idx` as failed — or quarantined once its retry budget
    /// is exhausted — journaling the transition (best-effort) and
    /// discarding the poisoned in-memory engine. Returns `Err` only for
    /// injected process death.
    fn park_job(&mut self, idx: usize, sims: usize, reason: String) -> io::Result<()> {
        let id = self.jobs[idx].id.clone();
        let retries = self.jobs[idx].retries.load(Ordering::Relaxed);
        let quarantined = retries >= self.cfg.max_retries;
        let info = FailureInfo {
            retries,
            backoff: if quarantined {
                0
            } else {
                backoff_for(retries + 1)
            },
            sims,
            reason,
        };
        let ev = if quarantined {
            ServiceEvent::Quarantined {
                id: id.clone(),
                retries,
                sims: sims as u64,
                reason: info.reason.clone(),
            }
        } else {
            ServiceEvent::Failed {
                id: id.clone(),
                retries,
                sims: sims as u64,
                reason: info.reason.clone(),
            }
        };
        // Best-effort durability: an injected process death propagates,
        // but a transient IO error must not stop the parking itself —
        // losing the record only means a restart replays the job as
        // running and retries immediately.
        match self.append_event(&ev) {
            Err(e) if cv_journal::failpoint::is_crash(&e) => {
                self.dead = true;
                return Err(e);
            }
            Err(e) => eprintln!("campaignd: failed to journal failure of {id} ({e})"),
            Ok(()) => {}
        }
        eprintln!(
            "campaignd: job {id} {}: {}",
            if quarantined {
                "quarantined"
            } else {
                "parked for retry"
            },
            info.reason
        );
        let mut state = self.jobs[idx].state.lock();
        if let JobState::Running(rt) | JobState::Paused(rt) = &*state {
            // Best-effort detach; a poisoned engine may panic even here.
            let _ = catch_unwind(AssertUnwindSafe(|| rt.detach()));
        }
        *state = if quarantined {
            JobState::Quarantined(info)
        } else {
            JobState::Failed(info)
        };
        Ok(())
    }

    /// Drains every failed job's backoff by one round, reviving the
    /// jobs whose backoff reaches zero.
    fn tick_retries(&mut self) -> io::Result<()> {
        for idx in 0..self.jobs.len() {
            let due = {
                let mut state = self.jobs[idx].state.lock();
                match &mut *state {
                    JobState::Failed(info) => {
                        info.backoff = info.backoff.saturating_sub(1);
                        info.backoff == 0
                    }
                    _ => false,
                }
            };
            if due {
                self.retry_job(idx, false)?;
            }
        }
        Ok(())
    }

    /// Runs one scheduling round: failed jobs drain one round of
    /// backoff (reviving the ones that reach zero), then every running
    /// job advances by up to [`DaemonConfig::slice_steps`] driver
    /// steps, dispatched onto the shared worker pool with **per-job
    /// panic isolation** — a panicking or transiently-failing job is
    /// parked (Contract 13) while every other job's slice proceeds
    /// untouched. Jobs that complete trigger the finished-job GC
    /// (journal compaction). Returns the number of jobs stepped
    /// (`0` = the daemon is idle).
    ///
    /// # Errors
    ///
    /// Only an injected process death (the daemon is dead from then
    /// on); every other failure degrades to parking.
    pub fn round(&mut self) -> io::Result<usize> {
        if self.dead {
            return Ok(0);
        }
        self.tick_retries()?;
        let running: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| matches!(&*self.jobs[i].state.lock(), JobState::Running(_)))
            .collect();
        if running.is_empty() {
            return Ok(0);
        }
        let errors: Vec<parking_lot::Mutex<Option<io::Error>>> = running
            .iter()
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        let finished = parking_lot::Mutex::new(false);
        let jobs = &self.jobs;
        let (slice_steps, checkpoint_every) =
            (self.cfg.slice_steps.max(1), self.cfg.checkpoint_every);
        let outcomes = cv_pool::WorkerPool::global().run_dynamic_isolated(
            running.len(),
            self.cfg.threads.max(1),
            |i| {
                let mut state = jobs[running[i]].state.lock();
                let JobState::Running(rt) = &mut *state else {
                    return;
                };
                for _ in 0..slice_steps {
                    match rt.step(checkpoint_every) {
                        Ok(TaskStep::Running { .. }) => {}
                        Ok(TaskStep::Done(result)) => {
                            *state = JobState::Done(*result);
                            *finished.lock() = true;
                            break;
                        }
                        Err(e) => {
                            *errors[i].lock() = Some(e);
                            break;
                        }
                    }
                }
            },
        );
        let mut errs: Vec<Option<io::Error>> = errors.into_iter().map(|m| m.into_inner()).collect();
        // Injected process death kills the daemon, exactly as before …
        for e in errs.iter_mut() {
            if e.as_ref().is_some_and(cv_journal::failpoint::is_crash) {
                self.dead = true;
                return Err(e.take().expect("checked some"));
            }
        }
        // … while panics and transient IO errors park only their job.
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let idx = running[i];
            let reason = match outcome {
                TaskOutcome::Panicked(msg) => Some(format!("panic: {msg}")),
                TaskOutcome::Completed => {
                    errs[i].take().map(|e| format!("persistence failure: {e}"))
                }
            };
            let Some(reason) = reason else { continue };
            let sims = {
                let state = self.jobs[idx].state.lock();
                match &*state {
                    JobState::Running(rt) | JobState::Paused(rt) => {
                        catch_unwind(AssertUnwindSafe(|| rt.sims_used())).unwrap_or(0)
                    }
                    _ => 0,
                }
            };
            self.park_job(idx, sims, reason)?;
        }
        if finished.into_inner() {
            // Finished-job GC: compact the journal so completed jobs
            // occupy exactly their canonical *submitted* + *finished*
            // pair — and so a fully drained table always leaves the
            // same journal bytes, crash history or not.
            self.rotate_canonical_degraded()?;
        }
        Ok(running.len())
    }

    /// Durably checkpoints every running job (the graceful-shutdown
    /// path; paused, done, and parked jobs are already durable). A
    /// transient checkpoint failure parks that job and continues with
    /// the rest.
    ///
    /// # Errors
    ///
    /// Only an injected process death (the daemon is dead from then
    /// on).
    pub fn checkpoint_all(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        for idx in 0..self.jobs.len() {
            let result = {
                let mut state = self.jobs[idx].state.lock();
                match &mut *state {
                    JobState::Running(rt) => rt
                        .checkpoint_now()
                        .map_err(|e| (e, catch_unwind(AssertUnwindSafe(|| rt.sims_used())))),
                    _ => Ok(()),
                }
            };
            match result {
                Ok(()) => {}
                Err((e, _)) if cv_journal::failpoint::is_crash(&e) => {
                    self.dead = true;
                    return Err(e);
                }
                Err((e, sims)) => {
                    self.park_job(idx, sims.unwrap_or(0), format!("checkpoint failed: {e}"))?;
                }
            }
        }
        Ok(())
    }
}

/// Swaps a job state in place through a move-transforming closure.
fn replace_with(state: &mut JobState, f: impl FnOnce(JobState) -> JobState) {
    // A placeholder result keeps the slot valid if `f` panics midway;
    // it is overwritten immediately on the normal path.
    let placeholder = JobState::Done(TaskResult {
        outcome: cv_synth::SearchOutcome {
            history: Vec::new(),
            best_cost: f64::INFINITY,
            best_grid: None,
            evaluated: Vec::new(),
        },
        archive: cv_synth::ParetoArchive::new(),
    });
    let old = std::mem::replace(state, placeholder);
    *state = f(old);
}

/// Opens (or resumes) one job's step engine from its durable per-job
/// state, classifying it into the replayed lifecycle state.
fn open_job(spec: &JobSpec, id: &str, cfg: &DaemonConfig, paused: bool) -> io::Result<JobState> {
    let task = CampaignTask {
        method: spec.method,
        spec: spec.to_spec(),
        seed: spec.seed,
    };
    Ok(
        match RunningTask::open(&task, id.to_string(), Some(&cfg.dir), cfg.journal_max_bytes)? {
            OpenedTask::Done(result) => JobState::Done(result),
            OpenedTask::Run(rt) if paused => JobState::Paused(rt),
            OpenedTask::Run(rt) => JobState::Running(rt),
        },
    )
}
