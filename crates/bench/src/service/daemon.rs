//! The `campaignd` job table, scheduler, and service journal
//! (DESIGN.md §10, Contract 11).
//!
//! A [`Daemon`] owns a directory of durable state and a table of jobs,
//! each a `crate::persist::RunningTask` — the same step engine the
//! batch campaign drives, so per-job artifacts (`.done`/`.jsonl`/
//! rotated task journal) are byte-identical however the schedule
//! interleaves them. On top of the per-job files the daemon keeps one
//! *service journal* (`campaignd.journal`): an append-only
//! [`cv_journal::Journal`] of job-table transitions (*submitted*,
//! *paused*, *resumed*, *cancelled*, *finished*), appended **before**
//! the transition is applied or acknowledged. Restart replays the
//! journal's durable prefix, reopens every surviving job from its own
//! durable state, and compacts the journal to its canonical form — so a
//! `kill -9` at any tick resumes every in-flight job byte-identically
//! and, once drained, the directory `diff -r`-matches a never-killed
//! run (Contract 11).
//!
//! **Canonical journal form.** At startup and at every GC point (a job
//! finishing or being cancelled, or the segment outgrowing its cap) the
//! journal is rotated down to a normal form: for each live job in id
//! order, its *submitted* record, then *paused* if paused, then
//! *finished* if done; cancelled jobs vanish entirely. The normal form
//! is a pure function of the job table, which is what makes the final
//! on-disk bytes independent of the crash/restart history.
//!
//! **Scheduling.** One [`Daemon::round`] gives every running job a
//! fair slice of [`DaemonConfig::slice_steps`] driver steps, dispatched
//! onto the shared [`cv_pool::WorkerPool`] (dynamic assignment — job
//! results never depend on which worker runs a slice). The serving loop
//! interleaves rounds with command handling, so `pause`/`cancel`/
//! `frontier` take effect at step granularity.

use crate::campaign::CampaignTask;
use crate::persist::{
    remove_task_files, result_front, OpenedTask, RunningTask, TaskResult, TaskStep,
};
use crate::service::protocol::{JobSpec, JobStatus, Request, Response};
use cv_journal::{fs, Journal};
use cv_synth::ckpt::{CkptError, Dec, Enc};
use std::io;
use std::path::{Path, PathBuf};

/// Daemon execution policy.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The durable state directory (created if absent).
    pub dir: PathBuf,
    /// Max workers a scheduling round may occupy.
    pub threads: usize,
    /// Simulations between periodic per-job checkpoints.
    pub checkpoint_every: usize,
    /// Driver steps per job per scheduling round.
    pub slice_steps: usize,
    /// Rotate journals (service and per-task) past this many bytes.
    pub journal_max_bytes: u64,
}

impl DaemonConfig {
    /// A sensible default policy rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            dir: dir.into(),
            threads: 4,
            checkpoint_every: 16,
            slice_steps: 4,
            journal_max_bytes: crate::campaign::JOURNAL_MAX_BYTES,
        }
    }
}

// ---------------------------------------------------------------------
// Service journal events
// ---------------------------------------------------------------------

const SJ_SUBMITTED: u8 = 1;
const SJ_PAUSED: u8 = 2;
const SJ_RESUMED: u8 = 3;
const SJ_CANCELLED: u8 = 4;
const SJ_FINISHED: u8 = 5;

fn method_tag(method: crate::harness::Method) -> u8 {
    use crate::harness::Method::*;
    match method {
        CircuitVae => 0,
        LatentBo => 1,
        Ga => 2,
        GaNsga2 => 3,
        Rl => 4,
        Sa => 5,
        Random => 6,
    }
}

fn method_from_tag(tag: u8) -> Result<crate::harness::Method, CkptError> {
    use crate::harness::Method::*;
    Ok(match tag {
        0 => CircuitVae,
        1 => LatentBo,
        2 => Ga,
        3 => GaNsga2,
        4 => Rl,
        5 => Sa,
        6 => Random,
        _ => return Err(CkptError::Invalid("method tag")),
    })
}

fn kind_tag(kind: cv_prefix::CircuitKind) -> u8 {
    use cv_prefix::CircuitKind::*;
    match kind {
        Adder => 0,
        GrayToBinary => 1,
        LeadingZero => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<cv_prefix::CircuitKind, CkptError> {
    use cv_prefix::CircuitKind::*;
    Ok(match tag {
        0 => Adder,
        1 => GrayToBinary,
        2 => LeadingZero,
        _ => return Err(CkptError::Invalid("kind tag")),
    })
}

fn tech_tag(tech: crate::harness::TechLibrary) -> u8 {
    match tech {
        crate::harness::TechLibrary::Nangate45Like => 0,
        crate::harness::TechLibrary::Scaled8nmLike => 1,
    }
}

fn tech_from_tag(tag: u8) -> Result<crate::harness::TechLibrary, CkptError> {
    Ok(match tag {
        0 => crate::harness::TechLibrary::Nangate45Like,
        1 => crate::harness::TechLibrary::Scaled8nmLike,
        _ => return Err(CkptError::Invalid("tech tag")),
    })
}

/// One durable job-table transition.
#[derive(Debug, Clone, PartialEq)]
enum ServiceEvent {
    Submitted(JobSpec),
    Paused(String),
    Resumed(String),
    Cancelled(String),
    Finished(String),
}

impl ServiceEvent {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            ServiceEvent::Submitted(spec) => {
                enc.u8(SJ_SUBMITTED);
                enc.u8(method_tag(spec.method));
                enc.u8(kind_tag(spec.kind));
                enc.u8(tech_tag(spec.tech));
                enc.usize(spec.width);
                enc.f64(spec.delay_weight);
                enc.usize(spec.budget);
                enc.u64(spec.seed);
            }
            ServiceEvent::Paused(id) => {
                enc.u8(SJ_PAUSED);
                enc.str(id);
            }
            ServiceEvent::Resumed(id) => {
                enc.u8(SJ_RESUMED);
                enc.str(id);
            }
            ServiceEvent::Cancelled(id) => {
                enc.u8(SJ_CANCELLED);
                enc.str(id);
            }
            ServiceEvent::Finished(id) => {
                enc.u8(SJ_FINISHED);
                enc.str(id);
            }
        }
        enc.finish()
    }

    fn decode(payload: &[u8]) -> Result<ServiceEvent, CkptError> {
        let mut dec = Dec::new(payload);
        let ev = match dec.u8()? {
            SJ_SUBMITTED => ServiceEvent::Submitted(JobSpec {
                method: method_from_tag(dec.u8()?)?,
                kind: kind_from_tag(dec.u8()?)?,
                tech: tech_from_tag(dec.u8()?)?,
                width: dec.usize()?,
                delay_weight: dec.f64()?,
                budget: dec.usize()?,
                seed: dec.u64()?,
            }),
            SJ_PAUSED => ServiceEvent::Paused(dec.str()?),
            SJ_RESUMED => ServiceEvent::Resumed(dec.str()?),
            SJ_CANCELLED => ServiceEvent::Cancelled(dec.str()?),
            SJ_FINISHED => ServiceEvent::Finished(dec.str()?),
            _ => return Err(CkptError::Invalid("service event tag")),
        };
        dec.finish()?;
        Ok(ev)
    }
}

/// A replayed job-table entry (pre-reopen).
#[derive(Debug)]
struct ReplayedJob {
    spec: JobSpec,
    paused: bool,
}

/// Replays the service journal's durable prefix into the job table it
/// described. Returns the surviving jobs (in first-submission order)
/// and the ids whose cancellation may still need its file GC re-run.
fn replay_service(records: &[Vec<u8>]) -> (Vec<(String, ReplayedJob)>, Vec<String>) {
    let mut jobs: Vec<(String, ReplayedJob)> = Vec::new();
    let mut cancelled = Vec::new();
    for record in records {
        let ev = match ServiceEvent::decode(record) {
            Ok(ev) => ev,
            // A record that fails to decode ends the trusted prefix
            // (CRC framing already screened out corruption).
            Err(_) => break,
        };
        match ev {
            ServiceEvent::Submitted(spec) => {
                let id = spec.id();
                if !jobs.iter().any(|(j, _)| *j == id) {
                    jobs.push((
                        id,
                        ReplayedJob {
                            spec,
                            paused: false,
                        },
                    ));
                }
            }
            ServiceEvent::Paused(id) => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.paused = true;
                }
            }
            ServiceEvent::Resumed(id) => {
                if let Some((_, job)) = jobs.iter_mut().find(|(j, _)| *j == id) {
                    job.paused = false;
                }
            }
            ServiceEvent::Cancelled(id) => {
                jobs.retain(|(j, _)| *j != id);
                cancelled.push(id);
            }
            // `finished` is advisory during replay: the job's own
            // durable files are authoritative for its result, and
            // reopening them yields `Done` regardless.
            ServiceEvent::Finished(_) => {}
        }
    }
    (jobs, cancelled)
}

// ---------------------------------------------------------------------
// Job table
// ---------------------------------------------------------------------

/// A job's lifecycle state.
enum JobState {
    Running(Box<RunningTask>),
    Paused(Box<RunningTask>),
    Done(TaskResult),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Running(_) => "running",
            JobState::Paused(_) => "paused",
            JobState::Done(_) => "done",
        }
    }
}

/// One slot of the job table. The state sits behind a mutex so
/// scheduling rounds can step disjoint jobs from pool workers.
struct JobSlot {
    id: String,
    spec: JobSpec,
    state: parking_lot::Mutex<JobState>,
}

/// The filename of the service journal inside the daemon directory.
pub const SERVICE_JOURNAL: &str = "campaignd.journal";

/// The `campaignd` core: a journaled, crash-replayable multi-job
/// scheduler. See the module docs for the durability contract.
pub struct Daemon {
    cfg: DaemonConfig,
    journal: Option<Journal>,
    jobs: Vec<JobSlot>,
    /// Set when a persistence failure (an injected crash in `Error`
    /// mode, or a real filesystem error) has killed the durable write
    /// path: the daemon refuses all further mutation, exactly as a dead
    /// process would.
    dead: bool,
}

impl Daemon {
    /// Opens (or creates) a daemon over `cfg.dir`, replaying the service
    /// journal: sweeps orphaned staging files, reopens every surviving
    /// job from its durable per-job state, re-runs pending cancellation
    /// GC, and compacts the journal to canonical form.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures (including injected crashes).
    pub fn open(cfg: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.dir)?;
        // Startup GC half 1: staging files orphaned by a kill.
        fs::sweep_tmp(&cfg.dir)?;

        let opened = Journal::open(&cfg.dir.join(SERVICE_JOURNAL))?;
        if opened.truncated_bytes > 0 {
            eprintln!(
                "campaignd: truncated {} bytes of torn tail from the service journal",
                opened.truncated_bytes
            );
        }
        let (replayed, cancelled) = replay_service(&opened.records);
        // Re-run cancellation GC: a crash between the durable
        // *cancelled* record and the file removal leaves artifacts the
        // replay must finish deleting (removal is idempotent).
        for id in &cancelled {
            remove_task_files(&cfg.dir, id);
        }

        let mut jobs = Vec::with_capacity(replayed.len());
        for (id, job) in replayed {
            let state = open_job(&job.spec, &id, &cfg, job.paused)?;
            jobs.push(JobSlot {
                id,
                spec: job.spec,
                state: parking_lot::Mutex::new(state),
            });
        }

        let mut daemon = Daemon {
            cfg,
            journal: Some(opened.journal),
            jobs,
            dead: false,
        };
        // Startup GC half 2: compact the journal to canonical form
        // (this also durably records *finished* for jobs that completed
        // right before a crash could record them).
        daemon.rotate_canonical()?;
        Ok(daemon)
    }

    /// Whether the durable write path has failed (simulated or real
    /// process death): all further mutation is refused.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether any job is currently runnable.
    pub fn has_running(&self) -> bool {
        self.jobs
            .iter()
            .any(|j| matches!(&*j.state.lock(), JobState::Running(_)))
    }

    /// The daemon's state directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// The canonical journal records for the current job table (id
    /// order; see the module docs).
    fn canonical_records(&self) -> Vec<Vec<u8>> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| self.jobs[a].id.cmp(&self.jobs[b].id));
        let mut records = Vec::new();
        for idx in order {
            let slot = &self.jobs[idx];
            records.push(ServiceEvent::Submitted(slot.spec.clone()).encode());
            match &*slot.state.lock() {
                JobState::Running(_) => {}
                JobState::Paused(_) => {
                    records.push(ServiceEvent::Paused(slot.id.clone()).encode());
                }
                JobState::Done(_) => {
                    records.push(ServiceEvent::Finished(slot.id.clone()).encode());
                }
            }
        }
        records
    }

    /// Rotates the service journal down to canonical form.
    fn rotate_canonical(&mut self) -> io::Result<()> {
        let records = self.canonical_records();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        let journal = self.journal.take().expect("service journal open");
        self.journal = Some(journal.rotate(&refs)?);
        Ok(())
    }

    /// Appends one transition event (rotating first if the segment has
    /// outgrown its cap).
    fn append_event(&mut self, ev: &ServiceEvent) -> io::Result<()> {
        let journal = self.journal.as_mut().expect("service journal open");
        if journal.len() > self.cfg.journal_max_bytes {
            self.rotate_canonical()?;
        }
        self.journal
            .as_mut()
            .expect("service journal open")
            .append(&ev.encode())
    }

    fn find(&self, id: &str) -> Option<usize> {
        self.jobs.iter().position(|j| j.id == id)
    }

    /// Handles one client request, journaling every state transition
    /// before applying or acknowledging it.
    ///
    /// # Errors
    ///
    /// `Err` means the durable write path failed mid-command (the
    /// in-memory table may be behind the journal, never ahead of it);
    /// the daemon is dead from then on. Client-level failures (unknown
    /// id, spec collision, invalid transition) are `Ok` with
    /// [`Response::Error`] and change nothing.
    pub fn handle(&mut self, req: &Request) -> io::Result<Response> {
        if self.dead {
            return Ok(Response::error(
                "daemon is dead (durable write path failed)",
            ));
        }
        let result = match req {
            Request::Submit(spec) => self.submit(spec),
            Request::Status { id } => Ok(self.status(id.as_deref())),
            Request::Pause { id } => self.pause(id),
            Request::Resume { id } => self.resume(id),
            Request::Cancel { id } => self.cancel(id),
            Request::Frontier { id } => Ok(self.frontier(id)),
            Request::Ping | Request::Shutdown => Ok(Response::Ok),
        };
        if let Err(e) = &result {
            if cv_journal::failpoint::is_crash(e) {
                self.dead = true;
            }
        }
        result
    }

    fn submit(&mut self, spec: &JobSpec) -> io::Result<Response> {
        let id = spec.id();
        if let Some(idx) = self.find(&id) {
            return Ok(if self.jobs[idx].spec == *spec {
                // Idempotent re-submit: the crash-retry path.
                Response::Submitted { id, existing: true }
            } else {
                Response::error(format!("job {id} exists with a different spec"))
            });
        }
        // Journal first, then build: a crash after the append replays
        // into exactly the submit the client will retry.
        self.append_event(&ServiceEvent::Submitted(spec.clone()))?;
        let state = open_job(spec, &id, &self.cfg, false)?;
        let finished = matches!(state, JobState::Done(_));
        self.jobs.push(JobSlot {
            id: id.clone(),
            spec: spec.clone(),
            state: parking_lot::Mutex::new(state),
        });
        if finished {
            // The job had already completed durably under this id (a
            // pre-crash life): record it as finished right away.
            self.rotate_canonical()?;
        }
        Ok(Response::Submitted {
            id,
            existing: false,
        })
    }

    fn status(&self, id: Option<&str>) -> Response {
        let rows: Vec<JobStatus> = self
            .jobs
            .iter()
            .filter(|j| id.map_or(true, |id| j.id == id))
            .map(|j| {
                let state = j.state.lock();
                let (sims, best) = match &*state {
                    JobState::Running(rt) | JobState::Paused(rt) => {
                        (rt.sims_used(), rt.best_cost())
                    }
                    JobState::Done(r) => (
                        r.outcome.history.last().map_or(0, |&(s, _)| s),
                        r.outcome.best_cost,
                    ),
                };
                JobStatus {
                    id: j.id.clone(),
                    state: state.label(),
                    sims,
                    budget: j.spec.budget,
                    best,
                }
            })
            .collect();
        if id.is_some() && rows.is_empty() {
            return Response::error(format!("unknown job {}", id.unwrap_or_default()));
        }
        Response::Status { jobs: rows }
    }

    fn pause(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        {
            let mut state = self.jobs[idx].state.lock();
            match &mut *state {
                JobState::Paused(_) => return Ok(Response::Ok), // idempotent
                JobState::Done(_) => {
                    return Ok(Response::error(format!("job {id} already finished")))
                }
                JobState::Running(rt) => {
                    // Persist progress before the durable transition, so
                    // a paused job survives a crash at its exact step.
                    rt.checkpoint_now()?;
                }
            }
        }
        self.append_event(&ServiceEvent::Paused(id.to_string()))?;
        let mut state = self.jobs[idx].state.lock();
        replace_with(&mut state, |s| match s {
            JobState::Running(rt) => JobState::Paused(rt),
            other => other,
        });
        Ok(Response::Ok)
    }

    fn resume(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        match &*self.jobs[idx].state.lock() {
            JobState::Running(_) => return Ok(Response::Ok), // idempotent
            JobState::Done(_) => return Ok(Response::error(format!("job {id} already finished"))),
            JobState::Paused(_) => {}
        }
        self.append_event(&ServiceEvent::Resumed(id.to_string()))?;
        let mut state = self.jobs[idx].state.lock();
        replace_with(&mut state, |s| match s {
            JobState::Paused(rt) => JobState::Running(rt),
            other => other,
        });
        Ok(Response::Ok)
    }

    fn cancel(&mut self, id: &str) -> io::Result<Response> {
        let Some(idx) = self.find(id) else {
            return Ok(Response::error(format!("unknown job {id}")));
        };
        if matches!(&*self.jobs[idx].state.lock(), JobState::Done(_)) {
            return Ok(Response::error(format!(
                "job {id} already finished (results kept)"
            )));
        }
        // Durable tombstone first; the file GC below is idempotent and
        // re-run on replay if a crash interrupts it.
        self.append_event(&ServiceEvent::Cancelled(id.to_string()))?;
        let slot = self.jobs.remove(idx);
        match slot.state.into_inner() {
            JobState::Running(rt) | JobState::Paused(rt) => rt.remove_files(),
            JobState::Done(_) => unreachable!("checked above"),
        }
        // GC point: drop the cancelled job's events from the journal.
        self.rotate_canonical()?;
        Ok(Response::Ok)
    }

    fn frontier(&self, id: &str) -> Response {
        let Some(idx) = self.find(id) else {
            return Response::error(format!("unknown job {id}"));
        };
        let front = match &*self.jobs[idx].state.lock() {
            JobState::Running(rt) | JobState::Paused(rt) => rt.front(),
            JobState::Done(result) => result_front(result),
        };
        Response::Frontier {
            id: id.to_string(),
            front,
        }
    }

    /// Runs one scheduling round: every running job advances by up to
    /// [`DaemonConfig::slice_steps`] driver steps, dispatched onto the
    /// shared worker pool. Jobs that complete trigger the finished-job
    /// GC (journal compaction). Returns the number of jobs stepped
    /// (`0` = the daemon is idle).
    ///
    /// # Errors
    ///
    /// The first persistence failure of the round (the daemon is dead
    /// from then on).
    pub fn round(&mut self) -> io::Result<usize> {
        if self.dead {
            return Ok(0);
        }
        let running: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| matches!(&*self.jobs[i].state.lock(), JobState::Running(_)))
            .collect();
        if running.is_empty() {
            return Ok(0);
        }
        let errors: Vec<parking_lot::Mutex<Option<io::Error>>> = running
            .iter()
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        let finished = parking_lot::Mutex::new(false);
        let jobs = &self.jobs;
        let (slice_steps, checkpoint_every) =
            (self.cfg.slice_steps.max(1), self.cfg.checkpoint_every);
        cv_pool::WorkerPool::global().run_dynamic(running.len(), self.cfg.threads.max(1), |i| {
            let mut state = jobs[running[i]].state.lock();
            let JobState::Running(rt) = &mut *state else {
                return;
            };
            for _ in 0..slice_steps {
                match rt.step(checkpoint_every) {
                    Ok(TaskStep::Running { .. }) => {}
                    Ok(TaskStep::Done(result)) => {
                        *state = JobState::Done(*result);
                        *finished.lock() = true;
                        break;
                    }
                    Err(e) => {
                        *errors[i].lock() = Some(e);
                        break;
                    }
                }
            }
        });
        if let Some(e) = errors.into_iter().find_map(|m| m.into_inner()) {
            self.dead = true;
            return Err(e);
        }
        if finished.into_inner() {
            // Finished-job GC: compact the journal so completed jobs
            // occupy exactly their canonical *submitted* + *finished*
            // pair — and so a fully drained table always leaves the
            // same journal bytes, crash history or not.
            self.rotate_canonical()?;
        }
        Ok(running.len())
    }

    /// Durably checkpoints every running job (the graceful-shutdown
    /// path; paused and done jobs are already durable).
    ///
    /// # Errors
    ///
    /// Propagates persistence failures (the daemon is dead from then
    /// on).
    pub fn checkpoint_all(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        for slot in &self.jobs {
            let mut state = slot.state.lock();
            if let JobState::Running(rt) = &mut *state {
                if let Err(e) = rt.checkpoint_now() {
                    self.dead = true;
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

/// Swaps a job state in place through a move-transforming closure.
fn replace_with(state: &mut JobState, f: impl FnOnce(JobState) -> JobState) {
    // A placeholder result keeps the slot valid if `f` panics midway;
    // it is overwritten immediately on the normal path.
    let placeholder = JobState::Done(TaskResult {
        outcome: cv_synth::SearchOutcome {
            history: Vec::new(),
            best_cost: f64::INFINITY,
            best_grid: None,
            evaluated: Vec::new(),
        },
        archive: cv_synth::ParetoArchive::new(),
    });
    let old = std::mem::replace(state, placeholder);
    *state = f(old);
}

/// Opens (or resumes) one job's step engine from its durable per-job
/// state, classifying it into the replayed lifecycle state.
fn open_job(spec: &JobSpec, id: &str, cfg: &DaemonConfig, paused: bool) -> io::Result<JobState> {
    let task = CampaignTask {
        method: spec.method,
        spec: spec.to_spec(),
        seed: spec.seed,
    };
    Ok(
        match RunningTask::open(&task, id.to_string(), Some(&cfg.dir), cfg.journal_max_bytes)? {
            OpenedTask::Done(result) => JobState::Done(result),
            OpenedTask::Run(rt) if paused => JobState::Paused(rt),
            OpenedTask::Run(rt) => JobState::Running(rt),
        },
    )
}
