//! The `campaignd` TCP front end: line-delimited JSON over a local
//! socket (DESIGN.md §10).
//!
//! Threading model: one accept thread plus one lightweight handler
//! thread per connection; a single scheduler loop (the caller's thread)
//! owns the [`Daemon`] and alternates between draining queued commands
//! and running scheduling rounds, so commands take effect at driver-step
//! granularity and job state never needs cross-thread sharing beyond
//! the per-slot locks the rounds already use.
//!
//! **Ingress hardening.** Every connection gets read/write timeouts and
//! a request-line length cap; the accept path enforces a connection
//! limit, and the scheduler queue is bounded — load beyond any of these
//! limits is *shed* with a structured `overloaded` error (or a clean
//! close) instead of stalling the accept loop or growing without bound
//! ([`ServeOptions`]). Socket-level failures (reset mid-line, EOF
//! mid-request, a timed-out read) close only that connection, with the
//! reason logged; the daemon and every other connection keep going.

use crate::service::daemon::Daemon;
use crate::service::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle scheduler blocks waiting for a command before
/// polling again.
const IDLE_WAIT: Duration = Duration::from_millis(25);

/// Ingress limits and timeouts — the overload-protection policy.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-connection read timeout: a client that goes silent mid-line
    /// for longer than this is disconnected.
    pub read_timeout: Duration,
    /// Per-connection write timeout: a client that stops draining its
    /// responses is disconnected.
    pub write_timeout: Duration,
    /// Longest accepted request line in bytes; longer lines get an
    /// error response and the connection is closed.
    pub max_line_bytes: usize,
    /// Concurrent connection limit; further connects are told
    /// `overloaded` and closed without a handler thread.
    pub max_connections: usize,
    /// Bound on commands queued toward the scheduler; requests beyond
    /// it are shed with an `overloaded` error.
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            max_connections: 64,
            queue_depth: 128,
        }
    }
}

/// Live connection count across every server in this process — lets
/// tests prove torn or shed connections do not leak handler threads.
static ACTIVE_CONNS: AtomicUsize = AtomicUsize::new(0);

/// The number of currently open connection handlers (process-wide).
pub fn active_connections() -> usize {
    ACTIVE_CONNS.load(Ordering::SeqCst)
}

/// Decrements the live-connection gauge when a handler exits, however
/// it exits.
struct ConnGuard;

impl ConnGuard {
    fn enter() -> ConnGuard {
        ACTIVE_CONNS.fetch_add(1, Ordering::SeqCst);
        ConnGuard
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        ACTIVE_CONNS.fetch_sub(1, Ordering::SeqCst);
    }
}

type Command = (Request, Sender<String>);

/// Serves `daemon` on `addr` with the default [`ServeOptions`]. See
/// [`serve_with`].
///
/// # Errors
///
/// As [`serve_with`].
pub fn serve(daemon: Daemon, addr: &str, port_file: Option<&Path>) -> io::Result<()> {
    serve_with(daemon, addr, port_file, ServeOptions::default())
}

/// Serves `daemon` on `addr` (e.g. `127.0.0.1:0`) until a client sends
/// `shutdown`. When `port_file` is given, the bound port is written
/// there once the listener is live — the rendezvous the CLI client and
/// the CI smoke script use with ephemeral ports.
///
/// Shutdown is graceful: every running job is checkpointed durably
/// before the `shutdown` acknowledgement is sent, so a restart resumes
/// where serving stopped.
///
/// # Errors
///
/// Binding/IO failures on the listener (including a failed accept-
/// thread spawn), or a daemon persistence failure (the daemon refuses
/// further work once its durable write path fails).
pub fn serve_with(
    mut daemon: Daemon,
    addr: &str,
    port_file: Option<&Path>,
    opts: ServeOptions,
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    if let Some(pf) = port_file {
        // Coordination state, not durable campaign state: a plain write
        // keeps it off the audited (fault-injected) path.
        std::fs::write(pf, format!("{}\n", local.port()))?;
    }
    eprintln!("campaignd: listening on {local}");

    let stop = Arc::new(AtomicBool::new(false));
    let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Command>(opts.queue_depth.max(1));
    let accept = {
        let stop = Arc::clone(&stop);
        let opts = opts.clone();
        std::thread::Builder::new()
            .name("campaignd-accept".to_string())
            .spawn(move || accept_loop(listener, cmd_tx, stop, opts))
            .map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("campaignd: cannot spawn accept thread: {e}"),
                )
            })?
    };

    let result = scheduler_loop(&mut daemon, &cmd_rx);
    // Unblock the accept thread (it is parked in `accept`) and reap it.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    let _ = accept.join();
    result
}

fn accept_loop(
    listener: TcpListener,
    cmd_tx: SyncSender<Command>,
    stop: Arc<AtomicBool>,
    opts: ServeOptions,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active_connections() >= opts.max_connections {
            // Shed the connection without a handler thread: tell the
            // client why (bounded by the write timeout so a slow client
            // cannot stall the accept loop) and close.
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(opts.write_timeout));
            let reply = Response::Overloaded {
                message: format!("connection limit ({}) reached", opts.max_connections),
            }
            .render();
            let _ = stream.write_all(reply.as_bytes());
            let _ = stream.write_all(b"\n");
            continue;
        }
        let cmd_tx = cmd_tx.clone();
        let opts = opts.clone();
        let guard = ConnGuard::enter();
        let spawned = std::thread::Builder::new()
            .name("campaignd-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                connection_loop(stream, cmd_tx, &opts);
            });
        if let Err(e) = spawned {
            // Thread exhaustion is load shedding too: log and move on;
            // the guard moved into the closure only on success, so the
            // gauge self-corrects either way.
            eprintln!("campaignd: cannot spawn connection thread: {e}");
        }
    }
}

/// One capped request-line read.
enum LineRead {
    /// A complete line (without the terminator), within the cap.
    Line(String),
    /// The line outgrew the cap before its terminator arrived.
    TooLong,
    /// Clean end of stream at a line boundary.
    Closed,
    /// The peer vanished mid-request (EOF between terminators).
    TornRequest,
    /// A socket error or read timeout.
    Failed(io::Error),
}

/// Reads one `\n`-terminated line of at most `cap` bytes. Never buffers
/// more than `cap +` one BufReader block, no matter what the peer
/// sends.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if line.is_empty() {
                    LineRead::Closed
                } else {
                    LineRead::TornRequest
                }
            }
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return LineRead::Failed(e),
        };
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if line.len() > cap {
                return LineRead::TooLong;
            }
            // Invalid UTF-8 is malformed input, not a socket failure:
            // lossily decode and let the request parser reject it.
            return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
        }
        let n = chunk.len();
        line.extend_from_slice(chunk);
        reader.consume(n);
        if line.len() > cap {
            return LineRead::TooLong;
        }
    }
}

fn connection_loop(stream: TcpStream, cmd_tx: SyncSender<Command>, opts: &ServeOptions) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string());
    if stream.set_read_timeout(Some(opts.read_timeout)).is_err()
        || stream.set_write_timeout(Some(opts.write_timeout)).is_err()
    {
        eprintln!("campaignd: closing {peer}: cannot set socket timeouts");
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        eprintln!("campaignd: closing {peer}: cannot clone stream");
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        let (reply, close_after) = match read_line_capped(&mut reader, opts.max_line_bytes) {
            LineRead::Closed => return,
            LineRead::TornRequest => {
                eprintln!("campaignd: closing {peer}: EOF mid-request");
                return;
            }
            LineRead::Failed(e) => {
                let reason = match e.kind() {
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                        "read timed out".to_string()
                    }
                    _ => format!("read failed: {e}"),
                };
                eprintln!("campaignd: closing {peer}: {reason}");
                return;
            }
            LineRead::TooLong => (
                Response::error(format!(
                    "request line exceeds {} bytes; closing",
                    opts.max_line_bytes
                ))
                .render(),
                // The rest of the oversized line is still in flight;
                // there is no request boundary to resynchronize on.
                true,
            ),
            LineRead::Line(line) if line.trim().is_empty() => continue,
            LineRead::Line(line) => match Request::parse(&line) {
                // Malformed input never reaches the daemon.
                Err(msg) => (Response::error(msg).render(), false),
                Ok(req) => {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    match cmd_tx.try_send((req, reply_tx)) {
                        Ok(()) => match reply_rx.recv() {
                            Ok(reply) => (reply, false),
                            Err(_) => return, // scheduler gone: daemon shut down
                        },
                        // Backpressure: shed the request, keep the
                        // connection — the client may retry later.
                        Err(mpsc::TrySendError::Full(_)) => (
                            Response::Overloaded {
                                message: format!(
                                    "scheduler queue full ({} pending)",
                                    opts.queue_depth
                                ),
                            }
                            .render(),
                            false,
                        ),
                        Err(mpsc::TrySendError::Disconnected(_)) => return,
                    }
                }
            },
        };
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("campaignd: closing {peer}: write failed");
            return;
        }
        if close_after {
            return;
        }
    }
}

fn scheduler_loop(daemon: &mut Daemon, cmd_rx: &Receiver<Command>) -> io::Result<()> {
    loop {
        // Drain every queued command between rounds.
        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if dispatch(daemon, cmd)? {
                        return Ok(());
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Ok(()),
            }
        }
        let stepped = daemon.round()?;
        if stepped == 0 {
            // Idle: block briefly for the next command instead of
            // spinning.
            match cmd_rx.recv_timeout(IDLE_WAIT) {
                Ok(cmd) => {
                    if dispatch(daemon, cmd)? {
                        return Ok(());
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

/// Handles one command; returns `Ok(true)` when serving should stop
/// (a graceful, fully-checkpointed shutdown was acknowledged).
fn dispatch(daemon: &mut Daemon, (req, reply): Command) -> io::Result<bool> {
    let is_shutdown = matches!(req, Request::Shutdown);
    if is_shutdown {
        // Durability before the acknowledgement, as for every command.
        daemon.checkpoint_all()?;
    }
    match daemon.handle(&req) {
        Ok(resp) => {
            let _ = reply.send(resp.render());
            Ok(is_shutdown)
        }
        Err(e) => {
            let _ = reply.send(Response::error(format!("persistence failure: {e}")).render());
            Err(e)
        }
    }
}
