//! The `campaignd` TCP front end: line-delimited JSON over a local
//! socket (DESIGN.md §10).
//!
//! Threading model: one accept thread plus one lightweight handler
//! thread per connection; a single scheduler loop (the caller's thread)
//! owns the [`Daemon`] and alternates between draining queued commands
//! and running scheduling rounds, so commands take effect at driver-step
//! granularity and job state never needs cross-thread sharing beyond
//! the per-slot locks the rounds already use.

use crate::service::daemon::Daemon;
use crate::service::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle scheduler blocks waiting for a command before
/// polling again.
const IDLE_WAIT: Duration = Duration::from_millis(25);

type Command = (Request, Sender<String>);

/// Serves `daemon` on `addr` (e.g. `127.0.0.1:0`) until a client sends
/// `shutdown`. When `port_file` is given, the bound port is written
/// there once the listener is live — the rendezvous the CLI client and
/// the CI smoke script use with ephemeral ports.
///
/// Shutdown is graceful: every running job is checkpointed durably
/// before the `shutdown` acknowledgement is sent, so a restart resumes
/// where serving stopped.
///
/// # Errors
///
/// Binding/IO failures on the listener, or a daemon persistence failure
/// (the daemon refuses further work once its durable write path fails).
pub fn serve(mut daemon: Daemon, addr: &str, port_file: Option<&Path>) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    if let Some(pf) = port_file {
        // Coordination state, not durable campaign state: a plain write
        // keeps it off the audited (fault-injected) path.
        std::fs::write(pf, format!("{}\n", local.port()))?;
    }
    eprintln!("campaignd: listening on {local}");

    let stop = Arc::new(AtomicBool::new(false));
    let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("campaignd-accept".to_string())
            .spawn(move || accept_loop(listener, cmd_tx, stop))
            .expect("spawn accept thread")
    };

    let result = scheduler_loop(&mut daemon, &cmd_rx);
    // Unblock the accept thread (it is parked in `accept`) and reap it.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    let _ = accept.join();
    result
}

fn accept_loop(listener: TcpListener, cmd_tx: Sender<Command>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let cmd_tx = cmd_tx.clone();
        let _ = std::thread::Builder::new()
            .name("campaignd-conn".to_string())
            .spawn(move || connection_loop(stream, cmd_tx));
    }
}

fn connection_loop(stream: TcpStream, cmd_tx: Sender<Command>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Request::parse(&line) {
            // Malformed input never reaches the daemon.
            Err(msg) => Response::error(msg).render(),
            Ok(req) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                if cmd_tx.send((req, reply_tx)).is_err() {
                    break; // scheduler gone: daemon shut down
                }
                match reply_rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => break,
                }
            }
        };
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn scheduler_loop(daemon: &mut Daemon, cmd_rx: &Receiver<Command>) -> io::Result<()> {
    loop {
        // Drain every queued command between rounds.
        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if dispatch(daemon, cmd)? {
                        return Ok(());
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Ok(()),
            }
        }
        let stepped = daemon.round()?;
        if stepped == 0 {
            // Idle: block briefly for the next command instead of
            // spinning.
            match cmd_rx.recv_timeout(IDLE_WAIT) {
                Ok(cmd) => {
                    if dispatch(daemon, cmd)? {
                        return Ok(());
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

/// Handles one command; returns `Ok(true)` when serving should stop
/// (a graceful, fully-checkpointed shutdown was acknowledged).
fn dispatch(daemon: &mut Daemon, (req, reply): Command) -> io::Result<bool> {
    let is_shutdown = matches!(req, Request::Shutdown);
    if is_shutdown {
        // Durability before the acknowledgement, as for every command.
        daemon.checkpoint_all()?;
    }
    match daemon.handle(&req) {
        Ok(resp) => {
            let _ = reply.send(resp.render());
            Ok(is_shutdown)
        }
        Err(e) => {
            let _ = reply.send(Response::error(format!("persistence failure: {e}")).render());
            Err(e)
        }
    }
}
