//! `campaignd`: the journaled multi-job search service (DESIGN.md §10).
//!
//! The batch campaign runs a fixed grid to completion; this module
//! turns the same step engine into a long-running daemon: optimization
//! jobs (circuit kind × width × tech × method × budget) arrive over a
//! line-delimited JSON protocol on a local TCP socket
//! ([`protocol`] / [`server`]), are multiplexed onto the shared
//! [`cv_pool::WorkerPool`] with fair round-robin scheduling at
//! `SearchDriver::step` granularity, and support per-job
//! `submit`/`status`/`pause`/`resume`/`cancel` plus live `frontier`
//! queries served from the in-memory Pareto archives ([`daemon`]).
//!
//! Every lifecycle transition is persisted to an append-only service
//! journal *before* it is acknowledged, and every job checkpoints
//! periodically through the shared per-task persistence layer — so
//! `kill -9` + restart replays the durable prefix and resumes every
//! in-flight job byte-identically (Contract 11). The CI
//! `campaignd-smoke` job and `tests/service_crash.rs` prove exactly
//! that with real aborts and simulated (`Mode::Error`) deaths.

pub mod daemon;
pub mod protocol;
pub mod server;

pub use daemon::{Daemon, DaemonConfig, SERVICE_JOURNAL};
pub use protocol::{JobSpec, JobStatus, Request, Response};
pub use server::{active_connections, serve, serve_with, ServeOptions};
