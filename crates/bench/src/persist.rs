//! Per-task durable persistence — the layer shared by the batch
//! campaign orchestrator ([`crate::campaign`]) and the `campaignd`
//! search service ([`crate::service`]).
//!
//! One *task* is a method×spec×seed search run with an on-disk life
//! (Contract 10, DESIGN.md §9):
//!
//! * `<id>.journal` — append-only [`cv_journal::Journal`] of task
//!   events (*started*, *progress* + *checkpoint* pairs, *completed*),
//!   written **before** any derived file so replaying its durable
//!   prefix always reconstructs (or heals) the rest;
//! * `<id>.ckpt`  — the latest full resume snapshot (driver +
//!   evaluator + archive + telemetry);
//! * `<id>.jsonl` — the per-round telemetry stream;
//! * `<id>.done`  — the final outcome + frontier archive.
//!
//! [`RunningTask`] is the single step engine both callers drive: the
//! campaign loops it to completion inside one pool unit, while the
//! service interleaves *slices* of steps from many tasks on the same
//! pool (Contract 11, DESIGN.md §10). Because every durable artifact
//! depends only on the task's own deterministic driver/evaluator
//! streams — never on slicing, scheduling, or checkpoint cadence — both
//! callers produce byte-identical `.done`/`.jsonl` files and identical
//! rotated journals for the same task.

use crate::campaign::CampaignTask;
use crate::driver::{make_driver, MethodDriver};
use crate::harness::build_evaluator;
use circuitvae::driver::{Checkpointable, SearchDriver, StepStatus};
use cv_journal::{fs, Journal};
use cv_synth::ckpt::{CkptError, Dec, Enc};
use cv_synth::{CachedEvaluator, EvaluatorState, ParetoArchive, SearchOutcome, SharedArchive};
use std::io;
use std::path::{Path, PathBuf};

/// A completed task: the outcome plus the frontier its run traced.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The search outcome.
    pub outcome: SearchOutcome,
    /// The archive observed during the run.
    pub archive: ParetoArchive,
}

const DONE_MAGIC: &[u8; 8] = b"CVCPDN01";
const CKPT_MAGIC: &[u8; 8] = b"CVCPCK01";

// ---------------------------------------------------------------------
// Task event journal (Contract 10)
// ---------------------------------------------------------------------

/// One durable event in a task's journal. Payloads ride inside
/// checksummed journal frames, so decoding sees only intact records.
#[derive(Debug, Clone, PartialEq)]
enum TaskEvent {
    /// The task began a fresh run.
    Started,
    /// The task has consumed `sims` simulations (stamped alongside each
    /// checkpoint — the budget axis of the journal).
    Progress {
        /// Simulations consumed so far.
        sims: u64,
    },
    /// A full resume snapshot (the same bytes as the `.ckpt` file).
    Checkpoint {
        /// Encoded [`encode_ckpt`] bytes.
        bytes: Vec<u8>,
    },
    /// The task finished: the final result and telemetry, byte-exact.
    Completed {
        /// Encoded [`encode_done`] bytes.
        done: Vec<u8>,
        /// The final `.jsonl` content.
        jsonl: Vec<u8>,
    },
}

const EV_STARTED: u8 = 1;
const EV_PROGRESS: u8 = 2;
const EV_CHECKPOINT: u8 = 3;
const EV_COMPLETED: u8 = 4;

impl TaskEvent {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            TaskEvent::Started => enc.u8(EV_STARTED),
            TaskEvent::Progress { sims } => {
                enc.u8(EV_PROGRESS);
                enc.u64(*sims);
            }
            TaskEvent::Checkpoint { bytes } => {
                enc.u8(EV_CHECKPOINT);
                enc.bytes(bytes);
            }
            TaskEvent::Completed { done, jsonl } => {
                enc.u8(EV_COMPLETED);
                enc.bytes(done);
                enc.bytes(jsonl);
            }
        }
        enc.finish()
    }

    fn decode(payload: &[u8]) -> Result<TaskEvent, CkptError> {
        let mut dec = Dec::new(payload);
        let ev = match dec.u8()? {
            EV_STARTED => TaskEvent::Started,
            EV_PROGRESS => TaskEvent::Progress { sims: dec.u64()? },
            EV_CHECKPOINT => TaskEvent::Checkpoint {
                bytes: dec.bytes()?.to_vec(),
            },
            EV_COMPLETED => TaskEvent::Completed {
                done: dec.bytes()?.to_vec(),
                jsonl: dec.bytes()?.to_vec(),
            },
            _ => return Err(CkptError::Invalid("task event tag")),
        };
        dec.finish()?;
        Ok(ev)
    }
}

/// What a journal's durable prefix reconstructs: exactly the state the
/// orchestrator held at the last durable record.
#[derive(Debug, Default)]
struct ReplayedState {
    /// The latest durable checkpoint snapshot, if any.
    checkpoint: Option<Vec<u8>>,
    /// The final result + telemetry, if the task completed durably.
    completed: Option<(Vec<u8>, Vec<u8>)>,
    /// The highest durable simulation count.
    sims: u64,
}

/// Replays decoded journal records into orchestrator state. A record
/// that fails to decode (a version change — CRCs already screened out
/// corruption) ends the trusted prefix, mirroring the torn-tail rule.
fn replay(records: &[Vec<u8>]) -> ReplayedState {
    let mut state = ReplayedState::default();
    for record in records {
        match TaskEvent::decode(record) {
            Ok(TaskEvent::Started) => {}
            Ok(TaskEvent::Progress { sims }) => state.sims = state.sims.max(sims),
            Ok(TaskEvent::Checkpoint { bytes }) => state.checkpoint = Some(bytes),
            Ok(TaskEvent::Completed { done, jsonl }) => state.completed = Some((done, jsonl)),
            Err(_) => break,
        }
    }
    state
}

/// A task's open journal plus the rotation policy.
struct TaskJournal {
    journal: Option<Journal>,
    max_bytes: u64,
}

impl TaskJournal {
    fn open(path: &Path) -> io::Result<(TaskJournal, ReplayedState)> {
        let opened = Journal::open(path)?;
        if opened.truncated_bytes > 0 {
            eprintln!(
                "campaign: truncated {} bytes of torn tail from {}",
                opened.truncated_bytes,
                path.display()
            );
        }
        let state = replay(&opened.records);
        Ok((
            TaskJournal {
                journal: Some(opened.journal),
                max_bytes: crate::campaign::JOURNAL_MAX_BYTES,
            },
            state,
        ))
    }

    fn started(&mut self) -> io::Result<()> {
        let payload = TaskEvent::Started.encode();
        self.journal
            .as_mut()
            .expect("journal open")
            .append(&payload)
    }

    /// Appends the per-checkpoint event pair (one durable write +
    /// fsync) and rotates the segment down to it when the cap is
    /// exceeded.
    fn checkpoint(&mut self, sims: u64, bytes: &[u8]) -> io::Result<()> {
        let payloads = [
            TaskEvent::Progress { sims }.encode(),
            TaskEvent::Checkpoint {
                bytes: bytes.to_vec(),
            }
            .encode(),
        ];
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let journal = self.journal.as_mut().expect("journal open");
        journal.append_all(&refs)?;
        if journal.len() > self.max_bytes {
            let rotated = self.journal.take().expect("journal open").rotate(&refs)?;
            self.journal = Some(rotated);
        }
        Ok(())
    }

    /// Rotates the segment down to the single *completed* record — the
    /// durable statement that this task's results are final.
    fn complete(&mut self, done: &[u8], jsonl: &[u8]) -> io::Result<()> {
        let payload = TaskEvent::Completed {
            done: done.to_vec(),
            jsonl: jsonl.to_vec(),
        }
        .encode();
        let rotated = self
            .journal
            .take()
            .expect("journal open")
            .rotate(&[&payload])?;
        self.journal = Some(rotated);
        Ok(())
    }
}

fn encode_done(result: &TaskResult) -> Vec<u8> {
    let mut enc = Enc::with_magic(DONE_MAGIC);
    result.outcome.write_ckpt(&mut enc);
    result.archive.write_ckpt(&mut enc);
    enc.finish()
}

fn decode_done(bytes: &[u8]) -> Result<TaskResult, CkptError> {
    let mut dec = Dec::with_magic(bytes, DONE_MAGIC)?;
    let outcome = SearchOutcome::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    dec.finish()?;
    Ok(TaskResult { outcome, archive })
}

fn encode_ckpt(
    driver: &MethodDriver,
    evaluator_state: &EvaluatorState,
    archive: &ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: &[String],
) -> Vec<u8> {
    let mut enc = Enc::with_magic(CKPT_MAGIC);
    enc.bytes(&driver.save());
    evaluator_state.write_ckpt(&mut enc);
    archive.write_ckpt(&mut enc);
    enc.usize(round);
    enc.usize(last_line_sims);
    enc.usize(lines.len());
    for l in lines {
        enc.str(l);
    }
    enc.finish()
}

struct ResumedTask {
    driver: MethodDriver,
    evaluator_state: EvaluatorState,
    archive: ParetoArchive,
    round: usize,
    last_line_sims: usize,
    lines: Vec<String>,
}

fn decode_ckpt(bytes: &[u8]) -> Result<ResumedTask, CkptError> {
    let mut dec = Dec::with_magic(bytes, CKPT_MAGIC)?;
    let driver = MethodDriver::load(dec.bytes()?)?;
    let evaluator_state = EvaluatorState::read_ckpt(&mut dec)?;
    let archive = ParetoArchive::read_ckpt(&mut dec)?;
    let round = dec.usize()?;
    let last_line_sims = dec.usize()?;
    let n = dec.seq_len()?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(dec.str()?);
    }
    dec.finish()?;
    Ok(ResumedTask {
        driver,
        evaluator_state,
        archive,
        round,
        last_line_sims,
        lines,
    })
}

fn telemetry_line(task_id: &str, round: usize, sims: usize, best: f64) -> String {
    if best.is_finite() {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":{best:.9}}}"#)
    } else {
        format!(r#"{{"task":"{task_id}","round":{round},"sims":{sims},"best":null}}"#)
    }
}

/// The on-disk file set of one persistent task.
pub(crate) struct TaskPaths {
    pub(crate) done: PathBuf,
    pub(crate) ckpt: PathBuf,
    pub(crate) jsonl: PathBuf,
    pub(crate) journal: PathBuf,
}

impl TaskPaths {
    pub(crate) fn new(dir: &Path, id: &str) -> TaskPaths {
        TaskPaths {
            done: dir.join(format!("{id}.done")),
            ckpt: dir.join(format!("{id}.ckpt")),
            jsonl: dir.join(format!("{id}.jsonl")),
            journal: dir.join(format!("{id}.journal")),
        }
    }

    /// Removes every on-disk artifact of the task (cancellation GC).
    /// Idempotent: missing files are fine.
    pub(crate) fn remove_all(&self) {
        for p in [&self.done, &self.ckpt, &self.jsonl, &self.journal] {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Reads and decodes a `.done`/`.ckpt` artifact; a corrupt or truncated
/// file is logged and **deleted** (recovery treats it as absent and
/// falls back — never a panic; Contract 10).
fn read_or_quarantine<T>(
    path: &Path,
    what: &str,
    decode: impl FnOnce(&[u8]) -> Result<T, CkptError>,
) -> Option<T> {
    let bytes = std::fs::read(path).ok()?;
    match decode(&bytes) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!(
                "campaign: corrupt {what} at {} ({e}); treating as absent",
                path.display()
            );
            let _ = std::fs::remove_file(path);
            None
        }
    }
}

/// The outcome of opening a task against its on-disk state.
pub(crate) enum OpenedTask {
    /// The task had already completed durably (its stored — or
    /// journal-healed — result is returned verbatim).
    Done(TaskResult),
    /// The task is resumable (from its durable checkpoint) or fresh.
    Run(Box<RunningTask>),
}

/// One step of a [`RunningTask`].
pub(crate) enum TaskStep {
    /// The driver advanced; `checkpointed` reports whether this step
    /// crossed the checkpoint cadence (and persisted durably).
    Running {
        /// Whether a checkpoint was written this step.
        checkpointed: bool,
    },
    /// The driver finished; the result (and its files, when persistent)
    /// are final.
    Done(Box<TaskResult>),
}

/// A resumable in-flight task: the step engine plus its durable tail.
///
/// Both orchestrators drive this engine — the campaign runs one task
/// per pool unit to completion, the service interleaves step slices of
/// many tasks. All durable writes happen inside [`RunningTask::step`] /
/// [`RunningTask::checkpoint_now`], journal-first (Contract 10).
pub(crate) struct RunningTask {
    id: String,
    paths: Option<TaskPaths>,
    journal: Option<TaskJournal>,
    evaluator: CachedEvaluator,
    driver: MethodDriver,
    archive: SharedArchive,
    round: usize,
    last_line_sims: usize,
    lines: Vec<String>,
    last_ckpt: usize,
}

impl RunningTask {
    /// Opens `task` against the on-disk state under `dir` (or fully in
    /// memory when `dir` is `None`).
    ///
    /// Recovery order (Contract 10): a decodable `.done` wins; then the
    /// task journal's durable *completed* record (healing the result
    /// files byte-exactly); then the journal's latest durable
    /// checkpoint; then the `.ckpt` file (pre-journal directories);
    /// then a fresh start. Corrupt artifacts are quarantined, never a
    /// panic.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures — including crashes injected by
    /// an armed failpoint in `Error` mode.
    pub(crate) fn open(
        task: &CampaignTask,
        id: String,
        dir: Option<&Path>,
        journal_max_bytes: u64,
    ) -> io::Result<OpenedTask> {
        let paths = dir.map(|d| TaskPaths::new(d, &id));

        // Completed on a previous run: reuse the stored result verbatim.
        // A real kill can land between the `.done` write and the
        // checkpoint removal, so sweep up any leftover `.ckpt` here —
        // otherwise the stale file would survive every later resume and
        // the directory would never byte-match a clean run.
        if let Some(p) = &paths {
            if let Some(result) = read_or_quarantine(&p.done, ".done file", decode_done) {
                let _ = std::fs::remove_file(&p.ckpt);
                return Ok(OpenedTask::Done(result));
            }
        }

        // Open the event journal and replay its durable prefix. The
        // journal is authoritative: its records were appended *before*
        // the matching `.ckpt`/`.done` files were published, so it is
        // never behind them.
        let journal = match &paths {
            Some(p) => {
                let (mut journal, state) = TaskJournal::open(&p.journal)?;
                journal.max_bytes = journal_max_bytes;
                if let Some((done_bytes, jsonl_bytes)) = &state.completed {
                    if let Ok(result) = decode_done(done_bytes) {
                        // The task completed durably but died before (or
                        // while) publishing its result files: heal them
                        // from the journal, byte-exact.
                        fs::write_atomic(&p.jsonl, jsonl_bytes)?;
                        fs::write_atomic(&p.done, done_bytes)?;
                        let _ = std::fs::remove_file(&p.ckpt);
                        return Ok(OpenedTask::Done(result));
                    }
                    eprintln!(
                        "campaign: undecodable completed record in {}; replaying from checkpoint",
                        p.journal.display()
                    );
                }
                Some((journal, state))
            }
            None => None,
        };

        let evaluator = build_evaluator(&task.spec);
        // Resume source, in order of trust: the journal's latest durable
        // checkpoint, then the `.ckpt` file (pre-journal directories),
        // then a fresh start.
        let resumed = journal
            .as_ref()
            .and_then(|(_, state)| state.checkpoint.as_deref())
            .and_then(|bytes| match decode_ckpt(bytes) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("campaign: undecodable journal checkpoint for {id} ({e})");
                    None
                }
            })
            .or_else(|| {
                let p = paths.as_ref()?;
                read_or_quarantine(&p.ckpt, ".ckpt file", decode_ckpt)
            });
        let mut journal = journal.map(|(j, _)| j);

        let (driver, archive, round, last_line_sims, lines) = match resumed {
            Some(resumed) => {
                evaluator.restore_state(&resumed.evaluator_state);
                let shared = resumed.archive.into_shared();
                evaluator.attach_archive(shared.clone());
                (
                    resumed.driver,
                    shared,
                    resumed.round,
                    resumed.last_line_sims,
                    resumed.lines,
                )
            }
            None => {
                if let Some(journal) = &mut journal {
                    journal.started()?;
                }
                let shared = ParetoArchive::new().with_log().into_shared();
                evaluator.attach_archive(shared.clone());
                (
                    make_driver(task.method, &task.spec, task.seed),
                    shared,
                    0,
                    usize::MAX, // sentinel: force a line on the first progress
                    Vec::new(),
                )
            }
        };
        let last_ckpt = driver.sims_used();
        Ok(OpenedTask::Run(Box::new(RunningTask {
            id,
            paths,
            journal,
            evaluator,
            driver,
            archive,
            round,
            last_line_sims,
            lines,
            last_ckpt,
        })))
    }

    /// Advances the driver by one step, appending telemetry, writing
    /// the periodic durable checkpoint when `checkpoint_every` new
    /// simulations have accumulated, and — on completion — publishing
    /// the final result (journal rotation first, then `.jsonl`/`.done`,
    /// then `.ckpt` removal).
    ///
    /// # Errors
    ///
    /// Propagates persistence failures (including injected crashes).
    pub(crate) fn step(&mut self, checkpoint_every: usize) -> io::Result<TaskStep> {
        crate::faults::maybe_panic(&self.id, self.driver.sims_used());
        match self.driver.step(&self.evaluator) {
            StepStatus::Done => {
                self.evaluator.detach_archive();
                let outcome = self.driver.outcome().cloned().expect("driver completed");
                self.lines.push(telemetry_line(
                    &self.id,
                    self.round,
                    self.driver.sims_used(),
                    outcome.best_cost,
                ));
                let result = TaskResult {
                    outcome,
                    archive: self.archive.lock().clone(),
                };
                if let Some(p) = &self.paths {
                    let done_bytes = encode_done(&result);
                    let jsonl_bytes = self.lines.join("\n").into_bytes();
                    // Durable completion first (journal rotated down to
                    // the single *completed* record), then the derived
                    // files: a crash anywhere in this sequence heals to
                    // the same bytes on resume.
                    if let Some(journal) = &mut self.journal {
                        journal.complete(&done_bytes, &jsonl_bytes)?;
                    }
                    fs::write_atomic(&p.jsonl, &jsonl_bytes)?;
                    fs::write_atomic(&p.done, &done_bytes)?;
                    let _ = std::fs::remove_file(&p.ckpt);
                }
                Ok(TaskStep::Done(Box::new(result)))
            }
            StepStatus::Running => {
                self.round += 1;
                let sims = self.driver.sims_used();
                // One telemetry line per round that made progress on the
                // budget axis (phase transitions and cache hits stay
                // silent, so the stream length is bounded by the budget).
                if sims != self.last_line_sims && sims > 0 {
                    self.lines.push(telemetry_line(
                        &self.id,
                        self.round,
                        sims,
                        self.driver.best_cost(),
                    ));
                    self.last_line_sims = sims;
                }
                let mut checkpointed = false;
                if sims - self.last_ckpt >= checkpoint_every {
                    self.checkpoint_now()?;
                    checkpointed = true;
                }
                Ok(TaskStep::Running { checkpointed })
            }
        }
    }

    /// Persists a full resume snapshot now (journal first, then the
    /// `.ckpt` and `.jsonl` artifacts) — the halt/pause/shutdown hook.
    /// A no-op in memory-only mode.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures (including injected crashes).
    pub(crate) fn checkpoint_now(&mut self) -> io::Result<()> {
        let sims = self.driver.sims_used();
        let Some(p) = &self.paths else {
            self.last_ckpt = sims;
            return Ok(());
        };
        let bytes = encode_ckpt(
            &self.driver,
            &self.evaluator.state(),
            &self.archive.lock(),
            self.round,
            self.last_line_sims,
            &self.lines,
        );
        if let Some(journal) = &mut self.journal {
            journal.checkpoint(sims as u64, &bytes)?;
        }
        fs::write_atomic(&p.ckpt, &bytes)?;
        fs::write_atomic(&p.jsonl, self.lines.join("\n").as_bytes())?;
        self.last_ckpt = sims;
        Ok(())
    }

    /// Simulations consumed so far.
    pub(crate) fn sims_used(&self) -> usize {
        self.driver.sims_used()
    }

    /// Best scalar cost so far (`inf` before the first evaluation).
    pub(crate) fn best_cost(&self) -> f64 {
        self.driver.best_cost()
    }

    /// The current in-memory frontier as `(area, delay, sims)` triples —
    /// what a live `frontier` query serves.
    pub(crate) fn front(&self) -> Vec<(f64, f64, usize)> {
        self.archive
            .lock()
            .front()
            .iter()
            .map(|p| (p.ppa.area_um2, p.ppa.delay_ns, p.sims))
            .collect()
    }

    /// Detaches the evaluator's archive hook (halt path — the task is
    /// about to be dropped without completing).
    pub(crate) fn detach(&self) {
        self.evaluator.detach_archive();
    }

    /// Cancellation GC: detaches, drops the journal handle, and removes
    /// every on-disk artifact of the task. Idempotent against crashes —
    /// a re-run of the removal (after a service-journal replay) is
    /// harmless.
    pub(crate) fn remove_files(mut self) {
        self.evaluator.detach_archive();
        self.journal = None; // close the segment handle before unlinking
        if let Some(p) = &self.paths {
            p.remove_all();
        }
    }
}

/// Frontier of a finished task as `(area, delay, sims)` triples.
pub(crate) fn result_front(result: &TaskResult) -> Vec<(f64, f64, usize)> {
    result
        .archive
        .front()
        .iter()
        .map(|p| (p.ppa.area_um2, p.ppa.delay_ns, p.sims))
        .collect()
}

/// Removes the on-disk artifacts of a (possibly never-opened) task id —
/// the service's cancellation GC for jobs replayed as cancelled.
pub(crate) fn remove_task_files(dir: &Path, id: &str) {
    TaskPaths::new(dir, id).remove_all();
}
