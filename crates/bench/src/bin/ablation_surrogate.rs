//! Surrogate-capacity ablation (DESIGN.md §6, probing the paper's §5.2
//! hypothesis): "our higher-capacity neural cost predictor can learn
//! more from large datasets than the Bayesian surrogate model."
//!
//! Trains the joint model with cost heads of increasing width on the
//! same dataset and reports held-out cost MSE, alongside an exact-GP
//! surrogate fit on the same encoded latents for reference.
//!
//! Usage: `ablation_surrogate [--scale smoke|default|paper]`.

use circuitvae::{CircuitVaeConfig, CircuitVaeModel, Dataset};
use cv_bench::harness::{build_evaluator, ExperimentSpec, Scale};
use cv_gp::{GpRegressor, Kernel};
use cv_nn::{Graph, ParamStore, Tensor};
use cv_prefix::{bitvec, mutate, CircuitKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_args();
    let n_data = (240.0 * scale.budget_factor()) as usize;
    let width = 16;
    let spec = ExperimentSpec::standard(width, CircuitKind::Adder, 0.66, n_data);
    let ev = build_evaluator(&spec);
    let mut rng = StdRng::seed_from_u64(4);
    let all: Vec<_> = (0..n_data)
        .map(|_| {
            let g = mutate::random_grid(width, rng.gen_range(0.05..0.4), &mut rng);
            let c = ev.evaluate(&g).cost;
            (g, c)
        })
        .collect();
    // 80/20 train/held-out split: surrogates are compared on designs
    // they have never seen, which is what acquisition actually needs.
    let split = all.len() * 4 / 5;
    let entries: Vec<_> = all[..split].to_vec();
    let heldout: Vec<_> = all[split..].to_vec();

    println!(
        "dataset: {} train / {} held-out, width {width}",
        entries.len(),
        heldout.len()
    );
    println!("{:>14} {:>12} {:>12}", "surrogate", "cost MSE", "corr");

    for head in [8usize, 32, 128] {
        let mut cfg = CircuitVaeConfig::smoke(width);
        cfg.cost_head_hidden = head;
        let mut store = ParamStore::new();
        let mut srng = StdRng::seed_from_u64(9);
        let model = CircuitVaeModel::new(&mut store, &cfg, width, &mut srng);
        let mut ds = Dataset::new(width, entries.clone());
        ds.recompute_weights(1e-3, true);
        let _ = circuitvae::train(&model, &mut store, &ds, &cfg, 250, &mut srng);
        let (mse, corr) = probe(&model, &store, &ds, &heldout);
        println!(
            "{:>14} {:>12.4} {:>12.3}",
            format!("mlp-head-{head}"),
            mse,
            corr
        );
    }

    // GP reference on the latents of a trained (default-head) model.
    let cfg = CircuitVaeConfig::smoke(width);
    let mut store = ParamStore::new();
    let mut srng = StdRng::seed_from_u64(9);
    let model = CircuitVaeModel::new(&mut store, &cfg, width, &mut srng);
    let mut ds = Dataset::new(width, entries.clone());
    ds.recompute_weights(1e-3, true);
    let _ = circuitvae::train(&model, &mut store, &ds, &cfg, 250, &mut srng);
    let dense: Vec<Vec<f32>> = ds
        .entries()
        .iter()
        .map(|(g, _)| bitvec::encode_dense(g))
        .collect();
    let (mu, _) = model.encode_values(&store, &dense);
    let xs: Vec<Vec<f64>> = mu
        .iter()
        .map(|r| r.iter().map(|&v| f64::from(v)).collect())
        .collect();
    let ys: Vec<f64> = ds
        .entries()
        .iter()
        .map(|(_, c)| ds.normalize_cost(*c))
        .collect();
    match GpRegressor::fit(&xs, &ys, Kernel::Matern52, 1e-4) {
        Ok(gp) => {
            let ho_dense: Vec<Vec<f32>> = heldout
                .iter()
                .map(|(g, _)| bitvec::encode_dense(g))
                .collect();
            let (ho_mu, _) = model.encode_values(&store, &ho_dense);
            let preds: Vec<f64> = ho_mu
                .iter()
                .map(|r| {
                    let x: Vec<f64> = r.iter().map(|&v| f64::from(v)).collect();
                    gp.predict(&x).0
                })
                .collect();
            let truth: Vec<f64> = heldout.iter().map(|(_, c)| ds.normalize_cost(*c)).collect();
            let mse = preds
                .iter()
                .zip(&truth)
                .map(|(p, y)| (p - y) * (p - y))
                .sum::<f64>()
                / truth.len() as f64;
            println!("{:>14} {:>12.4} {:>12}", "exact-gp", mse, "-");
        }
        Err(e) => println!("{:>14} fit failed: {e}", "exact-gp"),
    }
    println!(
        "\nExpected: larger MLP heads fit the cost signal better on big\n\
         datasets (the paper's §5.2 hypothesis for why gradient search\n\
         beats latent BO once properly regularized)."
    );
}

fn probe(
    model: &CircuitVaeModel,
    store: &ParamStore,
    ds: &Dataset,
    heldout: &[(cv_prefix::PrefixGrid, f64)],
) -> (f64, f64) {
    let dense: Vec<Vec<f32>> = heldout
        .iter()
        .map(|(g, _)| bitvec::encode_dense(g))
        .collect();
    let (mu, _) = model.encode_values(store, &dense);
    let mut g = Graph::new();
    let flat: Vec<f32> = mu.iter().flatten().copied().collect();
    let z = g.input(Tensor::new([mu.len(), model.latent_dim()], flat));
    let p = model.predict_cost(&mut g, store, z);
    let preds: Vec<f64> = g.value(p).data().iter().map(|&v| f64::from(v)).collect();
    let ys: Vec<f64> = heldout.iter().map(|(_, c)| ds.normalize_cost(*c)).collect();
    let mse = preds
        .iter()
        .zip(&ys)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>()
        / ys.len() as f64;
    let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mp, ma) = (m(&preds), m(&ys));
    let cov: f64 = preds
        .iter()
        .zip(&ys)
        .map(|(p, a)| (p - mp) * (a - ma))
        .sum();
    let vp: f64 = preds.iter().map(|p| (p - mp) * (p - mp)).sum();
    let va: f64 = ys.iter().map(|a| (a - ma) * (a - ma)).sum();
    (mse, cov / (vp.sqrt() * va.sqrt()).max(1e-12))
}
