//! Regenerates **Figure 5**: the effect of the prior-regularization
//! weight γ on latent search trajectories. For each γ we report how far
//! trajectories end from the latent origin (vs. the training-data
//! radius), the cost the model *predicts* there, and the *actual*
//! synthesized cost of the decoded designs — exposing the
//! cost-predictor overfitting that motivates prior regularization.
//!
//! Usage: `fig5_gamma [--scale smoke|default|paper]`.

use circuitvae::{
    decode_candidates, initial_latents, run_trajectories, CircuitVae, CircuitVaeConfig,
    InitStrategy, SearchRegularizer,
};
use cv_baselines::ga_initial_dataset;
use cv_bench::harness::{build_evaluator, vae_config, ExperimentSpec, Scale};
use cv_bench::stats::median_iqr;
use cv_prefix::CircuitKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let f = scale.budget_factor();
    let width = 32;
    let spec = ExperimentSpec::standard(width, CircuitKind::Adder, 0.66, (200.0 * f) as usize);
    let evaluator = build_evaluator(&spec);
    let mut rng = StdRng::seed_from_u64(5);

    // Build a dataset and train the model once (a few Algorithm-1 rounds).
    let initial = ga_initial_dataset(width, &evaluator, spec.budget / 2, &mut rng);
    let mut cfg: CircuitVaeConfig = vae_config(&spec);
    cfg.search_steps = 60;
    cfg.capture_every = 60; // capture endpoints only
    let mut vae = CircuitVae::new(width, cfg.clone(), initial, 77);
    let _ = vae.run(&evaluator, spec.budget / 4);

    // Training-data radius (the "gray" reference region in the figure).
    let dense: Vec<Vec<f32>> = vae
        .dataset()
        .entries()
        .iter()
        .take(256)
        .map(|(g, _)| cv_prefix::bitvec::encode_dense(g))
        .collect();
    let (mus, _) = vae.model().encode_values(vae.store(), &dense);
    let data_radii: Vec<f64> = mus
        .iter()
        .map(|m| {
            m.iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    let data_radius = median_iqr(&data_radii).expect("dataset non-empty").median;
    println!("training-data latent radius (median): {data_radius:.3}\n");

    println!(
        "{:>8} {:>14} {:>16} {:>14} {:>14}",
        "gamma", "end-distance", "dist/data-radius", "predicted", "actual"
    );
    for &gamma in &[0.001, 0.01, 0.1, 1.0] {
        let mut c = cfg.clone();
        c.regularizer = SearchRegularizer::PriorFixed { gamma };
        let starts = initial_latents(
            vae.model(),
            vae.store(),
            vae.dataset(),
            InitStrategy::CostWeighted,
            12,
            &mut rng,
        );
        let recs = run_trajectories(vae.model(), vae.store(), starts, &c, &mut rng);
        let ends: Vec<_> = recs.iter().filter_map(|r| r.points.last()).collect();
        let dists: Vec<f64> = ends.iter().map(|p| p.origin_distance).collect();
        let preds: Vec<f64> = ends
            .iter()
            .map(|p| vae.dataset().denormalize_cost(p.predicted_norm))
            .collect();
        let latents: Vec<Vec<f32>> = ends.iter().map(|p| p.z.clone()).collect();
        let grids = decode_candidates(vae.model(), vae.store(), &latents, &mut rng);
        let actuals: Vec<f64> = grids.iter().map(|g| evaluator.evaluate(g).cost).collect();

        let d = median_iqr(&dists).unwrap().median;
        println!(
            "{:>8} {:>14.3} {:>16.2} {:>14.3} {:>14.3}",
            gamma,
            d,
            d / data_radius,
            median_iqr(&preds).unwrap().median,
            median_iqr(&actuals).unwrap().median,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 5): small gamma -> trajectories escape the data\n\
         region (distance >> data radius) and predicted << actual (overfitting);\n\
         large gamma -> trajectories stay near the origin and predictions are honest."
    );
}
