//! Regenerates **Figure 3**: cost vs. simulation budget for CircuitVAE,
//! latent BO, RL and GA across bitwidths {32, 64} and delay weights
//! {0.33, 0.66, 0.95} (six panels).
//!
//! Usage: `fig3_curves [--scale smoke|default|paper]`.

use cv_bench::harness::{run_method_seeds, ExperimentSpec, Method, Scale};
use cv_bench::stats::{checkpoints, render_series_csv, render_series_table};
use cv_prefix::CircuitKind;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let seeds = scale.seeds();
    let f = scale.budget_factor();
    let mut vae_wins = 0usize;
    let mut panels = 0usize;
    let mut summary = String::new();

    for &width in &[32usize, 64] {
        for &dw in &[0.33, 0.66, 0.95] {
            let budget = ((if width == 64 { 250.0 } else { 300.0 }) * f) as usize;
            let spec = ExperimentSpec::standard(width, CircuitKind::Adder, dw, budget);
            let t0 = Instant::now();
            let curves: Vec<_> = Method::PAPER_SET
                .iter()
                .map(|&m| run_method_seeds(m, &spec, seeds))
                .collect();
            let cps = checkpoints(budget, 8);
            let title = format!("Fig.3 panel: width={width} delay_weight={dw} budget={budget}");
            println!("{}", render_series_table(&title, &curves, &cps));
            let csv = render_series_csv(&curves, &cps);
            let path = cv_bench::harness::results_dir().join(format!("fig3_w{width}_dw{dw}.csv"));
            std::fs::write(&path, csv).expect("write csv");

            // Paper claim: CircuitVAE achieves the lowest final median.
            let finals: Vec<(String, f64)> = curves
                .iter()
                .map(|c| {
                    (
                        c.label.clone(),
                        c.final_quartiles().map_or(f64::INFINITY, |q| q.median),
                    )
                })
                .collect();
            let winner = finals
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty")
                .clone();
            panels += 1;
            if winner.0 == "CircuitVAE" {
                vae_wins += 1;
            }
            summary.push_str(&format!(
                "width={width} dw={dw}: winner {} ({:.3}) [{:.0}s]\n",
                winner.0,
                winner.1,
                t0.elapsed().as_secs_f64()
            ));
        }
    }
    println!("== Fig.3 summary ==");
    print!("{summary}");
    println!("CircuitVAE wins {vae_wins}/{panels} panels (paper: 6/6)");
}
