//! The **campaignd** service binary: a long-running daemon multiplexing
//! optimization jobs, plus its CLI client (DESIGN.md §10).
//!
//! Server:
//!
//! ```text
//! campaignd serve --dir PATH [--addr 127.0.0.1:0] [--port-file PATH]
//!                 [--threads N] [--checkpoint-every N]
//!                 [--slice-steps N] [--max-retries N]
//!                 [--max-conns N] [--max-line-bytes N]
//!                 [--queue-depth N] [--conn-timeout-secs N]
//! ```
//!
//! Boots (or crash-recovers) the daemon over `--dir` and serves the
//! line-delimited JSON protocol until a client sends `shutdown`. With
//! `--port-file`, the bound port is written there once the listener is
//! live — the rendezvous for ephemeral (`:0`) ports. The limits flags
//! bound the ingress path: concurrent connections (`--max-conns`),
//! request-line length (`--max-line-bytes`), queued commands
//! (`--queue-depth`), and the per-connection socket timeouts
//! (`--conn-timeout-secs`); load beyond them is shed with a structured
//! `overloaded` error. `--max-retries` caps a failing job's automatic
//! retries before quarantine.
//!
//! Fault injection (chaos harness levers):
//!
//! * `CV_FAILPOINT=<ticks>` arms the `cv-journal` failpoint in
//!   real-kill mode, exactly as the `campaign` binary does: the process
//!   aborts once the durable write path has spent that many ticks.
//!   Restarting with the same `--dir` replays the service journal and
//!   resumes every job byte-identically (Contract 11; the CI
//!   `campaignd-smoke` job cycles kill points and `diff -r`s against a
//!   never-killed run).
//! * `CV_TRANSIENT_IO=<ticks>:<window>` opens a transient IO brown-out
//!   instead: after `<ticks>` durable-write ticks, the next `<window>`
//!   durable operations fail without killing the process. The daemon
//!   parks affected jobs and keeps serving (Contract 13).
//! * `CV_PANIC_JOB=<fragment>@<sims>` makes every job whose id contains
//!   `<fragment>` panic at its first step at or past `<sims>`
//!   simulations — deterministically across retries, so the job drains
//!   its retry budget and lands quarantined.
//!
//! Client (all take `--port N` or `--port-file PATH`, with
//! `--connect-timeout-secs` to wait for a booting daemon; connects
//! retry transient failures with bounded exponential backoff, and
//! requests answered `"transient":true` or `"overloaded":true` are
//! retried the same way until the connect deadline — both signals
//! leave daemon state unchanged, so repeating is always safe):
//!
//! ```text
//! campaignd submit    --kind adder --width 8 --tech nangate45
//!                     --method sa --budget 64 --seed 1
//!                     [--delay-weight 0.5]
//! campaignd status    [--id JOB]
//! campaignd wait      [--timeout-secs N]  # until nothing runs or retries
//! campaignd pause     --id JOB
//! campaignd resume    --id JOB
//! campaignd cancel    --id JOB
//! campaignd frontier  --id JOB
//! campaignd retry     --id JOB            # revive a failed/quarantined job
//! campaignd fail-info --id JOB            # why it failed, retries, backoff
//! campaignd ping
//! campaignd shutdown                      # graceful: checkpoints all
//! ```
//!
//! Every client subcommand prints the daemon's raw JSON response line
//! and exits nonzero when `ok` is false.

use cv_bench::perf::{parse_json, Json};
use cv_bench::service::{serve_with, Daemon, DaemonConfig, JobSpec, Request, ServeOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

fn parsed_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    arg_value(name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a valid value, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn required(name: &str) -> String {
    arg_value(name).unwrap_or_else(|| {
        eprintln!("error: {name} is required");
        std::process::exit(2);
    })
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    match cmd.as_str() {
        "serve" => run_server(),
        "submit" => client(Request::Submit(submit_spec())),
        "status" => client(Request::Status {
            id: arg_value("--id"),
        }),
        "pause" => client(Request::Pause {
            id: required("--id"),
        }),
        "resume" => client(Request::Resume {
            id: required("--id"),
        }),
        "cancel" => client(Request::Cancel {
            id: required("--id"),
        }),
        "frontier" => client(Request::Frontier {
            id: required("--id"),
        }),
        "retry" => client(Request::Retry {
            id: required("--id"),
        }),
        "fail-info" => client(Request::FailInfo {
            id: required("--id"),
        }),
        "ping" => client(Request::Ping),
        "shutdown" => client(Request::Shutdown),
        "wait" => wait_drained(),
        other => {
            eprintln!(
                "usage: campaignd serve|submit|status|wait|pause|resume|cancel|frontier|retry|fail-info|ping|shutdown (got `{other}`)"
            );
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

fn run_server() {
    if cv_journal::failpoint::arm_from_env() {
        eprintln!("campaignd: CV_FAILPOINT armed — this run will be killed mid-write");
    }
    if cv_journal::failpoint::arm_transient_from_env() {
        eprintln!("campaignd: CV_TRANSIENT_IO armed — a transient IO brown-out is scheduled");
    }
    if cv_bench::faults::arm_from_env() {
        eprintln!("campaignd: CV_PANIC_JOB armed — matching jobs will panic mid-step");
    }
    let dir: PathBuf = PathBuf::from(required("--dir"));
    let mut cfg = DaemonConfig::new(dir);
    if let Some(threads) = parsed_arg::<usize>("--threads") {
        cfg.threads = threads;
    }
    if let Some(every) = parsed_arg::<usize>("--checkpoint-every") {
        cfg.checkpoint_every = every;
    }
    if let Some(steps) = parsed_arg::<usize>("--slice-steps") {
        cfg.slice_steps = steps;
    }
    if let Some(retries) = parsed_arg::<u32>("--max-retries") {
        cfg.max_retries = retries;
    }
    let mut opts = ServeOptions::default();
    if let Some(conns) = parsed_arg::<usize>("--max-conns") {
        opts.max_connections = conns;
    }
    if let Some(bytes) = parsed_arg::<usize>("--max-line-bytes") {
        opts.max_line_bytes = bytes;
    }
    if let Some(depth) = parsed_arg::<usize>("--queue-depth") {
        opts.queue_depth = depth;
    }
    if let Some(secs) = parsed_arg::<u64>("--conn-timeout-secs") {
        opts.read_timeout = Duration::from_secs(secs);
        opts.write_timeout = Duration::from_secs(secs);
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let port_file = arg_value("--port-file").map(PathBuf::from);

    let daemon = Daemon::open(cfg).unwrap_or_else(|e| {
        eprintln!("campaignd: failed to open state directory: {e}");
        std::process::exit(1);
    });
    if let Err(e) = serve_with(daemon, &addr, port_file.as_deref(), opts) {
        eprintln!("campaignd: serving failed: {e}");
        std::process::exit(1);
    }
    eprintln!("campaignd: shut down cleanly");
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

fn submit_spec() -> JobSpec {
    let line = format!(
        r#"{{"cmd":"submit","job":{{"method":"{}","kind":"{}","width":{},"tech":"{}","delay_weight":{},"budget":{},"seed":{}}}}}"#,
        required("--method"),
        arg_value("--kind").unwrap_or_else(|| "adder".to_string()),
        parsed_arg::<usize>("--width").unwrap_or(8),
        required("--tech"),
        parsed_arg::<f64>("--delay-weight").unwrap_or(0.5),
        parsed_arg::<usize>("--budget").unwrap_or_else(|| {
            eprintln!("error: --budget is required");
            std::process::exit(2);
        }),
        parsed_arg::<u64>("--seed").unwrap_or(1),
    );
    match Request::parse(&line) {
        Ok(Request::Submit(spec)) => spec,
        Ok(_) => unreachable!("submit line parses as submit"),
        Err(e) => {
            eprintln!("error: invalid job: {e}");
            std::process::exit(2);
        }
    }
}

/// Bounded exponential backoff for the client's retry loops: starts at
/// `start` and doubles per sleep up to `cap` — kind to a booting or
/// momentarily overloaded daemon without hammering it at a fixed rate.
struct Backoff {
    next: Duration,
    cap: Duration,
}

impl Backoff {
    fn new(start: Duration, cap: Duration) -> Backoff {
        Backoff { next: start, cap }
    }

    fn sleep(&mut self) {
        std::thread::sleep(self.next);
        self.next = (self.next * 2).min(self.cap);
    }
}

/// Resolves the daemon port from `--port` or `--port-file`, waiting
/// (with exponential backoff) for the file to appear while the daemon
/// boots.
fn resolve_port(deadline: Instant) -> u16 {
    if let Some(port) = parsed_arg::<u16>("--port") {
        return port;
    }
    let Some(pf) = arg_value("--port-file").map(PathBuf::from) else {
        eprintln!("error: --port or --port-file is required");
        std::process::exit(2);
    };
    let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(250));
    loop {
        if let Ok(text) = std::fs::read_to_string(&pf) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return port;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("error: port file {} never appeared", pf.display());
            std::process::exit(1);
        }
        backoff.sleep();
    }
}

/// Connects to the daemon, retrying transient connect failures
/// (refused while booting, reset, interrupted) with bounded exponential
/// backoff until `deadline`; the final error reports every attempt.
fn connect(deadline: Instant) -> TcpStream {
    let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(250));
    let mut attempts = 0u32;
    loop {
        let port = resolve_port(deadline);
        attempts += 1;
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => return stream,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!(
                        "error: cannot connect to campaignd on port {port} after {attempts} \
                         attempt(s); last error: {e}"
                    );
                    std::process::exit(1);
                }
                backoff.sleep();
            }
        }
    }
}

fn connect_deadline() -> Instant {
    let secs = parsed_arg::<u64>("--connect-timeout-secs").unwrap_or(10);
    Instant::now() + Duration::from_secs(secs)
}

fn roundtrip(stream: &mut TcpStream, req: &Request) -> (String, Json) {
    let line = req.render();
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .unwrap_or_else(|e| {
            eprintln!("error: send failed: {e}");
            std::process::exit(1);
        });
    let mut reply = String::new();
    BufReader::new(stream.try_clone().expect("clone stream"))
        .read_line(&mut reply)
        .unwrap_or_else(|e| {
            eprintln!("error: recv failed: {e}");
            std::process::exit(1);
        });
    if reply.trim().is_empty() {
        eprintln!("error: daemon closed the connection");
        std::process::exit(1);
    }
    let json = parse_json(reply.trim()).unwrap_or_else(|e| {
        eprintln!("error: malformed response: {e}");
        std::process::exit(1);
    });
    (reply.trim_end().to_string(), json)
}

/// Whether a reply is a structured "back off and retry" signal: the
/// daemon shed the request under load (`"overloaded":true`) or hit a
/// transient persistence brown-out (`"transient":true`). Both leave
/// daemon state unchanged, so repeating the request is always safe.
fn is_retryable(json: &Json) -> bool {
    json.get("transient") == Some(&Json::Bool(true))
        || json.get("overloaded") == Some(&Json::Bool(true))
}

fn client(req: Request) {
    let deadline = connect_deadline();
    let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(250));
    loop {
        let mut stream = connect(deadline);
        let (raw, json) = roundtrip(&mut stream, &req);
        if is_retryable(&json) && Instant::now() < deadline {
            backoff.sleep();
            continue;
        }
        println!("{raw}");
        if json.get("ok") != Some(&Json::Bool(true)) {
            std::process::exit(1);
        }
        return;
    }
}

/// Polls `status` with exponential backoff until nothing is running or
/// awaiting an automatic retry (failed jobs still count: they revive
/// once their backoff drains), the timeout expires (exit 1), or the
/// daemon vanishes (exit 1). Quarantined jobs do not count — they need
/// a manual `retry`.
fn wait_drained() {
    let timeout = parsed_arg::<u64>("--timeout-secs").unwrap_or(300);
    let deadline = Instant::now() + Duration::from_secs(timeout);
    let mut backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(1));
    loop {
        let mut stream = connect(connect_deadline());
        let (_, json) = roundtrip(&mut stream, &Request::Status { id: None });
        if is_retryable(&json) {
            backoff.sleep();
            continue;
        }
        let pending = match json.get("jobs") {
            Some(Json::Arr(jobs)) => jobs
                .iter()
                .filter(|j| match j.get("state") {
                    Some(Json::Str(s)) => s == "running" || s == "failed",
                    _ => false,
                })
                .count(),
            _ => {
                eprintln!("error: malformed status response");
                std::process::exit(1);
            }
        };
        if pending == 0 {
            return;
        }
        if Instant::now() >= deadline {
            eprintln!("error: wait timed out with {pending} jobs still pending");
            std::process::exit(1);
        }
        backoff.sleep();
    }
}
