//! The **campaignd** service binary: a long-running daemon multiplexing
//! optimization jobs, plus its CLI client (DESIGN.md §10).
//!
//! Server:
//!
//! ```text
//! campaignd serve --dir PATH [--addr 127.0.0.1:0] [--port-file PATH]
//!                 [--threads N] [--checkpoint-every N]
//!                 [--slice-steps N]
//! ```
//!
//! Boots (or crash-recovers) the daemon over `--dir` and serves the
//! line-delimited JSON protocol until a client sends `shutdown`. With
//! `--port-file`, the bound port is written there once the listener is
//! live — the rendezvous for ephemeral (`:0`) ports. Setting
//! `CV_FAILPOINT=<ticks>` arms the `cv-journal` failpoint in real-kill
//! mode, exactly as the `campaign` binary does: the process aborts once
//! the durable write path has spent that many ticks. Restarting with
//! the same `--dir` replays the service journal and resumes every job
//! byte-identically (Contract 11; the CI `campaignd-smoke` job cycles
//! kill points and `diff -r`s against a never-killed run).
//!
//! Client (all take `--port N` or `--port-file PATH`, with
//! `--connect-timeout-secs` to wait for a booting daemon):
//!
//! ```text
//! campaignd submit   --kind adder --width 8 --tech nangate45
//!                    --method sa --budget 64 --seed 1
//!                    [--delay-weight 0.5]
//! campaignd status   [--id JOB]
//! campaignd wait     [--timeout-secs N]     # until no job is running
//! campaignd pause    --id JOB
//! campaignd resume   --id JOB
//! campaignd cancel   --id JOB
//! campaignd frontier --id JOB
//! campaignd ping
//! campaignd shutdown                        # graceful: checkpoints all
//! ```
//!
//! Every client subcommand prints the daemon's raw JSON response line
//! and exits nonzero when `ok` is false.

use cv_bench::perf::{parse_json, Json};
use cv_bench::service::{serve, Daemon, DaemonConfig, JobSpec, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

fn parsed_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    arg_value(name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a valid value, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn required(name: &str) -> String {
    arg_value(name).unwrap_or_else(|| {
        eprintln!("error: {name} is required");
        std::process::exit(2);
    })
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    match cmd.as_str() {
        "serve" => run_server(),
        "submit" => client(Request::Submit(submit_spec())),
        "status" => client(Request::Status {
            id: arg_value("--id"),
        }),
        "pause" => client(Request::Pause {
            id: required("--id"),
        }),
        "resume" => client(Request::Resume {
            id: required("--id"),
        }),
        "cancel" => client(Request::Cancel {
            id: required("--id"),
        }),
        "frontier" => client(Request::Frontier {
            id: required("--id"),
        }),
        "ping" => client(Request::Ping),
        "shutdown" => client(Request::Shutdown),
        "wait" => wait_drained(),
        other => {
            eprintln!(
                "usage: campaignd serve|submit|status|wait|pause|resume|cancel|frontier|ping|shutdown (got `{other}`)"
            );
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

fn run_server() {
    if cv_journal::failpoint::arm_from_env() {
        eprintln!("campaignd: CV_FAILPOINT armed — this run will be killed mid-write");
    }
    let dir: PathBuf = PathBuf::from(required("--dir"));
    let mut cfg = DaemonConfig::new(dir);
    if let Some(threads) = parsed_arg::<usize>("--threads") {
        cfg.threads = threads;
    }
    if let Some(every) = parsed_arg::<usize>("--checkpoint-every") {
        cfg.checkpoint_every = every;
    }
    if let Some(steps) = parsed_arg::<usize>("--slice-steps") {
        cfg.slice_steps = steps;
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let port_file = arg_value("--port-file").map(PathBuf::from);

    let daemon = Daemon::open(cfg).unwrap_or_else(|e| {
        eprintln!("campaignd: failed to open state directory: {e}");
        std::process::exit(1);
    });
    if let Err(e) = serve(daemon, &addr, port_file.as_deref()) {
        eprintln!("campaignd: serving failed: {e}");
        std::process::exit(1);
    }
    eprintln!("campaignd: shut down cleanly");
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

fn submit_spec() -> JobSpec {
    let line = format!(
        r#"{{"cmd":"submit","job":{{"method":"{}","kind":"{}","width":{},"tech":"{}","delay_weight":{},"budget":{},"seed":{}}}}}"#,
        required("--method"),
        arg_value("--kind").unwrap_or_else(|| "adder".to_string()),
        parsed_arg::<usize>("--width").unwrap_or(8),
        required("--tech"),
        parsed_arg::<f64>("--delay-weight").unwrap_or(0.5),
        parsed_arg::<usize>("--budget").unwrap_or_else(|| {
            eprintln!("error: --budget is required");
            std::process::exit(2);
        }),
        parsed_arg::<u64>("--seed").unwrap_or(1),
    );
    match Request::parse(&line) {
        Ok(Request::Submit(spec)) => spec,
        Ok(_) => unreachable!("submit line parses as submit"),
        Err(e) => {
            eprintln!("error: invalid job: {e}");
            std::process::exit(2);
        }
    }
}

/// Resolves the daemon port from `--port` or `--port-file`, waiting for
/// the file to appear while the daemon boots.
fn resolve_port(deadline: Instant) -> u16 {
    if let Some(port) = parsed_arg::<u16>("--port") {
        return port;
    }
    let Some(pf) = arg_value("--port-file").map(PathBuf::from) else {
        eprintln!("error: --port or --port-file is required");
        std::process::exit(2);
    };
    loop {
        if let Ok(text) = std::fs::read_to_string(&pf) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return port;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("error: port file {} never appeared", pf.display());
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(deadline: Instant) -> TcpStream {
    loop {
        let port = resolve_port(deadline);
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => return stream,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("error: cannot connect to campaignd on port {port}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn connect_deadline() -> Instant {
    let secs = parsed_arg::<u64>("--connect-timeout-secs").unwrap_or(10);
    Instant::now() + Duration::from_secs(secs)
}

fn roundtrip(stream: &mut TcpStream, req: &Request, print: bool) -> Json {
    let line = req.render();
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .unwrap_or_else(|e| {
            eprintln!("error: send failed: {e}");
            std::process::exit(1);
        });
    let mut reply = String::new();
    BufReader::new(stream.try_clone().expect("clone stream"))
        .read_line(&mut reply)
        .unwrap_or_else(|e| {
            eprintln!("error: recv failed: {e}");
            std::process::exit(1);
        });
    if reply.trim().is_empty() {
        eprintln!("error: daemon closed the connection");
        std::process::exit(1);
    }
    if print {
        println!("{}", reply.trim_end());
    }
    parse_json(reply.trim()).unwrap_or_else(|e| {
        eprintln!("error: malformed response: {e}");
        std::process::exit(1);
    })
}

fn client(req: Request) {
    let mut stream = connect(connect_deadline());
    let json = roundtrip(&mut stream, &req, true);
    if json.get("ok") != Some(&Json::Bool(true)) {
        std::process::exit(1);
    }
}

/// Polls `status` until no job is running (all done or paused), the
/// timeout expires (exit 1), or the daemon vanishes (exit 1).
fn wait_drained() {
    let timeout = parsed_arg::<u64>("--timeout-secs").unwrap_or(300);
    let deadline = Instant::now() + Duration::from_secs(timeout);
    loop {
        let mut stream = connect(connect_deadline());
        let json = roundtrip(&mut stream, &Request::Status { id: None }, false);
        let running = match json.get("jobs") {
            Some(Json::Arr(jobs)) => jobs
                .iter()
                .filter(|j| j.get("state") == Some(&Json::Str("running".to_string())))
                .count(),
            _ => {
                eprintln!("error: malformed status response");
                std::process::exit(1);
            }
        };
        if running == 0 {
            return;
        }
        if Instant::now() >= deadline {
            eprintln!("error: wait timed out with {running} jobs still running");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}
