//! Regenerates **Figure 1**: a sample evolution of 32-bit adders as
//! CircuitVAE navigates its latent space, starting from the Sklansky
//! structure and ending at the lowest-cost design found.
//!
//! Usage: `fig1_evolution [--scale smoke|default|paper]`.

use circuitvae::CircuitVae;
use cv_bench::harness::{build_evaluator, vae_config, ExperimentSpec, Scale};
use cv_prefix::{mutate, render, topologies, CircuitKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_args();
    let budget = (160.0 * scale.budget_factor()) as usize;
    let width = 32;
    let spec = ExperimentSpec::standard(width, CircuitKind::Adder, 0.66, budget);
    let evaluator = build_evaluator(&spec);
    let mut rng = StdRng::seed_from_u64(1);

    // Initial dataset: Sklansky plus random designs near it.
    let sklansky = topologies::sklansky(width);
    let mut initial = vec![(sklansky.clone(), evaluator.evaluate(&sklansky).cost)];
    while initial.len() < budget / 4 {
        let g = mutate::random_grid(width, rng.gen_range(0.05..0.3), &mut rng);
        let c = evaluator.evaluate(&g).cost;
        initial.push((g, c));
    }
    println!("frame 0: Sklansky seed (cost {:.3})", initial[0].1);
    println!("{}", render::grid_ascii(&sklansky));

    let mut vae = CircuitVae::new(width, vae_config(&spec), initial, 12);
    let chunk = (budget - evaluator.counter().count()).max(4) / 4;
    for frame in 1..=4 {
        let _ = vae.run(&evaluator, chunk);
        let (best, cost) = vae.dataset().best().expect("dataset non-empty");
        println!(
            "frame {frame}: after {} simulations (cost {:.3}) — {}",
            evaluator.counter().count(),
            cost,
            render::summary_line(best)
        );
        println!("{}", render::grid_ascii(&best.legalized()));
    }
}
