//! The **campaign** orchestrator binary: a method×seed×width×tech grid
//! executed on the persistent driver pool, with per-round JSONL
//! telemetry, periodic checkpoints, and bit-exact resume.
//!
//! Every task runs its method through the step-based `SearchDriver`
//! engine; the campaign checkpoints each task every few simulations and
//! can be killed (or stopped deterministically with `--halt-after N`)
//! and re-run with the same `--dir` to continue exactly where it
//! stopped — the final JSONL/CSV outputs byte-match an uninterrupted
//! run (Contract 8; the CI campaign-smoke job enforces it).
//!
//! Emits under the campaign directory (default `results/campaign/`):
//! * `<task>.jsonl` — per-round telemetry `{task, round, sims, best}`,
//! * `<task>.done`  — binary outcome + frontier archive,
//! * `campaign_summary.csv` — one row per task (written on completion).
//!
//! Usage: `campaign [--scale smoke|default|paper] [--dir PATH]
//! [--halt-after N] [--threads N] [--fresh]`
//!
//! Fault injection: setting `CV_FAILPOINT=<ticks>` arms the
//! `cv-journal` failpoint harness in real-kill mode — the process
//! aborts once the durable write path has spent that many ticks (one
//! per byte written, one per fsync/rename/…). Re-running with the same
//! `--dir` (and no `CV_FAILPOINT`) must then resume to outputs
//! byte-identical to an uninterrupted run; the CI `crash-smoke` job
//! cycles several such kill points and `diff -r`s the directories.

use cv_bench::campaign::{
    run_campaign, summary_csv, CampaignConfig, CampaignTask, JOURNAL_MAX_BYTES,
};
use cv_bench::harness::{results_dir, ExperimentSpec, Method, Scale, TechLibrary};
use cv_prefix::CircuitKind;
use std::path::PathBuf;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    if cv_journal::failpoint::arm_from_env() {
        eprintln!("campaign: CV_FAILPOINT armed — this run will be killed mid-write");
    }
    let scale = Scale::from_args();
    let dir: PathBuf = arg_value("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("campaign"));
    let halt_after: Option<usize> = arg_value("--halt-after").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --halt-after expects an integer, got `{v}`");
            std::process::exit(2);
        })
    });
    let threads: usize = arg_value("--threads")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads expects an integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    if arg_flag("--fresh") {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let (widths, seeds): (&[usize], usize) = match scale {
        Scale::Smoke => (&[8], 1),
        Scale::Default => (&[8, 16], 2),
        Scale::Paper => (&[16, 32], 5),
    };
    let techs = [TechLibrary::Nangate45Like, TechLibrary::Scaled8nmLike];
    let methods = [
        Method::Sa,
        Method::Ga,
        Method::GaNsga2,
        Method::Random,
        Method::Rl,
        Method::CircuitVae,
    ];

    let mut tasks = Vec::new();
    for &tech in &techs {
        for &width in widths {
            let budget = (((8 * width) as f64) * scale.budget_factor())
                .round()
                .max(40.0) as usize;
            for &method in &methods {
                for s in 0..seeds as u64 {
                    let mut spec =
                        ExperimentSpec::standard(width, CircuitKind::Adder, 0.66, budget);
                    spec.tech = tech;
                    tasks.push(CampaignTask {
                        method,
                        spec,
                        seed: 1000 + s,
                    });
                }
            }
        }
    }

    let cfg = CampaignConfig {
        dir: Some(dir.clone()),
        checkpoint_every: match scale {
            Scale::Smoke => 10,
            Scale::Default | Scale::Paper => 50,
        },
        threads,
        halt_after,
        journal_max_bytes: JOURNAL_MAX_BYTES,
    };
    println!(
        "campaign: {} tasks ({} techs × {widths:?} × {} methods × {seeds} seeds), {} threads, dir {}",
        tasks.len(),
        techs.len(),
        methods.len(),
        cfg.threads,
        dir.display()
    );

    let results = run_campaign(&tasks, &cfg);
    let incomplete = results.iter().filter(|r| r.is_none()).count();
    if incomplete > 0 {
        println!(
            "campaign halted: {incomplete}/{} tasks pending; re-run with the same --dir to resume",
            tasks.len()
        );
        return;
    }

    println!(
        "{:>10} {:>5} {:>12} {:>6} {:>6} {:>12} {:>6}",
        "tech", "width", "method", "seed", "sims", "best", "front"
    );
    for (task, result) in tasks.iter().zip(&results) {
        let r = result.as_ref().expect("campaign completed");
        let tech = match task.spec.tech {
            TechLibrary::Nangate45Like => "nangate45",
            TechLibrary::Scaled8nmLike => "scaled8nm",
        };
        let sims = r.outcome.history.last().map_or(0, |&(s, _)| s);
        println!(
            "{:>10} {:>5} {:>12} {:>6} {:>6} {:>12.4} {:>6}",
            tech,
            task.spec.width,
            task.method.label(),
            task.seed,
            sims,
            r.outcome.best_cost,
            r.archive.len()
        );
    }
    let summary = dir.join("campaign_summary.csv");
    cv_journal::fs::write_atomic(&summary, summary_csv(&tasks, &results).as_bytes())
        .expect("write campaign summary");
    println!(
        "campaign OK: {} tasks complete; wrote {}",
        tasks.len(),
        summary.display()
    );
}
