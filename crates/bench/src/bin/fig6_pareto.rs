//! Regenerates **Figure 6**: area-delay Pareto frontiers of 31-bit
//! adders in a realistic setting — the scaled 8nm-like library with
//! per-bit IO timings captured from a datapath profile. Competitors:
//!
//! * CircuitVAE designs found at delay weights {0.3, 0.6, 0.95},
//! * the emulated commercial tool's portfolio frontier,
//! * classical human designs.
//!
//! As in the paper there is a *domain gap*: search evaluates with the
//! default flow, but all final designs are re-synthesized with a
//! heavier sign-off flow before plotting.
//!
//! Usage: `fig6_pareto [--scale smoke|default|paper]`.

use cv_bench::harness::{run_method, ExperimentSpec, Method, Scale, TechLibrary};
use cv_prefix::CircuitKind;
use cv_sta::IoTiming;
use cv_synth::{CommercialTool, PpaReport, SynthesisConfig, SynthesisFlow};

fn signoff_flow(io: &IoTiming) -> SynthesisFlow {
    let cfg = SynthesisConfig {
        io: io.clone(),
        max_fanout: 6,
        sizing_moves: 160,
        delay_weight: 0.6,
    };
    SynthesisFlow::with_config(
        TechLibrary::Scaled8nmLike.build(),
        CircuitKind::Adder,
        31,
        cfg,
    )
}

fn dominated(p: &PpaReport, others: &[(String, PpaReport)]) -> bool {
    others.iter().any(|(_, o)| {
        o.area_um2 <= p.area_um2 + 1e-9
            && o.delay_ns <= p.delay_ns + 1e-9
            && (o.area_um2 < p.area_um2 - 1e-9 || o.delay_ns < p.delay_ns - 1e-9)
    })
}

fn main() {
    let scale = Scale::from_args();
    let f = scale.budget_factor();
    let width = 31;
    let io = IoTiming::datapath_profile(width, 0.08);
    let signoff = signoff_flow(&io);

    // CircuitVAE designs across delay weights (paper: {0.3, 0.6, 0.95}).
    let mut vae_points: Vec<(String, PpaReport)> = Vec::new();
    for &dw in &[0.3, 0.6, 0.95] {
        let mut spec =
            ExperimentSpec::standard(width, CircuitKind::Adder, dw, (150.0 * f) as usize);
        spec.tech = TechLibrary::Scaled8nmLike;
        spec.io = io.clone();
        let out = run_method(Method::CircuitVae, &spec, 60 + (dw * 100.0) as u64);
        if let Some(g) = out.best_grid {
            let ppa = signoff.synthesize(&g);
            vae_points.push((format!("vae@w{dw}"), ppa));
        }
    }

    // Commercial tool frontier (re-synthesized with the same sign-off flow
    // for a fair plot).
    let tool = CommercialTool::new(
        TechLibrary::Scaled8nmLike.build(),
        CircuitKind::Adder,
        width,
        io.clone(),
    );
    let tool_points: Vec<(String, PpaReport)> = tool
        .pareto_front()
        .into_iter()
        .map(|d| (format!("tool:{}", d.label), d.ppa))
        .collect();

    // Human designs.
    let human_points: Vec<(String, PpaReport)> = tool
        .human_designs()
        .into_iter()
        .map(|(name, g)| (format!("human:{name}"), signoff.synthesize(&g)))
        .collect();

    let mut csv = String::from("group,label,area_um2,delay_ns\n");
    for (group, pts) in [
        ("CircuitVAE", &vae_points),
        ("CommercialTool", &tool_points),
        ("Human", &human_points),
    ] {
        println!("== {group} ==");
        for (label, p) in pts {
            println!(
                "  {label:<28} area {:>8.2} um2   delay {:>7.4} ns",
                p.area_um2, p.delay_ns
            );
            csv.push_str(&format!(
                "{group},{label},{:.3},{:.5}\n",
                p.area_um2, p.delay_ns
            ));
        }
    }
    std::fs::write(
        cv_bench::harness::results_dir().join("fig6_pareto.csv"),
        csv,
    )
    .expect("write csv");

    // Paper claim: CircuitVAE Pareto-dominates both competitors.
    let competitors: Vec<(String, PpaReport)> = vae_points.to_vec();
    let tool_dominated = tool_points
        .iter()
        .filter(|(_, p)| dominated(p, &competitors))
        .count();
    let human_dominated = human_points
        .iter()
        .filter(|(_, p)| dominated(p, &competitors))
        .count();
    let vae_dominated = vae_points
        .iter()
        .filter(|(_, p)| dominated(p, &tool_points) || dominated(p, &human_points))
        .count();
    println!(
        "\ndominance: VAE dominates {tool_dominated}/{} tool points and {human_dominated}/{} human points;\n\
         {vae_dominated}/{} VAE points are dominated by a competitor (paper: 0).",
        tool_points.len(),
        human_points.len(),
        vae_points.len()
    );
}
