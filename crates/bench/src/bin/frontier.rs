//! The **frontier campaign**: every search method, run as a
//! multi-objective frontier producer instead of a point optimizer.
//!
//! The paper's headline result is the whole area-delay tradeoff curve —
//! CircuitVAE dominates SA/GA/RL across the frontier at every compute
//! budget. This binary regenerates that comparison end-to-end: each
//! method gets the **same total simulation budget** per panel
//! (tech × width); scalar methods walk a shared delay-weight ladder
//! (CircuitVAE via `run_weight_sweep` with warm-started restarts, the
//! baselines one fresh run per weight), while NSGA-II-mode GA spends
//! the whole budget in one natively multi-objective run. A logging
//! [`ParetoArchive`] attached to every evaluator captures each method's
//! frontier as a by-product of its ordinary search.
//!
//! Emits under `results/`:
//! * `frontier_points.csv` — each method's final front per panel,
//! * `frontier_hv.csv`     — hypervolume vs simulations (shared
//!   per-panel reference point),
//! * `frontier_summary.json` — front sizes, final hypervolume, and IGD
//!   against the panel's combined reference front.
//!
//! Usage: `frontier [--scale smoke|default|paper]` — smoke runs width 8
//! only (seconds; the CI determinism job runs it twice and diffs).

use circuitvae::{run_weight_sweep, SweepConfig};
use cv_bench::harness::{
    build_evaluator, build_evaluator_sweep, results_dir, vae_config, ExperimentSpec, Method, Scale,
    TechLibrary,
};
use cv_bench::stats::{checkpoints, hypervolume_within, igd, nadir_reference, pareto_filter};
use cv_prefix::CircuitKind;
use cv_synth::{Observation, ParetoArchive, SharedArchive};

/// One method's captured frontier on one panel.
struct MethodFrontier {
    method: Method,
    /// Final front as (area, delay), ascending area.
    front: Vec<(f64, f64)>,
    /// Every counted simulation, cumulative across the method's budget.
    observations: Vec<Observation>,
}

fn tech_label(tech: TechLibrary) -> &'static str {
    match tech {
        TechLibrary::Nangate45Like => "nangate45",
        TechLibrary::Scaled8nmLike => "scaled8nm",
    }
}

fn spec_for(tech: TechLibrary, width: usize, delay_weight: f64, budget: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::standard(width, CircuitKind::Adder, delay_weight, budget);
    spec.tech = tech;
    spec
}

/// Runs one scalar method over the weight ladder, one fresh evaluator
/// per weight, all feeding `archive` with a cumulative simulation axis.
fn run_ladder(
    method: Method,
    tech: TechLibrary,
    width: usize,
    weights: &[f64],
    per_weight_budget: usize,
    seed: u64,
    archive: &SharedArchive,
) {
    let mut consumed = 0usize;
    // SA/GA/RL take their objective from the evaluator, so one spec and
    // a `weight_sweep`-built ladder of evaluators covers every rung.
    let spec = spec_for(tech, width, weights[0], per_weight_budget);
    for (i, evaluator) in build_evaluator_sweep(&spec, weights)
        .into_iter()
        .enumerate()
    {
        archive.lock().set_sim_offset(consumed);
        evaluator.attach_archive(archive.clone());
        let _ = cv_bench::harness::run_method_on(method, &spec, seed + i as u64, &evaluator);
        consumed += evaluator.counter().count();
        evaluator.detach_archive();
    }
}

/// One panel: every method as an independent unit on the persistent
/// campaign pool (each unit owns its evaluators and archive, so pooled
/// execution is bit-identical to the old serial loop; results come back
/// in method order).
fn run_panel(
    tech: TechLibrary,
    width: usize,
    weights: &[f64],
    budget: usize,
    seed: u64,
) -> Vec<MethodFrontier> {
    let per_weight = (budget / weights.len()).max(1);
    let total = per_weight * weights.len();
    let methods = [
        Method::CircuitVae,
        Method::Sa,
        Method::Ga,
        Method::GaNsga2,
        Method::Rl,
    ];
    let units: Vec<Box<dyn FnOnce() -> MethodFrontier + Send>> = methods
        .iter()
        .enumerate()
        .map(|(mi, &method)| {
            let weights = weights.to_vec();
            let mseed = seed + 37 * mi as u64;
            Box::new(move || {
                let archive = ParetoArchive::new().with_log().into_shared();
                match method {
                    Method::CircuitVae => {
                        let spec = spec_for(tech, width, weights[0], per_weight);
                        let sweep = SweepConfig::new(weights.to_vec(), per_weight);
                        let _ = run_weight_sweep(
                            width,
                            &vae_config(&spec),
                            &sweep,
                            |w| {
                                let mut s = spec.clone();
                                s.delay_weight = w;
                                build_evaluator(&s)
                            },
                            Some(&archive),
                            mseed,
                        );
                    }
                    Method::GaNsga2 => {
                        // Natively multi-objective: the whole budget in
                        // one run.
                        let spec = spec_for(tech, width, 0.5, total);
                        let evaluator = build_evaluator(&spec);
                        evaluator.attach_archive(archive.clone());
                        let _ = cv_bench::harness::run_method_on(method, &spec, mseed, &evaluator);
                        evaluator.detach_archive();
                    }
                    _ => run_ladder(method, tech, width, &weights, per_weight, mseed, &archive),
                }
                let arch = archive.lock();
                MethodFrontier {
                    method,
                    front: arch.objectives(),
                    observations: arch.observations().to_vec(),
                }
            }) as Box<dyn FnOnce() -> MethodFrontier + Send>
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    cv_bench::campaign::run_units(units, threads)
}

fn main() {
    let scale = Scale::from_args();
    let (widths, weights): (&[usize], Vec<f64>) = match scale {
        Scale::Smoke => (&[8], vec![0.3, 0.7]),
        Scale::Default | Scale::Paper => (&[16, 32], vec![0.2, 0.5, 0.8]),
    };
    let techs = [TechLibrary::Nangate45Like, TechLibrary::Scaled8nmLike];

    let mut points_csv = String::from("tech,width,method,area_um2,delay_ns\n");
    let mut hv_csv = String::from("tech,width,method,sims,hypervolume\n");
    let mut json = String::from("{\n  \"panels\": [\n");
    let mut first_panel = true;
    let mut degenerate: Vec<String> = Vec::new();
    let mut vae_losses: Vec<String> = Vec::new();

    for &tech in &techs {
        for &width in widths {
            let budget = (((8 * width) as f64) * scale.budget_factor())
                .round()
                .max(40.0) as usize;
            let fronts = run_panel(tech, width, &weights, budget, 1000 + width as u64);
            let panel = format!("{} w{width}", tech_label(tech));
            println!("== panel {panel} (budget {budget}/method, weights {weights:?}) ==");

            // Shared reference point: nadir over every method's
            // observations, padded 10% — all hypervolumes comparable.
            let all_obs: Vec<(f64, f64)> = fronts
                .iter()
                .flat_map(|f| f.observations.iter().map(|o| (o.area_um2, o.delay_ns)))
                .collect();
            let reference = nadir_reference(&all_obs, 0.1).expect("panel produced observations");
            // Combined reference front across methods, for IGD.
            let combined = pareto_filter(&all_obs);
            let marks = checkpoints(budget, 4);

            let mut panel_json = format!(
                "    {{\n      \"tech\": \"{}\", \"width\": {width}, \"budget\": {budget},\n      \"reference\": [{:.4}, {:.5}],\n      \"methods\": [\n",
                tech_label(tech),
                reference.0,
                reference.1
            );
            let mut vae_hv = 0.0f64;
            let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
            for (fi, f) in fronts.iter().enumerate() {
                let label = f.method.label();
                for &(a, d) in &f.front {
                    points_csv.push_str(&format!(
                        "{},{width},{label},{a:.3},{d:.5}\n",
                        tech_label(tech)
                    ));
                }
                for &m in &marks {
                    let hv = hypervolume_within(&f.observations, m, reference);
                    hv_csv.push_str(&format!(
                        "{},{width},{label},{m},{hv:.5}\n",
                        tech_label(tech)
                    ));
                }
                let hv_final = hypervolume_within(&f.observations, usize::MAX, reference);
                let igd_final = igd(&f.front, &combined).unwrap_or(f64::INFINITY);
                if f.method == Method::CircuitVae {
                    vae_hv = hv_final;
                }
                rows.push((label.to_string(), f.front.len(), hv_final, igd_final));
                panel_json.push_str(&format!(
                    "        {{\"method\": \"{label}\", \"front_size\": {}, \"hypervolume\": {hv_final:.5}, \"igd\": {igd_final:.5}}}{}\n",
                    f.front.len(),
                    if fi + 1 == fronts.len() { "" } else { "," }
                ));
            }
            panel_json.push_str("      ]\n    }");
            if !first_panel {
                json.push_str(",\n");
            }
            json.push_str(&panel_json);
            first_panel = false;

            println!(
                "{:>12} {:>6} {:>12} {:>10}",
                "method", "front", "hypervolume", "igd"
            );
            for (label, n, hv, igd_v) in &rows {
                println!("{label:>12} {n:>6} {hv:>12.4} {igd_v:>10.4}");
                if *n < 5 && width >= 32 {
                    degenerate.push(format!("{panel}: {label} front has {n} < 5 points"));
                }
                if label != "CircuitVAE" && *hv > vae_hv + 1e-9 {
                    vae_losses.push(format!(
                        "{panel}: {label} hypervolume {hv:.4} > CircuitVAE {vae_hv:.4}"
                    ));
                }
            }
            println!();
        }
    }
    json.push_str("\n  ]\n}\n");

    // Published through the audited durable write path (Contract 10):
    // a crash mid-publication can never leave a torn CSV for the
    // determinism job to diff.
    let dir = results_dir();
    cv_journal::fs::write_atomic(&dir.join("frontier_points.csv"), points_csv.as_bytes())
        .expect("write points csv");
    cv_journal::fs::write_atomic(&dir.join("frontier_hv.csv"), hv_csv.as_bytes())
        .expect("write hv csv");
    cv_journal::fs::write_atomic(&dir.join("frontier_summary.json"), json.as_bytes())
        .expect("write summary json");
    println!(
        "wrote frontier_points.csv, frontier_hv.csv, frontier_summary.json under {}",
        dir.display()
    );

    // Acceptance summary. The paper's claim is stated (and gated) at
    // the real panel sizes: at smoke scale (width 8, determinism-job
    // territory) the lines are informational only; at default/paper
    // scale a violation fails the process so the claim is enforced,
    // not just printed.
    for d in &degenerate {
        println!("DEGENERATE FRONT: {d}");
    }
    for l in &vae_losses {
        println!("HV LOSS: {l}");
    }
    if degenerate.is_empty() && vae_losses.is_empty() {
        println!("frontier OK: all fronts non-degenerate; CircuitVAE hypervolume >= every baseline at equal budget");
    } else if scale == Scale::Smoke {
        println!(
            "(smoke scale: acceptance checks are informational only — run --scale default to gate)"
        );
    } else {
        eprintln!("frontier FAILED: acceptance criteria violated at {scale:?} scale");
        std::process::exit(1);
    }
}
