//! Regenerates **Figure 7**: cost vs. simulation budget for the 26-bit
//! gray-to-binary converter at delay weight 0.6, same four methods as
//! Fig. 3.
//!
//! Usage: `fig7_gray2bin [--scale smoke|default|paper]`.

use cv_bench::harness::{run_method_seeds, ExperimentSpec, Method, Scale};
use cv_bench::stats::{checkpoints, render_series_csv, render_series_table};
use cv_prefix::CircuitKind;

fn main() {
    let scale = Scale::from_args();
    let seeds = scale.seeds();
    let budget = (300.0 * scale.budget_factor()) as usize;
    let spec = ExperimentSpec::standard(26, CircuitKind::GrayToBinary, 0.6, budget);

    let curves: Vec<_> = Method::PAPER_SET
        .iter()
        .map(|&m| run_method_seeds(m, &spec, seeds))
        .collect();
    let cps = checkpoints(budget, 8);
    println!(
        "{}",
        render_series_table(
            &format!("Fig.7: 26-bit gray-to-binary, delay_weight=0.6, budget={budget}"),
            &curves,
            &cps
        )
    );
    std::fs::write(
        cv_bench::harness::results_dir().join("fig7_gray2bin.csv"),
        render_series_csv(&curves, &cps),
    )
    .expect("write csv");

    let finals: Vec<(String, f64)> = curves
        .iter()
        .map(|c| {
            (
                c.label.clone(),
                c.final_quartiles().map_or(f64::INFINITY, |q| q.median),
            )
        })
        .collect();
    let winner = finals.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "winner: {} ({:.3})  (paper: CircuitVAE)",
        winner.0, winner.1
    );
}
