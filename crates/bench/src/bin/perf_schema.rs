//! Validates `results/bench_perf.json` against the cv-bench perf
//! schema, optionally gating on what the report *claims*. CI runs this
//! right after the `gemm` bench so a malformed or missing report fails
//! the job instead of silently uploading garbage, and again with gates
//! so a report that quietly lost its parallelism (wrong pool size, no
//! batch speedup) fails too.
//!
//! Usage:
//!
//! ```text
//! perf_schema [path]
//!     [--expect-pool-threads N]
//!     [--min-batch-speedup X --at-threads T]
//!     [--min-simd-speedup X]
//! ```
//!
//! `path` defaults to `results/bench_perf.json`.
//! `--expect-pool-threads` asserts the report's `pool_threads` field.
//! `--min-batch-speedup X --at-threads T` asserts the `evaluate_batch`
//! scaling curve has a point at exactly `T` threads whose headline
//! speedup is at least `X` (wall or modeled per the point's recorded
//! basis).
//! `--min-simd-speedup X` asserts the strict-mode SIMD headline
//! (`simd_scaling.headline.speedup`, already cross-checked against the
//! per-level tables by the validator) is at least `X` — but only when
//! the report's `cpu_features` lists `avx2`; on other hosts the gate is
//! skipped with an explicit label and exit 0, never silently.

use cv_bench::perf::{
    parse_json, report_has_cpu_feature, scaling_speedup_at, simd_headline_speedup, validate_report,
    Json,
};

fn fail(msg: &str) -> ! {
    eprintln!("perf_schema: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut path = "results/bench_perf.json".to_string();
    let mut expect_pool: Option<usize> = None;
    let mut min_speedup: Option<f64> = None;
    let mut at_threads: Option<usize> = None;
    let mut min_simd: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--expect-pool-threads" => {
                expect_pool = Some(value("--expect-pool-threads").parse().unwrap_or_else(|e| {
                    fail(&format!("--expect-pool-threads: invalid count: {e}"))
                }));
            }
            "--min-batch-speedup" => {
                min_speedup = Some(
                    value("--min-batch-speedup")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--min-batch-speedup: invalid: {e}"))),
                );
            }
            "--at-threads" => {
                at_threads = Some(
                    value("--at-threads")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--at-threads: invalid count: {e}"))),
                );
            }
            "--min-simd-speedup" => {
                min_simd = Some(
                    value("--min-simd-speedup")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--min-simd-speedup: invalid: {e}"))),
                );
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            p => path = p.to_string(),
        }
    }
    if min_speedup.is_some() != at_threads.is_some() {
        fail("--min-batch-speedup and --at-threads must be passed together");
    }

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if let Err(e) = validate_report(&text) {
        fail(&format!("{path} violates the schema: {e}"));
    }
    let doc = parse_json(&text).expect("validated report parses");

    if let Some(expected) = expect_pool {
        match doc.get("pool_threads") {
            Some(Json::Num(n)) if *n == expected as f64 => {}
            other => fail(&format!(
                "{path}: expected pool_threads {expected}, report says {other:?}"
            )),
        }
    }
    if let (Some(min), Some(threads)) = (min_speedup, at_threads) {
        match scaling_speedup_at(&doc, "evaluate_batch", threads) {
            Some(s) if s >= min => {
                println!("perf_schema: evaluate_batch speedup at {threads} threads: {s:.2}x >= {min:.2}x");
            }
            Some(s) => fail(&format!(
                "{path}: evaluate_batch speedup at {threads} threads is {s:.2}x, required >= {min:.2}x"
            )),
            None => fail(&format!(
                "{path}: no evaluate_batch scaling point at {threads} threads"
            )),
        }
    }
    if let Some(min) = min_simd {
        if !report_has_cpu_feature(&doc, "avx2") {
            // Loud, labeled, exit 0: the gate quantifies the AVX2 tier,
            // which this host cannot measure. Never a silent pass.
            println!(
                "perf_schema: SKIPPED --min-simd-speedup {min:.2} — report's cpu_features \
                 has no avx2 (the strict SIMD headline gate only applies to AVX2 hosts)"
            );
        } else {
            match simd_headline_speedup(&doc) {
                Some(s) if s >= min => {
                    println!("perf_schema: strict SIMD headline speedup {s:.2}x >= {min:.2}x");
                }
                Some(s) => fail(&format!(
                    "{path}: strict SIMD headline speedup is {s:.2}x, required >= {min:.2}x"
                )),
                None => fail(&format!(
                    "{path}: cpu_features reports avx2 but the report carries no \
                     simd_scaling headline"
                )),
            }
        }
    }
    println!("perf schema OK: {path}");
}
