//! Validates `results/bench_perf.json` against the cv-bench perf
//! schema. CI runs this right after the `gemm` bench so a malformed or
//! missing report fails the job instead of silently uploading garbage.
//!
//! Usage: `perf_schema [path]` (default `results/bench_perf.json`).

use cv_bench::perf::validate_report;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/bench_perf.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_schema: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_report(&text) {
        Ok(()) => println!("perf schema OK: {path}"),
        Err(e) => {
            eprintln!("perf_schema: {path} violates the schema: {e}");
            std::process::exit(1);
        }
    }
}
