//! Regenerates **Figure 4**: ablations of CircuitVAE's training and
//! search components on 32-bit adders at delay weight 0.66 with the
//! largest initial dataset:
//!
//! * full method (cost-weighted init + data reweighting),
//! * data reweighting removed,
//! * search initialized from the prior,
//! * search initialized from Sklansky's latent encoding.
//!
//! Usage: `fig4_ablations [--scale smoke|default|paper]`.

use circuitvae::InitStrategy;
use cv_bench::harness::{run_vae_variant, ExperimentSpec, Scale};
use cv_bench::stats::{checkpoints, render_series_table, CurveSet};
use cv_prefix::CircuitKind;

fn main() {
    let scale = Scale::from_args();
    let seeds = scale.seeds();
    let f = scale.budget_factor();
    let budget = (300.0 * f) as usize;
    let mut spec = ExperimentSpec::standard(32, CircuitKind::Adder, 0.66, budget);
    spec.init_fraction = 0.4; // "largest initial dataset"

    type Variant = (&'static str, Box<dyn Fn(&mut circuitvae::CircuitVaeConfig)>);
    let variants: Vec<Variant> = vec![
        ("full", Box::new(|_c: &mut circuitvae::CircuitVaeConfig| {})),
        ("no-reweight", Box::new(|c| c.reweight_data = false)),
        ("init-prior", Box::new(|c| c.init = InitStrategy::Prior)),
        (
            "init-sklansky",
            Box::new(|c| c.init = InitStrategy::Sklansky),
        ),
    ];

    let mut curves = Vec::new();
    for (label, mutator) in &variants {
        let outcomes: Vec<_> = (0..seeds as u64)
            .map(|s| run_vae_variant(&spec, 3000 + s, mutator))
            .collect();
        curves.push(CurveSet::new(*label, outcomes));
    }

    let cps = checkpoints(budget, 8);
    println!(
        "{}",
        render_series_table(
            &format!("Fig.4 ablations: 32-bit, delay_weight=0.66, budget={budget}"),
            &curves,
            &cps
        )
    );
    let csv = cv_bench::stats::render_series_csv(&curves, &cps);
    std::fs::write(
        cv_bench::harness::results_dir().join("fig4_ablations.csv"),
        csv,
    )
    .expect("write csv");

    // Paper claim: the full method matches or beats every ablation.
    let finals: Vec<(String, f64)> = curves
        .iter()
        .map(|c| {
            (
                c.label.clone(),
                c.final_quartiles().map_or(f64::INFINITY, |q| q.median),
            )
        })
        .collect();
    println!("final medians:");
    for (l, v) in &finals {
        println!("  {l:<14} {v:.3}");
    }
}
