//! Regenerates **Table 1**: detailed comparison in the 64-bit,
//! high-budget setting — cost / area / delay (median and IQR across
//! seeds) of each method's best adder, and the "VAE speedup" column
//! (simulations a method needed for its best adder divided by the
//! simulations CircuitVAE needed to match it).
//!
//! Usage: `table1 [--scale smoke|default|paper]`.

use cv_bench::harness::{build_evaluator, run_method, ExperimentSpec, Method, Scale};
use cv_bench::stats::median_iqr;
use cv_prefix::CircuitKind;
use cv_synth::SearchOutcome;

fn main() {
    let scale = Scale::from_args();
    let seeds = scale.seeds();
    let f = scale.budget_factor();
    let budget = (250.0 * f) as usize;
    let width = 64;

    println!(
        "{:>5} {:<11} {:>22} {:>22} {:>24} {:>20}",
        "w", "Alg.", "Cost", "Area (um2)", "Delay (ns)", "VAE speedup"
    );
    let mut rows = String::from("omega,method,cost_med,area_med,delay_med,speedup_med\n");

    for &dw in &[0.33, 0.66, 0.95] {
        let spec = ExperimentSpec::standard(width, CircuitKind::Adder, dw, budget);
        // Run every method across seeds; keep outcomes to compute speedups.
        let all: Vec<(Method, Vec<SearchOutcome>)> = Method::PAPER_SET
            .iter()
            .map(|&m| {
                let outs: Vec<SearchOutcome> = (0..seeds as u64)
                    .map(|s| run_method(m, &spec, 2000 + s))
                    .collect();
                (m, outs)
            })
            .collect();
        let vae_outs = &all[0].1;

        for (m, outs) in &all {
            let costs: Vec<f64> = outs.iter().map(|o| o.best_cost).collect();
            // Area/delay of each seed's best design (cached re-evaluation).
            let ev = build_evaluator(&spec);
            let (mut areas, mut delays) = (Vec::new(), Vec::new());
            for o in outs {
                if let Some(g) = &o.best_grid {
                    let rec = ev.evaluate(g);
                    areas.push(rec.ppa.area_um2);
                    delays.push(rec.ppa.delay_ns);
                }
            }
            // Speedup vs CircuitVAE: sims_m(best_m) / sims_vae(<= best_m).
            let speedups: Vec<f64> = if *m == Method::CircuitVae {
                vec![]
            } else {
                outs.iter()
                    .flat_map(|o| {
                        let t_m = o.sims_to_reach(o.best_cost)?;
                        // Median VAE seed that matches this cost.
                        let t_vaes: Vec<f64> = vae_outs
                            .iter()
                            .filter_map(|v| v.sims_to_reach(o.best_cost))
                            .map(|t| t as f64)
                            .collect();
                        let t_vae = median_iqr(&t_vaes)?.median;
                        Some(t_m as f64 / t_vae.max(1.0))
                    })
                    .collect()
            };

            let fmt =
                |vals: &[f64]| -> String { median_iqr(vals).map_or("-".into(), |q| q.to_string()) };
            println!(
                "{:>5} {:<11} {:>22} {:>22} {:>24} {:>20}",
                dw,
                m.label(),
                fmt(&costs),
                fmt(&areas),
                fmt(&delays),
                if *m == Method::CircuitVae {
                    "-".into()
                } else {
                    fmt(&speedups)
                }
            );
            rows.push_str(&format!(
                "{dw},{},{:.4},{:.2},{:.4},{:.3}\n",
                m.label(),
                median_iqr(&costs).map_or(f64::NAN, |q| q.median),
                median_iqr(&areas).map_or(f64::NAN, |q| q.median),
                median_iqr(&delays).map_or(f64::NAN, |q| q.median),
                median_iqr(&speedups).map_or(f64::NAN, |q| q.median),
            ));
        }
        println!();
    }
    let path = cv_bench::harness::results_dir().join("table1.csv");
    std::fs::write(path, rows).expect("write csv");
}
