//! Regenerates **Figure 8**: the best designs CircuitVAE finds for the
//! 26-bit gray-to-binary converter (ω = 0.6) and the 32-bit adder
//! (ω = 0.66), rendered as grids, plus the structural statistics that
//! demonstrate the two tasks favour different shapes.
//!
//! Usage: `fig8_best_designs [--scale smoke|default|paper]`.

use cv_bench::harness::{run_method, ExperimentSpec, Method, Scale};
use cv_prefix::{render, CircuitKind, GridMetrics};

fn main() {
    let scale = Scale::from_args();
    let budget = (200.0 * scale.budget_factor()) as usize;

    let tasks = [
        (
            "26-bit gray-to-binary (w=0.6)",
            ExperimentSpec::standard(26, CircuitKind::GrayToBinary, 0.6, budget),
        ),
        (
            "32-bit adder (w=0.66)",
            ExperimentSpec::standard(32, CircuitKind::Adder, 0.66, budget),
        ),
    ];

    let mut metrics = Vec::new();
    for (title, spec) in &tasks {
        let out = run_method(Method::CircuitVae, spec, 88);
        let grid = out
            .best_grid
            .expect("search must produce a design")
            .legalized();
        println!("== Best design: {title} (cost {:.3}) ==", out.best_cost);
        println!("{}", render::summary_line(&grid));
        println!("{}", render::grid_ascii(&grid));
        println!("levels:\n{}", render::levels_ascii(&grid));
        metrics.push(GridMetrics::of(&grid));
    }

    // The paper's point: the two best designs are structurally different.
    let (g2b, adder) = (&metrics[0], &metrics[1]);
    println!("structural comparison (normalized by width):");
    println!(
        "  gray-to-binary: ops/width {:.2}, depth {}",
        g2b.ops as f64 / g2b.width as f64,
        g2b.depth
    );
    println!(
        "  adder:          ops/width {:.2}, depth {}",
        adder.ops as f64 / adder.width as f64,
        adder.depth
    );
}
