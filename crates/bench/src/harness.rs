//! Method dispatch: run any search method on any experiment setting.

use circuitvae::{CircuitVae, CircuitVaeConfig};
use cv_baselines::ga_initial_dataset;
use cv_cells::{nangate45_like, scaled_8nm_like, CellLibrary};
use cv_prefix::CircuitKind;
use cv_sta::IoTiming;
use cv_synth::{
    CachedEvaluator, CostParams, Objective, SearchOutcome, SynthesisConfig, SynthesisFlow,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which technology library an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TechLibrary {
    /// The Nangate45-like 45 nm stand-in (paper §5.1–5.3, 5.5).
    Nangate45Like,
    /// The scaled 8 nm-like stand-in (paper §5.4, Fig. 6).
    Scaled8nmLike,
}

impl TechLibrary {
    /// Instantiates the library.
    pub fn build(self) -> CellLibrary {
        match self {
            TechLibrary::Nangate45Like => nangate45_like(),
            TechLibrary::Scaled8nmLike => scaled_8nm_like(),
        }
    }
}

/// Experiment scale: how much compute a binary spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale smoke run (CI / criterion).
    Smoke,
    /// Minutes-scale default (the committed EXPERIMENTS.md numbers).
    Default,
    /// Closer to paper budgets (tens of minutes on a laptop).
    Paper,
}

impl Scale {
    /// Parses `--scale smoke|default|paper` (or `--scale=<value>`) from
    /// process args.
    ///
    /// Exits with status 2 on an unrecognized or missing value: silently
    /// falling back could turn a typo'd smoke run into a minutes-long one.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            if let Some(v) = args[i].strip_prefix("--scale=") {
                return Scale::parse_or_exit(v);
            }
            if args[i] == "--scale" {
                return match args.get(i + 1) {
                    Some(v) => Scale::parse_or_exit(v),
                    None => {
                        eprintln!("error: --scale requires a value (smoke|default|paper)");
                        std::process::exit(2);
                    }
                };
            }
            i += 1;
        }
        Scale::Default
    }

    fn parse_or_exit(value: &str) -> Scale {
        match value {
            "smoke" => Scale::Smoke,
            "default" => Scale::Default,
            "paper" => Scale::Paper,
            other => {
                eprintln!("error: unknown --scale `{other}` (expected smoke|default|paper)");
                std::process::exit(2);
            }
        }
    }

    /// Simulation budget multiplier relative to `Default`.
    pub fn budget_factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.15,
            Scale::Default => 1.0,
            Scale::Paper => 4.0,
        }
    }

    /// Number of random seeds per setting (the paper uses 5; `Default`
    /// is sized for a single-core CI box).
    pub fn seeds(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 2,
            Scale::Paper => 5,
        }
    }
}

/// One experiment setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Circuit bitwidth.
    pub width: usize,
    /// Adder or gray-to-binary.
    pub kind: CircuitKind,
    /// Delay weight ω.
    pub delay_weight: f64,
    /// Total simulation budget per run (initial data included, as in the
    /// paper).
    pub budget: usize,
    /// Fraction of the budget spent on the GA-built initial dataset for
    /// VAE/BO (paper: 1k–30k of up to 70k).
    pub init_fraction: f64,
    /// IO timing constraints.
    pub io: IoTiming,
    /// Technology library.
    pub tech: TechLibrary,
}

impl ExperimentSpec {
    /// A standard-benchmark spec (uniform IO, 45 nm-like library).
    pub fn standard(width: usize, kind: CircuitKind, delay_weight: f64, budget: usize) -> Self {
        ExperimentSpec {
            width,
            kind,
            delay_weight,
            budget,
            init_fraction: 0.25,
            io: IoTiming::uniform(width),
            tech: TechLibrary::Nangate45Like,
        }
    }
}

/// Search methods under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// CircuitVAE with prior-regularized gradient search.
    CircuitVae,
    /// The same VAE with GP-EI acquisition.
    LatentBo,
    /// Genetic algorithm on bitvectors.
    Ga,
    /// NSGA-II-mode genetic algorithm: non-dominated sorting + crowding
    /// selection on (area, delay) — the natively multi-objective
    /// baseline of the frontier campaign.
    GaNsga2,
    /// PrefixRL-lite DQN.
    Rl,
    /// Simulated annealing (extra baseline).
    Sa,
    /// Random search (extra baseline).
    Random,
}

impl Method {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Method::CircuitVae => "CircuitVAE",
            Method::LatentBo => "Bayesian",
            Method::Ga => "GA",
            Method::GaNsga2 => "GA-NSGA2",
            Method::Rl => "RL",
            Method::Sa => "SA",
            Method::Random => "Random",
        }
    }

    /// The four methods compared in Figs. 3 and 7.
    pub const PAPER_SET: [Method; 4] =
        [Method::CircuitVae, Method::LatentBo, Method::Rl, Method::Ga];
}

/// Builds a fresh cached evaluator for a spec.
pub fn build_evaluator(spec: &ExperimentSpec) -> CachedEvaluator {
    let mut config = SynthesisConfig::for_width(spec.width);
    config.io = spec.io.clone();
    config.delay_weight = spec.delay_weight;
    let flow = SynthesisFlow::with_config(spec.tech.build(), spec.kind, spec.width, config);
    CachedEvaluator::new(Objective::new(flow, CostParams::new(spec.delay_weight)))
}

/// One fresh evaluator per delay weight, sharing the spec's flow
/// structure — the scalarization ladder of the frontier campaign,
/// built through [`Objective::weight_sweep`] (each rung's sizing
/// weight is aligned to its own ω). The rung built for the spec's own
/// `delay_weight` is identical to [`build_evaluator`]'s.
pub fn build_evaluator_sweep(spec: &ExperimentSpec, weights: &[f64]) -> Vec<CachedEvaluator> {
    let mut config = SynthesisConfig::for_width(spec.width);
    config.io = spec.io.clone();
    config.delay_weight = spec.delay_weight;
    let flow = SynthesisFlow::with_config(spec.tech.build(), spec.kind, spec.width, config);
    Objective::weight_sweep(flow, weights)
        .into_iter()
        .map(CachedEvaluator::new)
        .collect()
}

/// A scaled-down CircuitVAE config appropriate for the spec's width and
/// the harness's CPU budget.
pub fn vae_config(spec: &ExperimentSpec) -> CircuitVaeConfig {
    let mut cfg = CircuitVaeConfig::for_width(spec.width);
    // Keep per-round work proportional to the budget so small budgets
    // still complete several acquisition rounds on modest CPUs. The
    // architecture stays the paper's CNN for widths >= 24.
    if spec.budget < 120 {
        cfg = CircuitVaeConfig::smoke(spec.width);
    } else if spec.budget < 600 {
        cfg.latent_dim = 16;
        cfg.warmup_steps = 60;
        cfg.train_steps_per_round = 20;
        cfg.batch_size = 32;
        cfg.trajectories = 12;
        cfg.search_steps = 30;
        cfg.capture_every = 10;
    }
    cfg.threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(16));
    cfg
}

/// Runs one method on one spec with one seed, on a fresh evaluator.
/// Returns the merged best-so-far curve (initial-dataset simulations are
/// charged to the curve, as in the paper).
pub fn run_method(method: Method, spec: &ExperimentSpec, seed: u64) -> SearchOutcome {
    run_method_on(method, spec, seed, &build_evaluator(spec))
}

/// [`run_method`] against a caller-provided evaluator — the hook the
/// `incremental` bench uses to A/B the session-backed evaluator against
/// [`CachedEvaluator::new_reference`]. Outcomes are identical either way
/// (the incremental path is bit-for-bit equal); only throughput differs.
///
/// Every method runs through its step [`SearchDriver`] (built by
/// [`crate::driver::make_driver`]); this is the uninterrupted
/// `run(budget)` form of the driver loop.
///
/// [`SearchDriver`]: circuitvae::driver::SearchDriver
pub fn run_method_on(
    method: Method,
    spec: &ExperimentSpec,
    seed: u64,
    evaluator: &CachedEvaluator,
) -> SearchOutcome {
    use circuitvae::driver::SearchDriver;
    crate::driver::make_driver(method, spec, seed).run_to_completion(evaluator)
}

/// Runs a method across seeds on the shared campaign pool, returning a
/// labelled curve set. Each seed is an independent unit (own evaluator,
/// own RNG), so pooled execution is bit-identical to the old serial
/// loop.
pub fn run_method_seeds(
    method: Method,
    spec: &ExperimentSpec,
    seeds: usize,
) -> crate::stats::CurveSet {
    let units: Vec<Box<dyn FnOnce() -> SearchOutcome + Send>> = (0..seeds as u64)
        .map(|s| {
            let spec = spec.clone();
            Box::new(move || run_method(method, &spec, 1000 + s))
                as Box<dyn FnOnce() -> SearchOutcome + Send>
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    crate::stats::CurveSet::new(method.label(), crate::campaign::run_units(units, threads))
}

/// Runs a CircuitVAE variant with a config mutator applied — the
/// mechanism behind the Fig. 4 ablations (reweighting off, alternative
/// initializations, alternative regularizers).
pub fn run_vae_variant(
    spec: &ExperimentSpec,
    seed: u64,
    mutate_config: impl Fn(&mut CircuitVaeConfig),
) -> SearchOutcome {
    let evaluator = build_evaluator(spec);
    let mut rng = StdRng::seed_from_u64(seed);
    let init_budget = ((spec.budget as f64 * spec.init_fraction) as usize).clamp(1, spec.budget);
    let initial = ga_initial_dataset(spec.width, &evaluator, init_budget, &mut rng);
    let init_used = evaluator.counter().count();
    let init_best = initial
        .iter()
        .map(|(_, c)| *c)
        .fold(f64::INFINITY, f64::min);
    let mut cfg = vae_config(spec);
    mutate_config(&mut cfg);
    let mut vae = CircuitVae::new(spec.width, cfg, initial, seed ^ 0x5eed);
    let outcome = vae.run(&evaluator, spec.budget.saturating_sub(init_used));
    let mut history = vec![(init_used, init_best)];
    for (s, c) in outcome.history {
        history.push((s + init_used, c));
    }
    SearchOutcome {
        history,
        best_cost: outcome.best_cost.min(init_best),
        best_grid: outcome.best_grid,
        evaluated: vec![],
    }
}

/// Resolves the results output directory (`results/` at the workspace
/// root), creating it if needed.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("results dir must be creatable");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::standard(8, CircuitKind::Adder, 0.5, 40)
    }

    #[test]
    fn every_method_completes_a_tiny_run() {
        for method in [
            Method::CircuitVae,
            Method::LatentBo,
            Method::Ga,
            Method::GaNsga2,
            Method::Rl,
            Method::Sa,
            Method::Random,
        ] {
            let out = run_method(method, &tiny_spec(), 7);
            assert!(
                out.best_cost.is_finite(),
                "{} must produce a finite best cost",
                method.label()
            );
            assert!(!out.history.is_empty(), "{}", method.label());
            // Budget respected (tracker granularity).
            let max_sims = out.history.iter().map(|(s, _)| *s).max().unwrap();
            assert!(max_sims <= 40, "{}: {max_sims}", method.label());
        }
    }

    #[test]
    fn vae_history_is_monotone_nonincreasing() {
        let out = run_method(Method::CircuitVae, &tiny_spec(), 3);
        for w in out.history.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn scale_parsing_and_factors() {
        assert_eq!(Scale::Smoke.seeds(), 1);
        assert!(Scale::Paper.budget_factor() > Scale::Default.budget_factor());
    }
}
