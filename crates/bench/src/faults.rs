//! Deterministic evaluator-panic fault injection for supervision tests.
//!
//! The chaos suites and the CI `chaos-smoke` job need a job that
//! *panics mid-step* — not one that errors or crashes the process —
//! to prove the daemon's per-job isolation (DESIGN.md Contract 13).
//! This module is that lever: arm a `(fragment, sims)` pair and every
//! job whose id contains `fragment` panics at the entry of the first
//! step where its driver has consumed at least `sims` simulations.
//!
//! The trigger is **deterministic across retries**: a retry resumes
//! from a durable checkpoint taken at or before the panic point on the
//! same deterministic driver trajectory, so the first crossing of the
//! `sims` threshold — and therefore the panic message — is identical
//! every time. A crash-looping job thus reaches quarantine with a
//! stable, reproducible reason string.
//!
//! The harness stays armed until [`disarm`] (retries must re-fire),
//! costs one relaxed atomic load per step when disarmed, and is
//! process-global like its sibling `cv_journal::failpoint`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// `true` only while a panic spec is armed — the disarmed fast path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed spec: (job-id fragment, simulation threshold).
static SPEC: Mutex<Option<(String, usize)>> = Mutex::new(None);

/// Arms the panic failpoint: every job whose id contains `fragment`
/// panics at the first step entry where it has consumed at least
/// `sims` simulations. Replaces any previously armed spec.
pub fn arm_panic(fragment: &str, sims: usize) {
    *SPEC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((fragment.to_string(), sims));
    ARMED.store(true, Ordering::Release);
}

/// Disarms the failpoint; steps proceed normally again.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *SPEC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Arms from the `CV_PANIC_JOB` environment variable when present
/// (`"<fragment>@<sims>"`, e.g. `"w8_ga_b@60"`). Returns whether the
/// failpoint was armed. Panics loudly on a malformed value — a chaos
/// harness silently running without its fault is worse than a crash.
pub fn arm_from_env() -> bool {
    let Ok(spec) = std::env::var("CV_PANIC_JOB") else {
        return false;
    };
    let Some((fragment, sims)) = spec.split_once('@') else {
        panic!("CV_PANIC_JOB must be \"<fragment>@<sims>\", got {spec:?}");
    };
    let sims: usize = sims
        .parse()
        .unwrap_or_else(|e| panic!("CV_PANIC_JOB sims {sims:?}: {e}"));
    if fragment.is_empty() {
        panic!("CV_PANIC_JOB fragment must be non-empty, got {spec:?}");
    }
    arm_panic(fragment, sims);
    true
}

/// The step-entry hook: panics if `id` matches the armed spec and
/// `sims` has reached its threshold. Called by `RunningTask::step`.
pub(crate) fn maybe_panic(id: &str, sims: usize) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let guard = SPEC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((fragment, threshold)) = guard.as_ref() {
        if sims >= *threshold && id.contains(fragment.as_str()) {
            let fragment = fragment.clone();
            drop(guard);
            panic!("cv-bench fault injection: job matching {fragment:?} panicked at {sims} sims");
        }
    }
}
