//! Data-parallel gradient accumulation over CPU threads.

use crate::graph::{Graph, Var};
use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Splits `items` across `threads` workers; each worker builds its own
/// tape with `forward` (which must return the **sum**, not mean, of the
/// per-item losses so the merged gradient is exact), runs backward, and
/// accumulates parameter gradients. Returns `(total_loss, grads)`.
///
/// Scaling of the loss (e.g. dividing by batch size) is the caller's
/// choice, applied inside `forward` via per-item weights or afterwards by
/// scaling the gradient buffer.
pub fn parallel_grad_accumulate<T: Sync>(
    store: &ParamStore,
    items: &[T],
    threads: usize,
    forward: impl Fn(&mut Graph, &ParamStore, &[T]) -> Var + Sync,
) -> (f32, Vec<Tensor>) {
    // Degenerate inputs must not reach `forward` or the chunker:
    // an empty batch has zero loss and zero gradients by definition
    // (callers' `forward` closures routinely index `part[0]`), and
    // `threads` outside `1..=items.len()` is clamped — same bug class
    // as the `evaluate_batch` thread-count regression.
    if items.is_empty() {
        return (0.0, store.zero_grads());
    }
    let threads = threads.clamp(1, items.len());
    if threads <= 1 || items.len() <= 1 {
        let mut g = Graph::new();
        let loss = forward(&mut g, store, items);
        let grads = g.backward(loss);
        let mut buf = store.zero_grads();
        g.accumulate_param_grads(&grads, &mut buf);
        return (g.value(loss).item(), buf);
    }
    let chunk = items.len().div_ceil(threads);
    let partials: Vec<(f32, Vec<Tensor>)> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                s.spawn(|| {
                    let mut g = Graph::new();
                    let loss = forward(&mut g, store, part);
                    let grads = g.backward(loss);
                    let mut buf = store.zero_grads();
                    g.accumulate_param_grads(&grads, &mut buf);
                    (g.value(loss).item(), buf)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .collect()
    });

    let mut iter = partials.into_iter();
    let (mut total, mut acc) = iter.next().expect("at least one chunk");
    for (l, g) in iter {
        total += l;
        for (a, b) in acc.iter_mut().zip(&g) {
            a.add_assign(b);
        }
    }
    (total, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The parallel result must equal the serial result exactly in
    /// structure (up to float addition order).
    #[test]
    fn parallel_matches_serial() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 3, 1, &mut rng);
        let items: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 1.0, -0.5]).collect();

        let forward = |g: &mut Graph, store: &ParamStore, part: &[Vec<f32>]| {
            let rows = part.len();
            let data: Vec<f32> = part.iter().flatten().copied().collect();
            let x = g.input(Tensor::new([rows, 3], data));
            let y = lin.forward(g, store, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        };

        let (l1, g1) = parallel_grad_accumulate(&store, &items, 1, forward);
        let (l4, g4) = parallel_grad_accumulate(&store, &items, 4, forward);
        assert!((l1 - l4).abs() < 1e-3 * l1.abs().max(1.0), "{l1} vs {l4}");
        for (a, b) in g1.iter().zip(&g4) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-3 * x.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn degenerate_thread_counts_and_empty_batches_are_safe() {
        // Regression (same bug class as the `evaluate_batch` thread
        // regression): `threads == 0`, `threads > items.len()`, and an
        // empty batch must all be handled without panicking, and the
        // thread count must never change the result structure.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut store, 3, 1, &mut rng);
        let items: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, -1.0, 0.25]).collect();
        let forward = |g: &mut Graph, store: &ParamStore, part: &[Vec<f32>]| {
            let rows = part.len();
            let data: Vec<f32> = part.iter().flatten().copied().collect();
            let x = g.input(Tensor::new([rows, 3], data));
            let y = lin.forward(g, store, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        };
        let (l_ref, g_ref) = parallel_grad_accumulate(&store, &items, 1, forward);
        for threads in [0, 2, items.len(), items.len() + 1, 64] {
            let (l, g) = parallel_grad_accumulate(&store, &items, threads, forward);
            assert!(
                (l - l_ref).abs() < 1e-3 * l_ref.abs().max(1.0),
                "threads={threads}: {l} vs {l_ref}"
            );
            assert_eq!(g.len(), g_ref.len(), "threads={threads}");
        }
        // Empty batch: zero loss, zeroed gradient buffer, `forward`
        // never called (it would index part[0]).
        let empty: Vec<Vec<f32>> = Vec::new();
        for threads in [0, 1, 8] {
            let (l, g) = parallel_grad_accumulate(&store, &empty, threads, forward);
            assert_eq!(l, 0.0);
            assert_eq!(g.len(), store.len());
            assert!(g.iter().all(|t| t.data().iter().all(|&x| x == 0.0)));
        }
    }

    #[test]
    fn single_item_fast_path() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 2, 1, &mut rng);
        let items = vec![vec![1.0f32, 2.0]];
        let (_, grads) = parallel_grad_accumulate(&store, &items, 8, |g, store, part| {
            let x = g.input(Tensor::new([1, 2], part[0].clone()));
            let y = lin.forward(g, store, x);
            g.sum(y)
        });
        assert_eq!(grads.len(), store.len());
    }
}
