//! Data-parallel gradient accumulation over the shared worker pool.
//!
//! [`GradAccumulator`] is the persistent form: it owns one tape +
//! gradient buffer per batch chunk and reuses them (graphs reset into
//! their arenas, gradient buffers zeroed in place) across training
//! steps, so a steady-state loop allocates nothing. The free function
//! [`parallel_grad_accumulate`] remains as the one-shot wrapper with the
//! historical signature.
//!
//! Determinism: the batch is split into `threads` contiguous chunks
//! (sizes `ceil(len/threads)`, exactly as the original scoped-thread
//! implementation) and partial losses/gradients are merged in chunk
//! order — so results depend only on the `threads` *argument*, never on
//! the pool's worker count or scheduling (DESIGN.md Contract 9).

use crate::graph::{Graph, Var};
use crate::param::ParamStore;
use crate::tensor::Tensor;
use cv_pool::WorkerPool;

/// Per-chunk worker state: a reusable tape and an aligned gradient
/// buffer.
struct Slot {
    graph: Graph,
    grads: Vec<Tensor>,
    loss: f32,
}

/// A reusable data-parallel gradient accumulator (see module docs).
#[derive(Default)]
pub struct GradAccumulator {
    slots: Vec<Slot>,
}

impl GradAccumulator {
    /// An accumulator with no slots yet; they are created (and then
    /// reused) by [`GradAccumulator::run`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `self.slots[..n]` exist with gradient buffers aligned to
    /// `store`, zeroing buffers in place when shapes already match.
    fn prepare_slots(&mut self, n: usize, store: &ParamStore) {
        while self.slots.len() < n {
            self.slots.push(Slot {
                graph: Graph::new(),
                grads: store.zero_grads(),
                loss: 0.0,
            });
        }
        for slot in &mut self.slots[..n] {
            let aligned = slot.grads.len() == store.len()
                && slot
                    .grads
                    .iter()
                    .enumerate()
                    .all(|(i, t)| t.shape() == store.raw_parts(i).0.shape());
            if aligned {
                for t in &mut slot.grads {
                    t.data_mut().fill(0.0);
                }
            } else {
                slot.grads = store.zero_grads();
            }
            slot.loss = 0.0;
        }
    }

    /// Splits `items` across `threads` contiguous chunks; each chunk
    /// builds its own tape with `forward` (which must return the **sum**,
    /// not mean, of the per-item losses so the merged gradient is exact),
    /// runs backward, and accumulates parameter gradients. Returns the
    /// total loss; the merged gradients are available from
    /// [`GradAccumulator::grads`] until the next call.
    ///
    /// Scaling of the loss (e.g. dividing by batch size) is the caller's
    /// choice, applied inside `forward` via per-item weights or afterwards
    /// by scaling the gradient buffer.
    pub fn run<T: Sync>(
        &mut self,
        store: &ParamStore,
        items: &[T],
        threads: usize,
        forward: impl Fn(&mut Graph, &ParamStore, &[T]) -> Var + Sync,
    ) -> f32 {
        // Degenerate inputs must not reach `forward` or the chunker:
        // an empty batch has zero loss and zero gradients by definition
        // (callers' `forward` closures routinely index `part[0]`), and
        // `threads` outside `1..=items.len()` is clamped.
        if crate::gemm::reference_kernels() {
            // A/B baseline fidelity: the seed engine rebuilt its tapes
            // and gradient buffers from scratch every step.
            self.slots.clear();
        }
        if items.is_empty() {
            self.prepare_slots(1, store);
            return 0.0;
        }
        let threads = threads.clamp(1, items.len());
        let chunk_len = items.len().div_ceil(threads);
        let n_chunks = items.len().div_ceil(chunk_len);
        self.prepare_slots(n_chunks, store);
        let worker = |slot: &mut Slot, part: &[T]| {
            slot.graph.reset();
            let loss = forward(&mut slot.graph, store, part);
            let grads = slot.graph.backward(loss);
            slot.graph.accumulate_param_grads(&grads, &mut slot.grads);
            slot.loss = slot.graph.value(loss).item();
            slot.graph.recycle_grads(grads);
        };
        if n_chunks == 1 {
            worker(&mut self.slots[0], items);
        } else {
            WorkerPool::global().scatter(&mut self.slots[..n_chunks], 1, |c, chunk_slots| {
                let part = &items[c * chunk_len..((c + 1) * chunk_len).min(items.len())];
                worker(&mut chunk_slots[0], part);
            });
        }
        // Merge in chunk order (chunk 0 is the accumulation target).
        let (head, rest) = self.slots[..n_chunks].split_at_mut(1);
        let mut total = head[0].loss;
        for slot in rest {
            total += slot.loss;
            for (a, b) in head[0].grads.iter_mut().zip(&slot.grads) {
                a.add_assign(b);
            }
        }
        total
    }

    /// The merged gradients of the last [`GradAccumulator::run`], aligned
    /// with the store it ran against.
    pub fn grads(&self) -> &[Tensor] {
        &self.slots[0].grads
    }

    /// Mutable access to the merged gradients (e.g. for loss scaling
    /// before an optimizer step).
    pub fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.slots[0].grads
    }

    /// Consumes the accumulator, returning the merged gradient buffer.
    pub fn into_grads(mut self) -> Vec<Tensor> {
        if self.slots.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut self.slots[0].grads)
        }
    }
}

/// One-shot data-parallel gradient accumulation: builds a throwaway
/// [`GradAccumulator`], runs it once, and returns `(total_loss, grads)`.
/// Training loops should hold a `GradAccumulator` instead to amortize
/// tape and buffer allocation across steps.
pub fn parallel_grad_accumulate<T: Sync>(
    store: &ParamStore,
    items: &[T],
    threads: usize,
    forward: impl Fn(&mut Graph, &ParamStore, &[T]) -> Var + Sync,
) -> (f32, Vec<Tensor>) {
    let mut acc = GradAccumulator::new();
    let loss = acc.run(store, items, threads, forward);
    (loss, acc.into_grads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The parallel result must equal the serial result exactly in
    /// structure (up to float addition order).
    #[test]
    fn parallel_matches_serial() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 3, 1, &mut rng);
        let items: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 1.0, -0.5]).collect();

        let forward = |g: &mut Graph, store: &ParamStore, part: &[Vec<f32>]| {
            let rows = part.len();
            let data: Vec<f32> = part.iter().flatten().copied().collect();
            let x = g.input(Tensor::new([rows, 3], data));
            let y = lin.forward(g, store, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        };

        let (l1, g1) = parallel_grad_accumulate(&store, &items, 1, forward);
        let (l4, g4) = parallel_grad_accumulate(&store, &items, 4, forward);
        assert!((l1 - l4).abs() < 1e-3 * l1.abs().max(1.0), "{l1} vs {l4}");
        for (a, b) in g1.iter().zip(&g4) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-3 * x.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn degenerate_thread_counts_and_empty_batches_are_safe() {
        // Regression (same bug class as the `evaluate_batch` thread
        // regression): `threads == 0`, `threads > items.len()`, and an
        // empty batch must all be handled without panicking, and the
        // thread count must never change the result structure.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut store, 3, 1, &mut rng);
        let items: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, -1.0, 0.25]).collect();
        let forward = |g: &mut Graph, store: &ParamStore, part: &[Vec<f32>]| {
            let rows = part.len();
            let data: Vec<f32> = part.iter().flatten().copied().collect();
            let x = g.input(Tensor::new([rows, 3], data));
            let y = lin.forward(g, store, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        };
        let (l_ref, g_ref) = parallel_grad_accumulate(&store, &items, 1, forward);
        for threads in [0, 2, items.len(), items.len() + 1, 64] {
            let (l, g) = parallel_grad_accumulate(&store, &items, threads, forward);
            assert!(
                (l - l_ref).abs() < 1e-3 * l_ref.abs().max(1.0),
                "threads={threads}: {l} vs {l_ref}"
            );
            assert_eq!(g.len(), g_ref.len(), "threads={threads}");
        }
        // Empty batch: zero loss, zeroed gradient buffer, `forward`
        // never called (it would index part[0]).
        let empty: Vec<Vec<f32>> = Vec::new();
        for threads in [0, 1, 8] {
            let (l, g) = parallel_grad_accumulate(&store, &empty, threads, forward);
            assert_eq!(l, 0.0);
            assert_eq!(g.len(), store.len());
            assert!(g.iter().all(|t| t.data().iter().all(|&x| x == 0.0)));
        }
    }

    #[test]
    fn single_item_fast_path() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 2, 1, &mut rng);
        let items = vec![vec![1.0f32, 2.0]];
        let (_, grads) = parallel_grad_accumulate(&store, &items, 8, |g, store, part| {
            let x = g.input(Tensor::new([1, 2], part[0].clone()));
            let y = lin.forward(g, store, x);
            g.sum(y)
        });
        assert_eq!(grads.len(), store.len());
    }

    #[test]
    fn reused_accumulator_matches_one_shot_bitwise() {
        // The persistent accumulator (recycled tapes + zeroed-in-place
        // buffers) must produce bit-identical losses and gradients to
        // fresh one-shot runs, step after step.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new(&mut store, 4, 2, &mut rng);
        let forward = |g: &mut Graph, store: &ParamStore, part: &[Vec<f32>]| {
            let rows = part.len();
            let data: Vec<f32> = part.iter().flatten().copied().collect();
            let x = g.input(Tensor::new([rows, 4], data));
            let y = lin.forward(g, store, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        };
        let mut acc = GradAccumulator::new();
        for step in 0..4 {
            let items: Vec<Vec<f32>> = (0..7)
                .map(|i| vec![i as f32 + step as f32, -1.0, 0.5, 2.0])
                .collect();
            let loss = acc.run(&store, &items, 3, forward);
            let (loss_ref, grads_ref) = parallel_grad_accumulate(&store, &items, 3, forward);
            assert_eq!(loss.to_bits(), loss_ref.to_bits(), "step {step}");
            for (a, b) in acc.grads().iter().zip(&grads_ref) {
                assert_eq!(a.shape(), b.shape());
                assert!(
                    a.data()
                        .iter()
                        .zip(b.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "step {step}"
                );
            }
        }
    }
}
