//! A recycling buffer arena for tape and kernel scratch memory.
//!
//! One training step builds a forward tape, runs backward, and drops
//! everything — historically one heap allocation per op per step. A
//! [`ScratchArena`] keeps the freed `Vec<f32>` backing stores and hands
//! them back out, so a steady-state training loop (same graph shape
//! every step) stops allocating entirely after the first step. Values
//! are bit-identical either way: the arena only changes *where* buffers
//! come from, never what is written into them.

/// A LIFO free-list of `f32` buffers.
///
/// Buffers keep their capacity when recycled; repeated graphs converge
/// to zero allocation after the first pass. The list is bounded so a
/// one-off giant graph cannot pin its peak memory forever.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<f32>>,
}

/// Retained buffer cap: generous for any model in this workspace (a
/// graph recycles one buffer per node) while bounding worst-case
/// retention.
const MAX_FREE: usize = 512;

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared buffer with capacity for at least `cap` elements
    /// (length 0). Fill it with `extend`-style writes.
    pub fn take_empty(&mut self, cap: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                if v.capacity() < cap {
                    v.reserve(cap - v.len());
                }
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// A buffer of exactly `len` zeros.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take_empty(len);
        v.resize(len, 0.0);
        v
    }

    /// Returns a buffer to the free list for reuse.
    pub fn give(&mut self, v: Vec<f32>) {
        if self.free.len() < MAX_FREE && v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Number of buffers currently held for reuse.
    pub fn held(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled() {
        let mut arena = ScratchArena::new();
        let mut v = arena.take_empty(100);
        v.extend((0..100).map(|i| i as f32));
        let ptr = v.as_ptr();
        arena.give(v);
        assert_eq!(arena.held(), 1);
        let v2 = arena.take_zeroed(64);
        assert_eq!(v2.as_ptr(), ptr, "the recycled allocation is reused");
        assert_eq!(v2.len(), 64);
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffers are reset");
    }

    #[test]
    fn take_grows_capacity_when_needed() {
        let mut arena = ScratchArena::new();
        arena.give(vec![1.0; 4]);
        let v = arena.take_zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn free_list_is_bounded() {
        let mut arena = ScratchArena::new();
        for _ in 0..(MAX_FREE + 50) {
            arena.give(vec![0.0; 8]);
        }
        assert_eq!(arena.held(), MAX_FREE);
    }
}
