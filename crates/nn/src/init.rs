//! Weight initialization and Gaussian sampling.
//!
//! `rand_distr` is not in the approved dependency set, so standard
//! normals come from a Box-Muller transform over `rand` uniforms.

use crate::tensor::Tensor;
use rand::Rng;

/// Samples one standard normal variate via Box-Muller.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-12 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// A tensor of i.i.d. `N(0, std²)` entries.
pub fn randn_tensor<R: Rng + ?Sized>(
    shape: impl Into<Vec<usize>>,
    std: f32,
    rng: &mut R,
) -> Tensor {
    let shape = shape.into();
    let numel: usize = shape.iter().product();
    Tensor::new(shape, (0..numel).map(|_| randn(rng) * std).collect())
}

/// He (Kaiming) initialization for a layer with `fan_in` inputs —
/// appropriate before ReLU nonlinearities.
pub fn he_init<R: Rng + ?Sized>(
    shape: impl Into<Vec<usize>>,
    fan_in: usize,
    rng: &mut R,
) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn_tensor(shape, std, rng)
}

/// Xavier (Glorot) initialization, appropriate before tanh/sigmoid.
pub fn xavier_init<R: Rng + ?Sized>(
    shape: impl Into<Vec<usize>>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let std = (2.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    randn_tensor(shape, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = he_init([1000], 1000, &mut rng);
        let narrow = he_init([1000], 10, &mut rng);
        assert!(wide.norm() < narrow.norm());
    }

    #[test]
    fn xavier_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_init([4, 5], 4, 5, &mut rng);
        assert_eq!(t.shape(), &[4, 5]);
        assert!(!t.has_non_finite());
    }
}
