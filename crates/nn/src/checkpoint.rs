//! Binary checkpointing for [`ParamStore`].
//!
//! No serde *format* crate is in the approved dependency set, so model
//! weights are stored in a small self-describing little-endian binary
//! layout: magic, version, optimizer step, then per parameter its shape
//! and three tensors (value, Adam m, Adam v).

use crate::param::ParamStore;
use crate::tensor::Tensor;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 8] = b"CVNNCKP1";

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream does not start with the expected magic/version.
    BadMagic,
    /// The byte stream ended prematurely or has inconsistent lengths.
    Truncated,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a cv-nn checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint data truncated or inconsistent"),
        }
    }
}

impl Error for CheckpointError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32s(&mut self, count: usize) -> Result<Vec<f32>, CheckpointError> {
        let b = self.take(count * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    for &x in t.data() {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_tensor(r: &mut Reader<'_>, shape: &[usize]) -> Result<Tensor, CheckpointError> {
    let numel: usize = shape.iter().product();
    Ok(Tensor::new(shape.to_vec(), r.f32s(numel)?))
}

impl ParamStore {
    /// Serializes the store (values and Adam state) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.steps());
        put_u64(&mut out, self.len() as u64);
        for i in 0..self.len() {
            let (value, m, v) = self.raw_parts(i);
            put_u64(&mut out, value.shape().len() as u64);
            for &d in value.shape() {
                put_u64(&mut out, d as u64);
            }
            put_tensor(&mut out, value);
            put_tensor(&mut out, m);
            put_tensor(&mut out, v);
        }
        out
    }

    /// Restores a store from bytes produced by [`ParamStore::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] for wrong magic or truncated data.
    pub fn from_bytes(bytes: &[u8]) -> Result<ParamStore, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let steps = r.u64()?;
        let count = r.u64()? as usize;
        let mut store = ParamStore::new();
        let mut restored = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = r.u64()? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(r.u64()? as usize);
            }
            let value = read_tensor(&mut r, &shape)?;
            let m = read_tensor(&mut r, &shape)?;
            let v = read_tensor(&mut r, &shape)?;
            restored.push((value, m, v));
        }
        if r.pos != bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        store.restore(steps, restored);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::param::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_store() -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 4, 3, &mut rng);
        // Take a few optimizer steps so Adam state is non-trivial.
        let cfg = AdamConfig::default();
        for _ in 0..5 {
            let mut g = crate::Graph::new();
            let x = g.input(Tensor::full([2, 4], 0.5));
            let y = lin.forward(&mut g, &store, x);
            let loss = g.sum(y);
            let grads = g.backward(loss);
            let mut buf = store.zero_grads();
            g.accumulate_param_grads(&grads, &mut buf);
            store.adam_step(&buf, &cfg);
        }
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = trained_store();
        let bytes = store.to_bytes();
        let back = ParamStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.steps(), store.steps());
        assert_eq!(back.len(), store.len());
        for i in 0..store.len() {
            let (v1, m1, s1) = store.raw_parts(i);
            let (v2, m2, s2) = back.raw_parts(i);
            assert_eq!(v1, v2);
            assert_eq!(m1, m2);
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn resumed_training_matches_uninterrupted() {
        // Training 5 steps, checkpointing, then 5 more must equal 10
        // straight steps (bitwise, since everything is deterministic).
        let mut rng = StdRng::seed_from_u64(1);
        let mut store_a = ParamStore::new();
        let lin_a = Linear::new(&mut store_a, 3, 1, &mut rng);
        let cfg = AdamConfig::default();
        let step = |store: &mut ParamStore, lin: &Linear| {
            let mut g = crate::Graph::new();
            let x = g.input(Tensor::full([1, 3], 1.0));
            let y = lin.forward(&mut g, store, x);
            let sq = g.mul(y, y);
            let loss = g.sum(sq);
            let grads = g.backward(loss);
            let mut buf = store.zero_grads();
            g.accumulate_param_grads(&grads, &mut buf);
            store.adam_step(&buf, &cfg);
        };
        for _ in 0..5 {
            step(&mut store_a, &lin_a);
        }
        let mut resumed = ParamStore::from_bytes(&store_a.to_bytes()).unwrap();
        for _ in 0..5 {
            step(&mut store_a, &lin_a);
            step(&mut resumed, &lin_a);
        }
        for i in 0..store_a.len() {
            assert_eq!(store_a.raw_parts(i).0, resumed.raw_parts(i).0, "param {i}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            ParamStore::from_bytes(b"nonsense").unwrap_err(),
            CheckpointError::BadMagic
        );
        let store = trained_store();
        let mut bytes = store.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(
            ParamStore::from_bytes(&bytes).unwrap_err(),
            CheckpointError::Truncated
        );
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(ParamStore::from_bytes(&bytes).is_err());
    }
}
