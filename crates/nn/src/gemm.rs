//! The deterministic parallel compute core: cache-blocked, thread-parallel
//! f32 GEMM kernels plus an im2col convolution lowering.
//!
//! # Bit-exactness contract (DESIGN.md Contract 9)
//!
//! Every fast kernel here produces output **bit-identical** to its naive
//! counterpart in [`mod@reference`] for all finite inputs, at every thread
//! count (including 1). The trick: blocking and parallelism only ever
//! re-tile the *independent* output dimensions; the floating-point
//! accumulation chain of each individual output element keeps exactly
//! the reference order:
//!
//! * `gemm_nn` (`A×B`): element `(i,j)` accumulates over `p = 0..k`
//!   ascending. k-blocks are visited in order and continue the chain in
//!   place; the 4-way unroll fuses four chain links without reassociating
//!   (`(((o+t₀)+t₁)+t₂)+t₃`).
//! * `gemm_nt` (`G×Bᵀ`): element `(i,p)` is a single sequential
//!   reduction over `j = 0..n`; speed comes from running many
//!   *independent* chains (4 columns × 2 rows) through the pipeline at
//!   once, never from splitting one chain.
//! * `gemm_tn` (`Aᵀ×G`): element `(p,j)` accumulates over `i = 0..m`
//!   ascending, same in-place chaining as NN.
//! * conv lowering: the reference kernel forms a per-input-channel
//!   partial in a register chain and adds per-channel partials in order;
//!   the im2col path reproduces that grouping with one small GEMM per
//!   input channel. Zero padding contributes explicit `w·(+0.0)` terms
//!   the reference skips — bit-safe because an IEEE-754 accumulation
//!   chain that starts at `+0.0` can never sit at `-0.0` (a sum is
//!   `-0.0` only when both addends are), so adding `±0.0` never changes
//!   the stored bits. The same argument covers the removed `a == 0.0`
//!   zero-skips of the naive matmuls (which defeated vectorization on
//!   dense training data).
//!
//! Inputs containing NaN/±inf are outside the contract (`0·inf = NaN`).
//!
//! # SIMD tiers (DESIGN.md Contract 12)
//!
//! The scalar block kernels in this file are one tier of a
//! runtime-dispatched family: [`mod@simd`] adds explicit `std::arch`
//! SSE2/AVX2 microkernels for the same inner loops, selected once per
//! process by CPU capability (overridable with `CV_SIMD=scalar|sse2|avx2`
//! or [`set_simd_level`]). The default **strict** tier preserves every
//! accumulation chain, so Contract 9 bit-identity holds unchanged at
//! every SIMD level; the opt-in **relaxed** tier
//! ([`set_relaxed_kernels`]) trades chain order for FMA throughput on
//! the GEMM entry points only — convolution always runs strict.

use crate::arena::ScratchArena;
use cv_pool::WorkerPool;
use std::sync::atomic::{AtomicBool, Ordering};

pub mod simd;

pub use simd::{
    cpu_features, detected_level, gemm_nn_at, gemm_nt_at, gemm_tn_at, relaxed_kernels,
    set_relaxed_kernels, set_simd_level, simd_level, stencil3_at, KernelMode, SimdLevel,
};

/// k-dimension cache block: 256 f32 rows of B keep the streamed panel
/// comfortably in L1/L2 while the unrolled inner loops run.
const KC: usize = 256;

/// Below this many flops a dispatch to the pool costs more than the
/// kernel; run single-threaded inline.
const MIN_PAR_FLOPS: usize = 1 << 17;

static FORCE_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Routes the graph's matmul/conv ops through the retained naive
/// [`mod@reference`] kernels instead of the fast ones. **A/B benchmarking
/// and equivalence testing only** — results are bit-identical either
/// way, so flipping this can only make things slower.
pub fn set_reference_kernels(on: bool) {
    FORCE_REFERENCE.store(on, Ordering::Relaxed);
}

/// Whether [`set_reference_kernels`] currently forces the naive path.
pub fn reference_kernels() -> bool {
    FORCE_REFERENCE.load(Ordering::Relaxed)
}

fn par_chunks(pool: &WorkerPool, rows: usize, flops: usize) -> usize {
    if pool.threads() <= 1 || flops < MIN_PAR_FLOPS || WorkerPool::on_worker_thread() {
        1
    } else {
        pool.threads().min(rows.max(1))
    }
}

/// The number of row chunks the fast kernels dispatch for a product
/// with `rows` parallelizable rows and `flops` total flops on `pool` —
/// i.e. the effective parallelism of that timed region (1 when the
/// product is too small to amortize a dispatch). Exposed so perf
/// reporting can record what actually ran instead of the pool size.
pub fn planned_chunks(pool: &WorkerPool, rows: usize, flops: usize) -> usize {
    par_chunks(pool, rows, flops)
}

// ---------------------------------------------------------------------
// NN: out[m,n] += a[m,k] × b[k,n]
// ---------------------------------------------------------------------

/// Row-block inner kernel at the active SIMD tier and mode; chains per
/// element stay in ascending-`p` reference order in strict mode.
fn nn_block(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    simd::dispatch_nn(out, a, b, k, n);
}

/// [`nn_block`] pinned to strict mode regardless of the relaxed toggle:
/// the conv lowerings use this so convolution stays bit-exact
/// (Contract 9) even when the GEMM entry points opt into relaxed.
fn nn_block_strict(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    simd::dispatch_nn_strict(out, a, b, k, n);
}

/// Scalar (autovectorized) tier of [`nn_block`]: accumulates
/// `a_rows × b` into `out_rows`, element chains in ascending-`p` order.
fn nn_block_scalar(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let mut p0 = 0;
    while p0 < k {
        let p_end = (p0 + KC).min(k);
        for (orow, arow) in out.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
            let mut p = p0;
            while p + 4 <= p_end {
                let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                // Coarse zero-skip: only when all four chain links vanish
                // (common for post-ReLU activations), so the vectorized
                // inner loop stays branch-free. Skipping `±0.0` adds is
                // bit-safe — see the module contract.
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    p += 4;
                    continue;
                }
                let b0 = &b[p * n..(p + 1) * n];
                let b1 = &b[(p + 1) * n..(p + 2) * n];
                let b2 = &b[(p + 2) * n..(p + 3) * n];
                let b3 = &b[(p + 3) * n..(p + 4) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = (((*o + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
                }
                p += 4;
            }
            while p < p_end {
                let ap = arow[p];
                if ap == 0.0 {
                    p += 1;
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += ap * bv;
                }
                p += 1;
            }
        }
        p0 = p_end;
    }
}

/// `out[m,n] += a[m,k] × b[k,n]`, parallel over row blocks on `pool`.
/// Pass a zeroed `out` for a plain product. Bit-identical to
/// [`reference::gemm_nn`] (which writes a fresh product) for finite
/// inputs at any thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_nn_with(
    pool: &WorkerPool,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_nn a length");
    assert_eq!(b.len(), k * n, "gemm_nn b length");
    assert_eq!(out.len(), m * n, "gemm_nn out length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let chunks = par_chunks(pool, m, 2 * m * k * n);
    if chunks <= 1 {
        nn_block(out, a, b, k, n);
        return;
    }
    let rows_per = m.div_ceil(chunks);
    pool.scatter(out, rows_per * n, |c, ochunk| {
        let r0 = c * rows_per;
        let rows = ochunk.len() / n;
        nn_block(ochunk, &a[r0 * k..(r0 + rows) * k], b, k, n);
    });
}

/// [`gemm_nn_with`] on the process-global pool.
pub fn gemm_nn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    gemm_nn_with(WorkerPool::global(), out, a, b, m, k, n);
}

// ---------------------------------------------------------------------
// NT: out[m,kk] = g[m,n] × b[kk,n]ᵀ
// ---------------------------------------------------------------------

/// One output row of NT: `o[p] = Σ_j grow[j]·b[p,j]`, each chain
/// sequential in `j`, four independent chains in flight.
fn nt_row(orow: &mut [f32], grow: &[f32], b: &[f32], n: usize, kk: usize) {
    let mut p = 0;
    while p + 4 <= kk {
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        let (mut s0, mut s1, mut s2, mut s3) = (0f32, 0f32, 0f32, 0f32);
        for (j, &gv) in grow.iter().enumerate() {
            if gv == 0.0 {
                continue; // bit-safe ±0.0 skip; g is ReLU-sparse in backward
            }
            s0 += gv * b0[j];
            s1 += gv * b1[j];
            s2 += gv * b2[j];
            s3 += gv * b3[j];
        }
        orow[p] = s0;
        orow[p + 1] = s1;
        orow[p + 2] = s2;
        orow[p + 3] = s3;
        p += 4;
    }
    while p < kk {
        let brow = &b[p * n..(p + 1) * n];
        let mut s = 0f32;
        for (&gv, &bv) in grow.iter().zip(brow) {
            if gv == 0.0 {
                continue;
            }
            s += gv * bv;
        }
        orow[p] = s;
        p += 1;
    }
}

/// Two output rows of NT at once (eight independent chains).
fn nt_rows2(
    o0: &mut [f32],
    o1: &mut [f32],
    g0: &[f32],
    g1: &[f32],
    b: &[f32],
    n: usize,
    kk: usize,
) {
    let mut p = 0;
    while p + 4 <= kk {
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        let (mut s00, mut s01, mut s02, mut s03) = (0f32, 0f32, 0f32, 0f32);
        let (mut s10, mut s11, mut s12, mut s13) = (0f32, 0f32, 0f32, 0f32);
        for j in 0..n {
            let (x0, x1) = (g0[j], g1[j]);
            if x0 == 0.0 && x1 == 0.0 {
                continue;
            }
            s00 += x0 * b0[j];
            s01 += x0 * b1[j];
            s02 += x0 * b2[j];
            s03 += x0 * b3[j];
            s10 += x1 * b0[j];
            s11 += x1 * b1[j];
            s12 += x1 * b2[j];
            s13 += x1 * b3[j];
        }
        o0[p] = s00;
        o0[p + 1] = s01;
        o0[p + 2] = s02;
        o0[p + 3] = s03;
        o1[p] = s10;
        o1[p + 1] = s11;
        o1[p + 2] = s12;
        o1[p + 3] = s13;
        p += 4;
    }
    while p < kk {
        let brow = &b[p * n..(p + 1) * n];
        let (mut s0, mut s1) = (0f32, 0f32);
        for (j, &bv) in brow.iter().enumerate() {
            let (x0, x1) = (g0[j], g1[j]);
            if x0 == 0.0 && x1 == 0.0 {
                continue;
            }
            s0 += x0 * bv;
            s1 += x1 * bv;
        }
        o0[p] = s0;
        o1[p] = s1;
        p += 1;
    }
}

/// NT row-block kernel at the active SIMD tier and mode.
fn nt_block(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
    if kk == 0 {
        return;
    }
    simd::dispatch_nt(out, g, b, n, kk);
}

/// Scalar (autovectorized) tier of [`nt_block`].
fn nt_block_scalar(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
    if kk == 0 {
        return;
    }
    let rows = out.len() / kk;
    let mut i = 0;
    while i + 2 <= rows {
        let (head, tail) = out[i * kk..].split_at_mut(kk);
        nt_rows2(
            head,
            &mut tail[..kk],
            &g[i * n..(i + 1) * n],
            &g[(i + 1) * n..(i + 2) * n],
            b,
            n,
            kk,
        );
        i += 2;
    }
    if i < rows {
        nt_row(
            &mut out[i * kk..(i + 1) * kk],
            &g[i * n..(i + 1) * n],
            b,
            n,
            kk,
        );
    }
}

/// `out[m,kk] = g[m,n] × b[kk,n]ᵀ` (fresh write), parallel over row
/// blocks on `pool`. Bit-identical to [`reference::gemm_nt`] at any
/// thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_nt_with(
    pool: &WorkerPool,
    out: &mut [f32],
    g: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    kk: usize,
) {
    assert_eq!(g.len(), m * n, "gemm_nt g length");
    assert_eq!(b.len(), kk * n, "gemm_nt b length");
    assert_eq!(out.len(), m * kk, "gemm_nt out length");
    if m == 0 || kk == 0 {
        return;
    }
    if n == 0 {
        out.fill(0.0);
        return;
    }
    let chunks = par_chunks(pool, m, 2 * m * n * kk);
    if chunks <= 1 {
        nt_block(out, g, b, n, kk);
        return;
    }
    let rows_per = m.div_ceil(chunks);
    pool.scatter(out, rows_per * kk, |c, ochunk| {
        let r0 = c * rows_per;
        let rows = ochunk.len() / kk;
        nt_block(ochunk, &g[r0 * n..(r0 + rows) * n], b, n, kk);
    });
}

/// [`gemm_nt_with`] on the process-global pool.
pub fn gemm_nt(out: &mut [f32], g: &[f32], b: &[f32], m: usize, n: usize, kk: usize) {
    gemm_nt_with(WorkerPool::global(), out, g, b, m, n, kk);
}

// ---------------------------------------------------------------------
// TN: out[k,n] += a[m,k]ᵀ × g[m,n]
// ---------------------------------------------------------------------

/// TN inner kernel at the active SIMD tier and mode: `out` covers
/// output rows `p_off..p_off + out.len()/n`.
fn tn_block(out: &mut [f32], a: &[f32], g: &[f32], p_off: usize, m: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    simd::dispatch_tn(out, a, g, p_off, m, k, n);
}

/// Scalar (autovectorized) tier of [`tn_block`]; element chains ascend
/// over `i = 0..m` (four fused links per pass).
fn tn_block_scalar(
    out: &mut [f32],
    a: &[f32],
    g: &[f32],
    p_off: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let mut i = 0;
    while i + 8 <= m {
        let g0 = &g[i * n..(i + 1) * n];
        let g1 = &g[(i + 1) * n..(i + 2) * n];
        let g2 = &g[(i + 2) * n..(i + 3) * n];
        let g3 = &g[(i + 3) * n..(i + 4) * n];
        let g4 = &g[(i + 4) * n..(i + 5) * n];
        let g5 = &g[(i + 5) * n..(i + 6) * n];
        let g6 = &g[(i + 6) * n..(i + 7) * n];
        let g7 = &g[(i + 7) * n..(i + 8) * n];
        for (pi, orow) in out.chunks_exact_mut(n).enumerate() {
            let p = p_off + pi;
            let (a0, a1, a2, a3, a4, a5, a6, a7) = (
                a[i * k + p],
                a[(i + 1) * k + p],
                a[(i + 2) * k + p],
                a[(i + 3) * k + p],
                a[(i + 4) * k + p],
                a[(i + 5) * k + p],
                a[(i + 6) * k + p],
                a[(i + 7) * k + p],
            );
            if a0 == 0.0
                && a1 == 0.0
                && a2 == 0.0
                && a3 == 0.0
                && a4 == 0.0
                && a5 == 0.0
                && a6 == 0.0
                && a7 == 0.0
            {
                continue;
            }
            for (j, o) in orow.iter_mut().enumerate() {
                *o = (((((((*o + a0 * g0[j]) + a1 * g1[j]) + a2 * g2[j]) + a3 * g3[j])
                    + a4 * g4[j])
                    + a5 * g5[j])
                    + a6 * g6[j])
                    + a7 * g7[j];
            }
        }
        i += 8;
    }
    while i + 4 <= m {
        let g0 = &g[i * n..(i + 1) * n];
        let g1 = &g[(i + 1) * n..(i + 2) * n];
        let g2 = &g[(i + 2) * n..(i + 3) * n];
        let g3 = &g[(i + 3) * n..(i + 4) * n];
        for (pi, orow) in out.chunks_exact_mut(n).enumerate() {
            let p = p_off + pi;
            let (a0, a1, a2, a3) = (
                a[i * k + p],
                a[(i + 1) * k + p],
                a[(i + 2) * k + p],
                a[(i + 3) * k + p],
            );
            // Coarse zero-skip (bit-safe ±0.0 adds, see module contract):
            // post-ReLU activation columns are often dead across the
            // whole batch quad.
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            for (j, o) in orow.iter_mut().enumerate() {
                *o = (((*o + a0 * g0[j]) + a1 * g1[j]) + a2 * g2[j]) + a3 * g3[j];
            }
        }
        i += 4;
    }
    while i < m {
        let grow = &g[i * n..(i + 1) * n];
        for (pi, orow) in out.chunks_exact_mut(n).enumerate() {
            let ap = a[i * k + p_off + pi];
            if ap == 0.0 {
                continue;
            }
            for (o, &gv) in orow.iter_mut().zip(grow) {
                *o += ap * gv;
            }
        }
        i += 1;
    }
}

/// `out[k,n] += a[m,k]ᵀ × g[m,n]`, parallel over output-row blocks on
/// `pool`. Pass a zeroed `out` for a plain product. Bit-identical to
/// [`reference::gemm_tn`] for finite inputs at any thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn gemm_tn_with(
    pool: &WorkerPool,
    out: &mut [f32],
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_tn a length");
    assert_eq!(g.len(), m * n, "gemm_tn g length");
    assert_eq!(out.len(), k * n, "gemm_tn out length");
    if k == 0 || n == 0 || m == 0 {
        return;
    }
    let chunks = par_chunks(pool, k, 2 * m * k * n);
    if chunks <= 1 {
        tn_block(out, a, g, 0, m, k, n);
        return;
    }
    let rows_per = k.div_ceil(chunks);
    pool.scatter(out, rows_per * n, |c, ochunk| {
        tn_block(ochunk, a, g, c * rows_per, m, k, n);
    });
}

/// [`gemm_tn_with`] on the process-global pool.
pub fn gemm_tn(out: &mut [f32], a: &[f32], g: &[f32], m: usize, k: usize, n: usize) {
    gemm_tn_with(WorkerPool::global(), out, a, g, m, k, n);
}

// ---------------------------------------------------------------------
// Convolution lowering
// ---------------------------------------------------------------------

/// The geometry of one 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub cin: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
}

impl ConvShape {
    /// Builds the geometry from `x [b,cin,h,w]` and `w [cout,cin,kh,kw]`
    /// shapes.
    ///
    /// # Panics
    ///
    /// Panics on non-4-D shapes or a channel mismatch.
    pub fn from_shapes(sx: &[usize], sw: &[usize], stride: usize, pad: usize) -> Self {
        assert!(sx.len() == 4 && sw.len() == 4, "conv2d expects 4-D tensors");
        assert_eq!(sx[1], sw[1], "conv2d channel mismatch");
        ConvShape {
            batch: sx[0],
            cin: sx[1],
            h: sx[2],
            w: sx[3],
            cout: sw[0],
            kh: sw[2],
            kw: sw[3],
            stride,
            pad,
        }
    }

    /// Output height.
    pub fn oh(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }
}

/// Fills `cols` (`cin·kh·kw × oh·ow`, row `r = (ci·kh + ki)·kw + kj`,
/// column `j = oi·ow + oj`) from one batch item's input plane, writing
/// explicit zeros where the padded window leaves the image.
fn im2col(x: &[f32], cols: &mut [f32], s: &ConvShape) {
    let (oh, ow) = (s.oh(), s.ow());
    let ohow = oh * ow;
    for ci in 0..s.cin {
        let xc = &x[ci * s.h * s.w..][..s.h * s.w];
        for ki in 0..s.kh {
            for kj in 0..s.kw {
                let r = (ci * s.kh + ki) * s.kw + kj;
                let row = &mut cols[r * ohow..][..ohow];
                for oi in 0..oh {
                    let ii = (oi * s.stride + ki) as isize - s.pad as isize;
                    let dst = &mut row[oi * ow..][..ow];
                    if ii < 0 || ii >= s.h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[ii as usize * s.w..][..s.w];
                    // Strided gather (stride 1 never reaches im2col: the
                    // forward handles it on the shifted-plane path).
                    for (oj, d) in dst.iter_mut().enumerate() {
                        let jj = (oj * s.stride + kj) as isize - s.pad as isize;
                        *d = if jj < 0 || jj >= s.w as isize {
                            0.0
                        } else {
                            xrow[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Forward convolution, writing into a zeroed `out`
/// (`batch·cout·oh·ow`). Scratch buffers are borrowed from (and
/// returned to) `scratch`. Bit-identical to
/// [`reference::conv2d_forward`] for finite inputs.
///
/// Two lowerings, both preserving the reference's per-input-channel
/// register chain (`(ki, kj)` ascending) and channel-ordered partial
/// adds:
///
/// * `stride == 1`: *shifted-plane* accumulation — for each `(ki, kj)`
///   one dense unit-stride axpy of the shifted input row into a
///   per-channel partial plane. No im2col materialization at all, and
///   the padded positions are skipped exactly like the reference.
/// * `stride > 1`: im2col + one small GEMM per input channel (strided
///   gathers pay for themselves once materialized).
pub fn conv2d_forward_into(
    out: &mut [f32],
    x: &[f32],
    wgt: &[f32],
    s: &ConvShape,
    scratch: &mut ScratchArena,
) {
    let (oh, ow) = (s.oh(), s.ow());
    let (ohow, khkw) = (oh * ow, s.kh * s.kw);
    let hw = s.h * s.w;
    debug_assert_eq!(out.len(), s.batch * s.cout * ohow);
    if out.is_empty() {
        return;
    }
    if s.stride == 1 {
        // Per-output-row partial: stays L1-resident across the three
        // kernel-row passes, with the channel-ordered add fused right
        // after each row completes.
        let mut part = scratch.take_zeroed(ow);
        let fused_3tap = s.kw == 3 && s.pad == 1 && ow == s.w && ow >= 2;
        for bi in 0..s.batch {
            let xb = &x[bi * s.cin * hw..][..s.cin * hw];
            let obi = &mut out[bi * s.cout * ohow..][..s.cout * ohow];
            for co in 0..s.cout {
                let oplane = &mut obi[co * ohow..][..ohow];
                for ci in 0..s.cin {
                    let xc = &xb[ci * hw..][..hw];
                    let wsl = &wgt[(co * s.cin + ci) * khkw..][..khkw];
                    for oi in 0..oh {
                        // `started` tracks whether `part` holds data yet:
                        // the first valid kernel row *overwrites* instead
                        // of zero-fill + accumulate. A written first tap
                        // can leave `-0.0` where the reference chain
                        // holds `+0.0`, but the difference cannot survive
                        // `out += part` (adding `±0.0` to a chain that is
                        // never `-0.0` — module contract), and `part` is
                        // observed nowhere else.
                        let mut started = false;
                        for ki in 0..s.kh {
                            let ishift = ki as isize - s.pad as isize;
                            let ii = oi as isize + ishift;
                            if ii < 0 || ii >= s.h as isize {
                                continue;
                            }
                            let xrow = &xc[ii as usize * s.w..][..s.w];
                            if fused_3tap {
                                // All three kj taps in one pass; per
                                // element the chain is kj-ascending over
                                // the in-bounds taps, exactly the
                                // reference's register chain.
                                let (w0, w1, w2) = (wsl[ki * 3], wsl[ki * 3 + 1], wsl[ki * 3 + 2]);
                                // Interior columns go through the SIMD
                                // stencil (always strict: identical
                                // per-element chains at every tier);
                                // the two edge columns stay inline.
                                if started {
                                    part[0] = (part[0] + xrow[0] * w1) + xrow[1] * w2;
                                    simd::dispatch_stencil3(
                                        true,
                                        &mut part[1..ow - 1],
                                        &xrow[..ow],
                                        w0,
                                        w1,
                                        w2,
                                    );
                                    part[ow - 1] =
                                        (part[ow - 1] + xrow[ow - 2] * w0) + xrow[ow - 1] * w1;
                                } else {
                                    part[0] = xrow[0] * w1 + xrow[1] * w2;
                                    simd::dispatch_stencil3(
                                        false,
                                        &mut part[1..ow - 1],
                                        &xrow[..ow],
                                        w0,
                                        w1,
                                        w2,
                                    );
                                    part[ow - 1] = xrow[ow - 2] * w0 + xrow[ow - 1] * w1;
                                    started = true;
                                }
                                continue;
                            }
                            if !started {
                                part.fill(0.0);
                                started = true;
                            }
                            for kj in 0..s.kw {
                                let wv = wsl[ki * s.kw + kj];
                                let jshift = kj as isize - s.pad as isize;
                                let oj_lo = ((-jshift).max(0) as usize).min(ow);
                                let oj_hi = ((s.w as isize - jshift).max(0) as usize).min(ow);
                                if oj_lo >= oj_hi {
                                    continue;
                                }
                                let jj0 = (oj_lo as isize + jshift) as usize;
                                let dst = &mut part[oj_lo..oj_hi];
                                let src = &xrow[jj0..jj0 + (oj_hi - oj_lo)];
                                for (d, &xv) in dst.iter_mut().zip(src) {
                                    *d += xv * wv;
                                }
                            }
                        }
                        if started {
                            for (o, &pv) in oplane[oi * ow..(oi + 1) * ow].iter_mut().zip(&part) {
                                *o += pv;
                            }
                        }
                    }
                }
            }
        }
        scratch.give(part);
        return;
    }
    let mut cols = scratch.take_zeroed(s.cin * khkw * ohow);
    // Weights packed per input channel: wpack[ci][co][kh·kw].
    let mut wpack = scratch.take_empty(s.cin * s.cout * khkw);
    for ci in 0..s.cin {
        for co in 0..s.cout {
            wpack.extend_from_slice(&wgt[(co * s.cin + ci) * khkw..][..khkw]);
        }
    }
    let mut part = if s.cin > 1 {
        scratch.take_zeroed(s.cout * ohow)
    } else {
        Vec::new()
    };
    for bi in 0..s.batch {
        im2col(
            &x[bi * s.cin * s.h * s.w..][..s.cin * s.h * s.w],
            &mut cols,
            s,
        );
        let obi = &mut out[bi * s.cout * ohow..][..s.cout * ohow];
        if s.cin == 1 {
            nn_block_strict(
                obi,
                &wpack[..s.cout * khkw],
                &cols[..khkw * ohow],
                khkw,
                ohow,
            );
        } else {
            for ci in 0..s.cin {
                part.fill(0.0);
                nn_block_strict(
                    &mut part,
                    &wpack[ci * s.cout * khkw..][..s.cout * khkw],
                    &cols[ci * khkw * ohow..][..khkw * ohow],
                    khkw,
                    ohow,
                );
                for (o, &pv) in obi.iter_mut().zip(&part) {
                    *o += pv;
                }
            }
        }
    }
    scratch.give(cols);
    scratch.give(wpack);
    if s.cin > 1 {
        scratch.give(part);
    }
}

/// Backward convolution: writes the input gradient into a zeroed `gx`
/// and the weight gradient into a zeroed `gw`. Bit-identical to
/// [`reference::conv2d_backward`] for finite inputs.
///
/// A fused direct kernel keeping the reference's `g == 0` skip (training
/// gradients are ReLU-sparse, so most output positions drop out), with
/// two overhead cuts the reference lacks:
///
/// * the per-multiply bounds checks are hoisted into precomputed valid
///   kernel intervals per output position, and
/// * the input-channel loop runs *inside* the gradient-zero test, so
///   `g` is loaded and tested once per output position instead of once
///   per `(ci, position)`. Legal because `ci` is part of every touched
///   element's identity (gx plane, gw slice): for any fixed element the
///   contribution order is still the reference's `(co, oi, oj, ki, kj)`
///   (gx) and `(bi, oi, oj)` (gw).
pub fn conv2d_backward_into(
    gx: &mut [f32],
    gw: &mut [f32],
    x: &[f32],
    wgt: &[f32],
    gout: &[f32],
    s: &ConvShape,
    scratch: &mut ScratchArena,
) {
    let (oh, ow) = (s.oh(), s.ow());
    let (ohow, khkw) = (oh * ow, s.kh * s.kw);
    let hw = s.h * s.w;
    debug_assert_eq!(gx.len(), s.batch * s.cin * hw);
    debug_assert_eq!(gw.len(), s.cout * s.cin * khkw);
    debug_assert_eq!(gout.len(), s.batch * s.cout * ohow);
    if s.kh == 3 && s.kw == 3 {
        conv2d_backward_3x3(gx, gw, x, wgt, gout, s, scratch);
        return;
    }
    for bi in 0..s.batch {
        let xb = &x[bi * s.cin * hw..][..s.cin * hw];
        let gxb = &mut gx[bi * s.cin * hw..][..s.cin * hw];
        for co in 0..s.cout {
            let gsl = &gout[(bi * s.cout + co) * ohow..][..ohow];
            let wco = &wgt[co * s.cin * khkw..][..s.cin * khkw];
            let gwco = &mut gw[co * s.cin * khkw..][..s.cin * khkw];
            for oi in 0..oh {
                let base_i = (oi * s.stride) as isize - s.pad as isize;
                let ki_lo = ((-base_i).max(0) as usize).min(s.kh);
                let ki_hi = ((s.h as isize - base_i).max(0) as usize).min(s.kh);
                if ki_lo >= ki_hi {
                    continue;
                }
                for oj in 0..ow {
                    let g = gsl[oi * ow + oj];
                    if g == 0.0 {
                        continue;
                    }
                    let base_j = (oj * s.stride) as isize - s.pad as isize;
                    let kj_lo = ((-base_j).max(0) as usize).min(s.kw);
                    let kj_hi = ((s.w as isize - base_j).max(0) as usize).min(s.kw);
                    if kj_lo >= kj_hi {
                        continue;
                    }
                    let span = kj_hi - kj_lo;
                    for ci in 0..s.cin {
                        let xc = &xb[ci * hw..][..hw];
                        let gxc = &mut gxb[ci * hw..][..hw];
                        let wsl = &wco[ci * khkw..][..khkw];
                        let gwsl = &mut gwco[ci * khkw..][..khkw];
                        for ki in ki_lo..ki_hi {
                            let ii = (base_i + ki as isize) as usize;
                            let jj0 = (base_j + kj_lo as isize) as usize;
                            let gxrow = &mut gxc[ii * s.w + jj0..][..span];
                            let xrow = &xc[ii * s.w + jj0..][..span];
                            let wrow = &wsl[ki * s.kw + kj_lo..][..span];
                            let gwrow = &mut gwsl[ki * s.kw + kj_lo..][..span];
                            if span == 3 {
                                // Straight-line interior case for the 3×3
                                // kernels every model here uses; same
                                // gx-then-gw interleave as the reference.
                                gxrow[0] += g * wrow[0];
                                gwrow[0] += g * xrow[0];
                                gxrow[1] += g * wrow[1];
                                gwrow[1] += g * xrow[1];
                                gxrow[2] += g * wrow[2];
                                gwrow[2] += g * xrow[2];
                            } else {
                                for q in 0..span {
                                    gxrow[q] += g * wrow[q];
                                    gwrow[q] += g * xrow[q];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// One nonzero output-gradient position with its precomputed valid
/// kernel intervals (see [`conv2d_backward_3x3`]).
struct NzEntry {
    base_i: i32,
    base_j: i32,
    ki_lo: u8,
    ki_hi: u8,
    kj_lo: u8,
    kj_hi: u8,
    g: f32,
}

/// Per-output-row processing plan for [`conv2d_backward_3x3`].
#[derive(Clone, Copy)]
enum RowPlan {
    /// Skip (no valid kernel rows, or all gradients zero).
    Empty,
    /// Replay `nz[start..end]` entry by entry.
    Entries { start: u32, end: u32 },
    /// `stride == 1, pad == 1` interior row, dense enough: process the
    /// interior columns as full-width axpys/dots (explicit `±0.0` terms
    /// for the zero gradients — bit-safe), plus inline edge columns.
    Dense,
}

/// 3×3 specialization of the backward kernel (the only kernel size the
/// models here use). Same element-chain orders as the generic path —
/// and therefore the reference — with these structural cuts:
///
/// * the sparse scan of the output gradient (load, zero-test, interval
///   math) happens once per `(bi, co)` into a compact entry list that
///   every input channel then replays;
/// * the nine weights are read into registers per channel, and the nine
///   weight-gradient accumulators live in registers across the whole
///   position scan (loaded from and stored back to `gw`, preserving the
///   reference's `(bi, oi, oj)` chain per element);
/// * rows whose gradient is dense enough take a vectorized path: the
///   `kj` axpys run over the whole row interior in descending `kj`
///   order (`oj ascending ⇔ kj descending` per gx element keeps the
///   reference chain), with `±0.0` contributions included — bit-safe
///   per the module contract.
#[allow(clippy::too_many_lines)]
fn conv2d_backward_3x3(
    gx: &mut [f32],
    gw: &mut [f32],
    x: &[f32],
    wgt: &[f32],
    gout: &[f32],
    s: &ConvShape,
    _scratch: &mut ScratchArena,
) {
    let (oh, ow) = (s.oh(), s.ow());
    let ohow = oh * ow;
    let hw = s.h * s.w;
    let mut nz: Vec<NzEntry> = Vec::with_capacity(ohow);
    let mut plans: Vec<RowPlan> = Vec::with_capacity(oh);
    for bi in 0..s.batch {
        let xb = &x[bi * s.cin * hw..][..s.cin * hw];
        let gxb = &mut gx[bi * s.cin * hw..][..s.cin * hw];
        for co in 0..s.cout {
            let gsl = &gout[(bi * s.cout + co) * ohow..][..ohow];
            nz.clear();
            plans.clear();
            for oi in 0..oh {
                let base_i = (oi * s.stride) as isize - s.pad as isize;
                let ki_lo = ((-base_i).max(0) as usize).min(3);
                let ki_hi = ((s.h as isize - base_i).max(0) as usize).min(3);
                if ki_lo >= ki_hi {
                    plans.push(RowPlan::Empty);
                    continue;
                }
                let grow = &gsl[oi * ow..][..ow];
                let interior_ok =
                    s.stride == 1 && s.pad == 1 && ow == s.w && ow >= 3 && ki_lo == 0 && ki_hi == 3;
                if interior_ok {
                    let nnz = grow.iter().filter(|&&g| g != 0.0).count();
                    if 4 * nnz >= ow {
                        plans.push(RowPlan::Dense);
                        continue;
                    }
                }
                let start = nz.len() as u32;
                for (oj, &g) in grow.iter().enumerate() {
                    if g == 0.0 {
                        continue;
                    }
                    let base_j = (oj * s.stride) as isize - s.pad as isize;
                    let kj_lo = ((-base_j).max(0) as usize).min(3);
                    let kj_hi = ((s.w as isize - base_j).max(0) as usize).min(3);
                    if kj_lo >= kj_hi {
                        continue;
                    }
                    nz.push(NzEntry {
                        base_i: base_i as i32,
                        base_j: base_j as i32,
                        ki_lo: ki_lo as u8,
                        ki_hi: ki_hi as u8,
                        kj_lo: kj_lo as u8,
                        kj_hi: kj_hi as u8,
                        g,
                    });
                }
                plans.push(RowPlan::Entries {
                    start,
                    end: nz.len() as u32,
                });
            }
            for ci in 0..s.cin {
                let xc = &xb[ci * hw..][..hw];
                let gxc = &mut gxb[ci * hw..][..hw];
                let wbase = (co * s.cin + ci) * 9;
                let wsl: [f32; 9] = wgt[wbase..wbase + 9].try_into().expect("3x3 kernel");
                let mut gwacc: [f32; 9] = gw[wbase..wbase + 9].try_into().expect("3x3 kernel");
                for (oi, plan) in plans.iter().enumerate() {
                    match *plan {
                        RowPlan::Empty => {}
                        RowPlan::Entries { start, end } => {
                            for e in &nz[start as usize..end as usize] {
                                let g = e.g;
                                if e.ki_lo == 0 && e.ki_hi == 3 && e.kj_lo == 0 && e.kj_hi == 3 {
                                    // Full-interior 3×3 block: straight
                                    // line, reference (ki, kj) order.
                                    let mut r0 = (e.base_i as usize) * s.w + e.base_j as usize;
                                    for wb in [0usize, 3, 6] {
                                        let xr = &xc[r0..r0 + 3];
                                        let gxr = &mut gxc[r0..r0 + 3];
                                        gxr[0] += g * wsl[wb];
                                        gwacc[wb] += g * xr[0];
                                        gxr[1] += g * wsl[wb + 1];
                                        gwacc[wb + 1] += g * xr[1];
                                        gxr[2] += g * wsl[wb + 2];
                                        gwacc[wb + 2] += g * xr[2];
                                        r0 += s.w;
                                    }
                                    continue;
                                }
                                let span = (e.kj_hi - e.kj_lo) as usize;
                                for ki in e.ki_lo..e.ki_hi {
                                    let ii = (e.base_i + i32::from(ki)) as usize;
                                    let row0 = ii * s.w + (e.base_j + i32::from(e.kj_lo)) as usize;
                                    let wb = usize::from(ki) * 3 + usize::from(e.kj_lo);
                                    let gxrow = &mut gxc[row0..row0 + span];
                                    let xrow = &xc[row0..row0 + span];
                                    for q in 0..span {
                                        gxrow[q] += g * wsl[wb + q];
                                        gwacc[wb + q] += g * xrow[q];
                                    }
                                }
                            }
                        }
                        RowPlan::Dense => {
                            // Interior row, stride 1, pad 1 (oi-th output
                            // row reads input rows oi-1+ki). A gx element
                            // jj receives, in the reference's oj-ascending
                            // order, g[jj-1]·w₂ then g[jj]·w₁ then
                            // g[jj+1]·w₀ — a 3-tap correlation computed in
                            // one vectorizable pass. gw is the matching
                            // 3-chain dot. Zero gradients contribute
                            // explicit ±0.0 terms (bit-safe).
                            let grow = &gsl[oi * ow..][..ow];
                            for ki in 0..3usize {
                                let gxrow = &mut gxc[(oi + ki - 1) * s.w..][..s.w];
                                let wb = ki * 3;
                                let (w0, w1, w2) = (wsl[wb], wsl[wb + 1], wsl[wb + 2]);
                                gxrow[0] = (gxrow[0] + grow[0] * w1) + grow[1] * w0;
                                // Interior: the strict SIMD 3-tap stencil
                                // (taps reversed — correlation, not conv).
                                simd::dispatch_stencil3(
                                    true,
                                    &mut gxrow[1..ow - 1],
                                    &grow[..ow],
                                    w2,
                                    w1,
                                    w0,
                                );
                                gxrow[ow - 1] =
                                    (gxrow[ow - 1] + grow[ow - 2] * w2) + grow[ow - 1] * w1;
                            }
                            // gw: all nine (ki, kj) chains advance in one
                            // oj pass (oj ascending per chain, as in the
                            // reference). Each kernel row's three chains
                            // sit in lanes 0..3 of a 4-lane accumulator
                            // (lane 3 is a discarded dummy chain), so the
                            // inner update is a plain lane-wise SIMD
                            // multiply-add — no chain is ever split.
                            let x0 = &xc[(oi - 1) * s.w..][..s.w];
                            let x1 = &xc[oi * s.w..][..s.w];
                            let x2 = &xc[(oi + 1) * s.w..][..s.w];
                            let mut a0 = [gwacc[0], gwacc[1], gwacc[2], 0.0];
                            let mut a1 = [gwacc[3], gwacc[4], gwacc[5], 0.0];
                            let mut a2 = [gwacc[6], gwacc[7], gwacc[8], 0.0];
                            let g0 = grow[0];
                            a0[1] += g0 * x0[0];
                            a0[2] += g0 * x0[1];
                            a1[1] += g0 * x1[0];
                            a1[2] += g0 * x1[1];
                            a2[1] += g0 * x2[0];
                            a2[2] += g0 * x2[1];
                            if ow >= 4 {
                                for oj in 1..ow - 2 {
                                    let g = grow[oj];
                                    let (v0, v1, v2) = (
                                        &x0[oj - 1..oj + 3],
                                        &x1[oj - 1..oj + 3],
                                        &x2[oj - 1..oj + 3],
                                    );
                                    for l in 0..4 {
                                        a0[l] += g * v0[l];
                                        a1[l] += g * v1[l];
                                        a2[l] += g * v2[l];
                                    }
                                }
                                let g = grow[ow - 2];
                                a0[0] += g * x0[ow - 3];
                                a0[1] += g * x0[ow - 2];
                                a0[2] += g * x0[ow - 1];
                                a1[0] += g * x1[ow - 3];
                                a1[1] += g * x1[ow - 2];
                                a1[2] += g * x1[ow - 1];
                                a2[0] += g * x2[ow - 3];
                                a2[1] += g * x2[ow - 2];
                                a2[2] += g * x2[ow - 1];
                            } else {
                                for oj in 1..ow - 1 {
                                    let g = grow[oj];
                                    a0[0] += g * x0[oj - 1];
                                    a0[1] += g * x0[oj];
                                    a0[2] += g * x0[oj + 1];
                                    a1[0] += g * x1[oj - 1];
                                    a1[1] += g * x1[oj];
                                    a1[2] += g * x1[oj + 1];
                                    a2[0] += g * x2[oj - 1];
                                    a2[1] += g * x2[oj];
                                    a2[2] += g * x2[oj + 1];
                                }
                            }
                            let gl = grow[ow - 1];
                            a0[0] += gl * x0[ow - 2];
                            a0[1] += gl * x0[ow - 1];
                            a1[0] += gl * x1[ow - 2];
                            a1[1] += gl * x1[ow - 1];
                            a2[0] += gl * x2[ow - 2];
                            a2[1] += gl * x2[ow - 1];
                            gwacc[0] = a0[0];
                            gwacc[1] = a0[1];
                            gwacc[2] = a0[2];
                            gwacc[3] = a1[0];
                            gwacc[4] = a1[1];
                            gwacc[5] = a1[2];
                            gwacc[6] = a2[0];
                            gwacc[7] = a2[1];
                            gwacc[8] = a2[2];
                        }
                    }
                }
                gw[wbase..wbase + 9].copy_from_slice(&gwacc);
            }
        }
    }
}

/// The retained naive kernels — the bit-exactness reference for every
/// fast path in this module, moved verbatim from the original
/// `graph.rs` implementations (zero-skips and all).
pub mod reference {
    use super::ConvShape;

    /// Naive `out[m,n] = a[m,k] × b[k,n]` with the historical
    /// `a == 0.0` zero-skip.
    pub fn gemm_nn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
    }

    /// Naive `out[m,kk] = g[m,n] × b[kk,n]ᵀ` (sequential dot products).
    pub fn gemm_nt(out: &mut [f32], g: &[f32], b: &[f32], m: usize, n: usize, kk: usize) {
        for i in 0..m {
            for p in 0..kk {
                let mut acc = 0.0;
                let grow = &g[i * n..(i + 1) * n];
                let brow = &b[p * n..(p + 1) * n];
                for (gv, bv) in grow.iter().zip(brow) {
                    acc += gv * bv;
                }
                out[i * kk + p] = acc;
            }
        }
    }

    /// Naive `out[k,n] = a[m,k]ᵀ × g[m,n]` with the historical
    /// `a == 0.0` zero-skip.
    pub fn gemm_tn(out: &mut [f32], a: &[f32], g: &[f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let grow = &g[i * n..(i + 1) * n];
                let orow = &mut out[p * n..(p + 1) * n];
                for (o, &gv) in orow.iter_mut().zip(grow) {
                    *o += aip * gv;
                }
            }
        }
    }

    /// Naive direct convolution forward (into a zeroed `out`).
    pub fn conv2d_forward(out: &mut [f32], x: &[f32], wgt: &[f32], s: &ConvShape) {
        let (oh, ow) = (s.oh(), s.ow());
        for bi in 0..s.batch {
            for co in 0..s.cout {
                let obase = (bi * s.cout + co) * oh * ow;
                for ci in 0..s.cin {
                    let xbase = (bi * s.cin + ci) * s.h * s.w;
                    let wbase = (co * s.cin + ci) * s.kh * s.kw;
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let mut acc = 0.0f32;
                            for ki in 0..s.kh {
                                let ii = (oi * s.stride + ki) as isize - s.pad as isize;
                                if ii < 0 || ii >= s.h as isize {
                                    continue;
                                }
                                for kj in 0..s.kw {
                                    let jj = (oj * s.stride + kj) as isize - s.pad as isize;
                                    if jj < 0 || jj >= s.w as isize {
                                        continue;
                                    }
                                    acc += x[xbase + ii as usize * s.w + jj as usize]
                                        * wgt[wbase + ki * s.kw + kj];
                                }
                            }
                            out[obase + oi * ow + oj] += acc;
                        }
                    }
                }
            }
        }
    }

    /// Naive direct convolution backward (into zeroed `gx`/`gw`).
    pub fn conv2d_backward(
        gx: &mut [f32],
        gw: &mut [f32],
        x: &[f32],
        wgt: &[f32],
        gout: &[f32],
        s: &ConvShape,
    ) {
        let (oh, ow) = (s.oh(), s.ow());
        for bi in 0..s.batch {
            for co in 0..s.cout {
                let obase = (bi * s.cout + co) * oh * ow;
                for ci in 0..s.cin {
                    let xbase = (bi * s.cin + ci) * s.h * s.w;
                    let wbase = (co * s.cin + ci) * s.kh * s.kw;
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let g = gout[obase + oi * ow + oj];
                            if g == 0.0 {
                                continue;
                            }
                            for ki in 0..s.kh {
                                let ii = (oi * s.stride + ki) as isize - s.pad as isize;
                                if ii < 0 || ii >= s.h as isize {
                                    continue;
                                }
                                for kj in 0..s.kw {
                                    let jj = (oj * s.stride + kj) as isize - s.pad as isize;
                                    if jj < 0 || jj >= s.w as isize {
                                        continue;
                                    }
                                    let xi = xbase + ii as usize * s.w + jj as usize;
                                    let wi = wbase + ki * s.kw + kj;
                                    gx[xi] += g * wgt[wi];
                                    gw[wi] += g * x[xi];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f32> {
        // Deterministic mix of magnitudes, zeros, and signs.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                match s % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((s % 2000) as f32 - 1000.0) / 64.0,
                }
            })
            .collect()
    }

    #[test]
    fn nn_matches_reference_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 32, 9),
            (8, 257, 13),
            (5, 0, 4),
            (0, 3, 3),
        ] {
            let a = vals(m * k, 1);
            let b = vals(k * n, 2);
            let mut fast = vec![0.0f32; m * n];
            let mut naive = vec![0.0f32; m * n];
            gemm_nn(&mut fast, &a, &b, m, k, n);
            reference::gemm_nn(&mut naive, &a, &b, m, k, n);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn nt_matches_reference_bitwise() {
        for &(m, n, kk) in &[(1, 1, 1), (2, 9, 5), (7, 33, 4), (3, 0, 6), (6, 130, 11)] {
            let g = vals(m * n, 3);
            let b = vals(kk * n, 4);
            let mut fast = vec![0.0f32; m * kk];
            let mut naive = vec![0.0f32; m * kk];
            gemm_nt(&mut fast, &g, &b, m, n, kk);
            reference::gemm_nt(&mut naive, &g, &b, m, n, kk);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{n},{kk})"
            );
        }
    }

    #[test]
    fn tn_matches_reference_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 8), (33, 7, 6), (0, 4, 4), (9, 12, 259)] {
            let a = vals(m * k, 5);
            let g = vals(m * n, 6);
            let mut fast = vec![0.0f32; k * n];
            let mut naive = vec![0.0f32; k * n];
            gemm_tn(&mut fast, &a, &g, m, k, n);
            reference::gemm_tn(&mut naive, &a, &g, m, k, n);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn conv_forward_and_backward_match_reference_bitwise() {
        for &(b, cin, h, w, cout, kk, stride, pad) in &[
            (1, 1, 5, 5, 2, 3, 1, 1),
            (2, 3, 8, 7, 4, 3, 2, 1),
            (1, 2, 4, 9, 3, 2, 2, 0),
            (3, 1, 1, 1, 1, 1, 1, 0),
            (2, 2, 6, 6, 2, 3, 1, 0),
        ] {
            let s = ConvShape {
                batch: b,
                cin,
                h,
                w,
                cout,
                kh: kk,
                kw: kk,
                stride,
                pad,
            };
            let x = vals(b * cin * h * w, 7);
            let wgt = vals(cout * cin * kk * kk, 8);
            let out_len = b * cout * s.oh() * s.ow();
            let mut scratch = ScratchArena::new();
            let mut fast = vec![0.0f32; out_len];
            let mut naive = vec![0.0f32; out_len];
            conv2d_forward_into(&mut fast, &x, &wgt, &s, &mut scratch);
            reference::conv2d_forward(&mut naive, &x, &wgt, &s);
            assert!(
                fast.iter()
                    .zip(&naive)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "fwd {s:?}"
            );
            let gout = vals(out_len, 9);
            let (mut gx, mut gw) = (vec![0.0f32; x.len()], vec![0.0f32; wgt.len()]);
            let (mut gx_r, mut gw_r) = (vec![0.0f32; x.len()], vec![0.0f32; wgt.len()]);
            conv2d_backward_into(&mut gx, &mut gw, &x, &wgt, &gout, &s, &mut scratch);
            reference::conv2d_backward(&mut gx_r, &mut gw_r, &x, &wgt, &gout, &s);
            assert!(
                gx.iter()
                    .zip(&gx_r)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "gx {s:?}"
            );
            assert!(
                gw.iter()
                    .zip(&gw_r)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "gw {s:?}"
            );
        }
    }

    #[test]
    fn results_are_thread_count_independent() {
        let (m, k, n) = (13, 310, 17);
        let a = vals(m * k, 10);
        let b = vals(k * n, 11);
        let mut one = vec![0.0f32; m * n];
        gemm_nn_with(&WorkerPool::new(1), &mut one, &a, &b, m, k, n);
        for threads in [2, 3, 5] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0.0f32; m * n];
            gemm_nn_with(&pool, &mut out, &a, &b, m, k, n);
            assert!(
                out.iter()
                    .zip(&one)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn reference_flag_roundtrips() {
        assert!(!reference_kernels());
        set_reference_kernels(true);
        assert!(reference_kernels());
        set_reference_kernels(false);
        assert!(!reference_kernels());
    }
}
