//! A minimal pure-Rust neural-network library for the CircuitVAE
//! reproduction.
//!
//! The paper trains a ~1M-parameter CNN β-VAE with an MLP cost head on an
//! A100. No GPU ML stack is available in this environment, so this crate
//! implements exactly the pieces that model needs — dense tensors,
//! reverse-mode autodiff (including `conv2d`, nearest upsampling and
//! cropping for odd widths), He/Xavier init, Adam, and data-parallel
//! gradient accumulation over the shared worker pool.
//!
//! The heavy ops run on the deterministic parallel compute core
//! ([`gemm`]): cache-blocked, pool-parallel kernels that are
//! **bit-identical** to the retained naive references at every thread
//! count (DESIGN.md Contract 9), with a buffer-recycling
//! [`ScratchArena`] so a steady-state training step stops allocating.
//!
//! # Example: fit y = 2x with one linear layer
//!
//! ```
//! use cv_nn::{Graph, Linear, ParamStore, AdamConfig, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let lin = Linear::new(&mut store, 1, 1, &mut rng);
//! let cfg = AdamConfig { lr: 0.05, ..AdamConfig::default() };
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::new([4, 1], vec![1., 2., 3., 4.]));
//!     let target = g.input(Tensor::new([4, 1], vec![2., 4., 6., 8.]));
//!     let y = lin.forward(&mut g, &store, x);
//!     let err = g.sub(y, target);
//!     let sq = g.mul(err, err);
//!     let loss = g.sum(sq);
//!     let grads = g.backward(loss);
//!     let mut buf = store.zero_grads();
//!     g.accumulate_param_grads(&grads, &mut buf);
//!     store.adam_step(&buf, &cfg);
//! }
//! ```

#![deny(missing_docs)]

mod arena;
mod checkpoint;
pub mod gemm;
mod graph;
mod init;
mod layers;
mod parallel;
mod param;
mod tensor;

pub use arena::ScratchArena;
pub use checkpoint::CheckpointError;
pub use graph::{Grads, Graph, Var};
pub use init::{he_init, randn, randn_tensor, xavier_init};
pub use layers::{Conv2d, Linear, Mlp};
pub use parallel::{parallel_grad_accumulate, GradAccumulator};
pub use param::{AdamConfig, ParamId, ParamStore};
pub use tensor::Tensor;
