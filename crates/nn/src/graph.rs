//! Reverse-mode automatic differentiation on a per-forward-pass tape.
//!
//! A [`Graph`] is built eagerly: every op computes its value at
//! construction time and records what it needs for the backward pass.
//! Calling [`Graph::backward`] produces gradients for every node, from
//! which parameter gradients (by [`ParamId`]) or input gradients (for
//! latent-space search) can be extracted.

use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    // The scalar is recorded for debuggability; backward is identity.
    AddScalar(usize, #[allow(dead_code)] f32),
    MulScalar(usize, f32),
    Matmul(usize, usize),
    AddBias(usize, usize),
    AddChanBias(usize, usize),
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    Exp(usize),
    Sum(usize),
    RowScale(usize, usize),
    BceLogits {
        logits: usize,
        targets: usize,
    },
    Conv2d {
        x: usize,
        w: usize,
        stride: usize,
        pad: usize,
    },
    Upsample2x(usize),
    Crop2d {
        x: usize,
        h: usize,
        w: usize,
    },
    Reshape(usize),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients of one backward pass, indexed by node.
pub struct Grads {
    by_node: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss with respect to `var` (zeros if the node did
    /// not influence the loss).
    pub fn of(&self, var: Var, graph: &Graph) -> Tensor {
        self.by_node[var.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(graph.nodes[var.0].value.shape().to_vec()))
    }
}

/// A computation tape.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Injects a constant/input tensor (gradients are still computed for
    /// it, enabling input-space optimization such as latent search).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Injects a parameter from `store`; its gradient can later be
    /// collected with [`Graph::accumulate_param_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Elementwise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x + y)
            .collect();
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Add(a.0, b.0))
    }

    /// Elementwise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "sub shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x - y)
            .collect();
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Sub(a.0, b.0))
    }

    /// Elementwise product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| x * y)
            .collect();
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Mul(a.0, b.0))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(ta.shape().to_vec(), ta.data().iter().map(|x| -x).collect());
        self.push(t, Op::Neg(a.0))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| x + s).collect(),
        );
        self.push(t, Op::AddScalar(a.0, s))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| x * s).collect(),
        );
        self.push(t, Op::MulScalar(a.0, s))
    }

    /// Matrix product `[m,k] × [k,n] → [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let (sa, sb) = (ta.shape(), tb.shape());
        assert!(
            sa.len() == 2 && sb.len() == 2 && sa[1] == sb[0],
            "matmul {sa:?} × {sb:?}"
        );
        let t = matmul_raw(ta, tb);
        self.push(t, Op::Matmul(a.0, b.0))
    }

    /// Broadcast bias add: `[r, c] + [c]`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let (tx, tb) = (&self.nodes[x.0].value, &self.nodes[b.0].value);
        let (sx, sb) = (tx.shape(), tb.shape());
        assert!(
            sx.len() == 2 && sb.len() == 1 && sx[1] == sb[0],
            "add_bias {sx:?} + {sb:?}"
        );
        let c = sx[1];
        let mut data = tx.data().to_vec();
        for (i, v) in data.iter_mut().enumerate() {
            *v += tb.data()[i % c];
        }
        let t = Tensor::new(sx.to_vec(), data);
        self.push(t, Op::AddBias(x.0, b.0))
    }

    /// Channel bias add: `[b, c, h, w] + [c]`.
    pub fn add_chan_bias(&mut self, x: Var, b: Var) -> Var {
        let (tx, tb) = (&self.nodes[x.0].value, &self.nodes[b.0].value);
        let (sx, sb) = (tx.shape().to_vec(), tb.shape());
        assert!(
            sx.len() == 4 && sb.len() == 1 && sx[1] == sb[0],
            "add_chan_bias {sx:?} + {sb:?}"
        );
        let hw = sx[2] * sx[3];
        let mut data = tx.data().to_vec();
        for (i, v) in data.iter_mut().enumerate() {
            *v += tb.data()[(i / hw) % sx[1]];
        }
        let t = Tensor::new(sx, data);
        self.push(t, Op::AddChanBias(x.0, b.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| x.max(0.0)).collect(),
        );
        self.push(t, Op::Relu(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| x.tanh()).collect(),
        );
        self.push(t, Op::Tanh(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect(),
        );
        self.push(t, Op::Sigmoid(a.0))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let t = Tensor::new(
            ta.shape().to_vec(),
            ta.data().iter().map(|x| x.exp()).collect(),
        );
        self.push(t, Op::Exp(a.0))
    }

    /// Sum of all elements → scalar.
    pub fn sum(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.data().iter().sum();
        self.push(Tensor::scalar(s), Op::Sum(a.0))
    }

    /// Scales each row `i` of `x` (first axis) by `w[i]`.
    pub fn row_scale(&mut self, x: Var, w: Var) -> Var {
        let (tx, tw) = (&self.nodes[x.0].value, &self.nodes[w.0].value);
        let rows = tx.shape()[0];
        assert_eq!(tw.shape(), &[rows], "row_scale weight shape");
        let stride = tx.numel() / rows;
        let mut data = tx.data().to_vec();
        for r in 0..rows {
            let s = tw.data()[r];
            for v in &mut data[r * stride..(r + 1) * stride] {
                *v *= s;
            }
        }
        let t = Tensor::new(tx.shape().to_vec(), data);
        self.push(t, Op::RowScale(x.0, w.0))
    }

    /// Per-element binary cross-entropy with logits:
    /// `max(z,0) − z·y + ln(1 + e^(−|z|))`. Numerically stable.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Var) -> Var {
        let (tz, ty) = (&self.nodes[logits.0].value, &self.nodes[targets.0].value);
        assert_eq!(tz.shape(), ty.shape(), "bce shape mismatch");
        let data = tz
            .data()
            .iter()
            .zip(ty.data())
            .map(|(&z, &y)| z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln())
            .collect();
        let t = Tensor::new(tz.shape().to_vec(), data);
        self.push(
            t,
            Op::BceLogits {
                logits: logits.0,
                targets: targets.0,
            },
        )
    }

    /// 2-D convolution: `x [b, cin, h, w]` with `w [cout, cin, kh, kw]`,
    /// zero padding `pad`, stride `stride`.
    pub fn conv2d(&mut self, x: Var, w: Var, stride: usize, pad: usize) -> Var {
        let t = conv2d_forward(&self.nodes[x.0].value, &self.nodes[w.0].value, stride, pad);
        self.push(
            t,
            Op::Conv2d {
                x: x.0,
                w: w.0,
                stride,
                pad,
            },
        )
    }

    /// Nearest-neighbour 2× upsampling of `[b, c, h, w]`.
    pub fn upsample2x(&mut self, x: Var) -> Var {
        let tx = &self.nodes[x.0].value;
        let s = tx.shape();
        assert_eq!(s.len(), 4, "upsample2x expects 4-D input");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        let mut out = vec![0.0f32; b * c * 4 * h * w];
        let (oh, ow) = (2 * h, 2 * w);
        for bc in 0..b * c {
            let src = &tx.data()[bc * h * w..(bc + 1) * h * w];
            let dst = &mut out[bc * oh * ow..(bc + 1) * oh * ow];
            for i in 0..oh {
                for j in 0..ow {
                    dst[i * ow + j] = src[(i / 2) * w + j / 2];
                }
            }
        }
        let t = Tensor::new(vec![b, c, oh, ow], out);
        self.push(t, Op::Upsample2x(x.0))
    }

    /// Crops `[b, c, H, W]` to its top-left `[b, c, h, w]` corner.
    pub fn crop2d(&mut self, x: Var, h: usize, w: usize) -> Var {
        let tx = &self.nodes[x.0].value;
        let s = tx.shape();
        assert_eq!(s.len(), 4, "crop2d expects 4-D input");
        assert!(
            h <= s[2] && w <= s[3],
            "crop {h}×{w} exceeds {}×{}",
            s[2],
            s[3]
        );
        let (b, c, ih, iw) = (s[0], s[1], s[2], s[3]);
        let mut out = vec![0.0f32; b * c * h * w];
        for bc in 0..b * c {
            let src = &tx.data()[bc * ih * iw..(bc + 1) * ih * iw];
            let dst = &mut out[bc * h * w..(bc + 1) * h * w];
            for i in 0..h {
                dst[i * w..(i + 1) * w].copy_from_slice(&src[i * iw..i * iw + w]);
            }
        }
        let t = Tensor::new(vec![b, c, h, w], out);
        self.push(t, Op::Crop2d { x: x.0, h, w })
    }

    /// Reinterprets shape without moving data.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Vec<usize>>) -> Var {
        let t = self.nodes[x.0].value.reshaped(shape);
        self.push(t, Op::Reshape(x.0))
    }

    /// Runs the backward pass from scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward from non-scalar"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));
        for idx in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[idx].take() else {
                continue;
            };
            self.propagate(idx, &gout, &mut grads);
            grads[idx] = Some(gout);
        }
        Grads { by_node: grads }
    }

    /// Adds each parameter node's gradient into `out[param_id]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the largest parameter id used.
    pub fn accumulate_param_grads(&self, grads: &Grads, out: &mut [Tensor]) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Param(pid) = node.op {
                if let Some(g) = &grads.by_node[idx] {
                    out[pid.index()].add_assign(g);
                }
            }
        }
    }

    fn accum(grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
        match &mut grads[idx] {
            Some(t) => t.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(&self, idx: usize, gout: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[idx];
        match node.op {
            Op::Input | Op::Param(_) => {}
            Op::Add(a, b) => {
                Self::accum(grads, a, gout.clone());
                Self::accum(grads, b, gout.clone());
            }
            Op::Sub(a, b) => {
                Self::accum(grads, a, gout.clone());
                let mut gb = gout.clone();
                gb.scale(-1.0);
                Self::accum(grads, b, gb);
            }
            Op::Mul(a, b) => {
                let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                let ga = Tensor::new(
                    ta.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(tb.data())
                        .map(|(g, y)| g * y)
                        .collect(),
                );
                let gb = Tensor::new(
                    tb.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(ta.data())
                        .map(|(g, x)| g * x)
                        .collect(),
                );
                Self::accum(grads, a, ga);
                Self::accum(grads, b, gb);
            }
            Op::Neg(a) => {
                let mut g = gout.clone();
                g.scale(-1.0);
                Self::accum(grads, a, g);
            }
            Op::AddScalar(a, _) => Self::accum(grads, a, gout.clone()),
            Op::MulScalar(a, s) => {
                let mut g = gout.clone();
                g.scale(s);
                Self::accum(grads, a, g);
            }
            Op::Matmul(a, b) => {
                let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                Self::accum(grads, a, matmul_nt(gout, tb));
                Self::accum(grads, b, matmul_tn(ta, gout));
            }
            Op::AddBias(x, b) => {
                Self::accum(grads, x, gout.clone());
                let c = self.nodes[b].value.shape()[0];
                let mut gb = vec![0.0f32; c];
                for (i, g) in gout.data().iter().enumerate() {
                    gb[i % c] += g;
                }
                Self::accum(grads, b, Tensor::new(vec![c], gb));
            }
            Op::AddChanBias(x, b) => {
                Self::accum(grads, x, gout.clone());
                let sx = self.nodes[x].value.shape().to_vec();
                let hw = sx[2] * sx[3];
                let c = sx[1];
                let mut gb = vec![0.0f32; c];
                for (i, g) in gout.data().iter().enumerate() {
                    gb[(i / hw) % c] += g;
                }
                Self::accum(grads, b, Tensor::new(vec![c], gb));
            }
            Op::Relu(a) => {
                let ta = &self.nodes[a].value;
                let g = Tensor::new(
                    ta.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(ta.data())
                        .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                        .collect(),
                );
                Self::accum(grads, a, g);
            }
            Op::Tanh(a) => {
                let ty = &node.value;
                let g = Tensor::new(
                    ty.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(ty.data())
                        .map(|(g, y)| g * (1.0 - y * y))
                        .collect(),
                );
                Self::accum(grads, a, g);
            }
            Op::Sigmoid(a) => {
                let ty = &node.value;
                let g = Tensor::new(
                    ty.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(ty.data())
                        .map(|(g, y)| g * y * (1.0 - y))
                        .collect(),
                );
                Self::accum(grads, a, g);
            }
            Op::Exp(a) => {
                let ty = &node.value;
                let g = Tensor::new(
                    ty.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(ty.data())
                        .map(|(g, y)| g * y)
                        .collect(),
                );
                Self::accum(grads, a, g);
            }
            Op::Sum(a) => {
                let s = gout.item();
                let shape = self.nodes[a].value.shape().to_vec();
                Self::accum(grads, a, Tensor::full(shape, s));
            }
            #[allow(clippy::needless_range_loop)]
            Op::RowScale(x, w) => {
                let (tx, tw) = (&self.nodes[x].value, &self.nodes[w].value);
                let rows = tx.shape()[0];
                let stride = tx.numel() / rows;
                let mut gx = gout.data().to_vec();
                let mut gw = vec![0.0f32; rows];
                for r in 0..rows {
                    let s = tw.data()[r];
                    for k in 0..stride {
                        let i = r * stride + k;
                        gw[r] += gout.data()[i] * tx.data()[i];
                        gx[i] *= s;
                    }
                }
                Self::accum(grads, x, Tensor::new(tx.shape().to_vec(), gx));
                Self::accum(grads, w, Tensor::new(vec![rows], gw));
            }
            Op::BceLogits { logits, targets } => {
                let (tz, ty) = (&self.nodes[logits].value, &self.nodes[targets].value);
                let gz = Tensor::new(
                    tz.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(tz.data().iter().zip(ty.data()))
                        .map(|(g, (&z, &y))| g * (1.0 / (1.0 + (-z).exp()) - y))
                        .collect(),
                );
                Self::accum(grads, logits, gz);
                let gy = Tensor::new(
                    ty.shape().to_vec(),
                    gout.data()
                        .iter()
                        .zip(tz.data())
                        .map(|(g, &z)| g * (-z))
                        .collect(),
                );
                Self::accum(grads, targets, gy);
            }
            Op::Conv2d { x, w, stride, pad } => {
                let (tx, tw) = (&self.nodes[x].value, &self.nodes[w].value);
                let (gx, gw) = conv2d_backward(tx, tw, gout, stride, pad);
                Self::accum(grads, x, gx);
                Self::accum(grads, w, gw);
            }
            Op::Upsample2x(x) => {
                let s = self.nodes[x].value.shape().to_vec();
                let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
                let (oh, ow) = (2 * h, 2 * w);
                let mut gx = vec![0.0f32; b * c * h * w];
                for bc in 0..b * c {
                    let src = &gout.data()[bc * oh * ow..(bc + 1) * oh * ow];
                    let dst = &mut gx[bc * h * w..(bc + 1) * h * w];
                    for i in 0..oh {
                        for j in 0..ow {
                            dst[(i / 2) * w + j / 2] += src[i * ow + j];
                        }
                    }
                }
                Self::accum(grads, x, Tensor::new(s, gx));
            }
            Op::Crop2d { x, h, w } => {
                let s = self.nodes[x].value.shape().to_vec();
                let (b, c, ih, iw) = (s[0], s[1], s[2], s[3]);
                let mut gx = vec![0.0f32; b * c * ih * iw];
                for bc in 0..b * c {
                    let src = &gout.data()[bc * h * w..(bc + 1) * h * w];
                    let dst = &mut gx[bc * ih * iw..(bc + 1) * ih * iw];
                    for i in 0..h {
                        dst[i * iw..i * iw + w].copy_from_slice(&src[i * w..(i + 1) * w]);
                    }
                }
                Self::accum(grads, x, Tensor::new(s, gx));
            }
            Op::Reshape(x) => {
                let shape = self.nodes[x].value.shape().to_vec();
                Self::accum(grads, x, gout.reshaped(shape));
            }
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

/// `a × b` for row-major 2-D tensors.
fn matmul_raw(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
    Tensor::new(vec![m, n], out)
}

/// `g × bᵀ` — gradient w.r.t. the left matmul operand.
fn matmul_nt(g: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = (g.shape()[0], g.shape()[1]);
    let k = b.shape()[0];
    let mut out = vec![0.0f32; m * k];
    let (gd, bd) = (g.data(), b.data());
    for i in 0..m {
        for p in 0..k {
            let mut acc = 0.0;
            let grow = &gd[i * n..(i + 1) * n];
            let brow = &bd[p * n..(p + 1) * n];
            for (gv, bv) in grow.iter().zip(brow) {
                acc += gv * bv;
            }
            out[i * k + p] = acc;
        }
    }
    Tensor::new(vec![m, k], out)
}

/// `aᵀ × g` — gradient w.r.t. the right matmul operand.
fn matmul_tn(a: &Tensor, g: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = g.shape()[1];
    let mut out = vec![0.0f32; k * n];
    let (ad, gd) = (a.data(), g.data());
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let grow = &gd[i * n..(i + 1) * n];
            let orow = &mut out[p * n..(p + 1) * n];
            for (o, &gv) in orow.iter_mut().zip(grow) {
                *o += aip * gv;
            }
        }
    }
    Tensor::new(vec![k, n], out)
}

fn conv_out_dim(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - k) / stride + 1
}

fn conv2d_forward(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (sx, sw) = (x.shape(), w.shape());
    assert!(sx.len() == 4 && sw.len() == 4, "conv2d expects 4-D tensors");
    let (b, cin, h, wd) = (sx[0], sx[1], sx[2], sx[3]);
    let (cout, cin_w, kh, kw) = (sw[0], sw[1], sw[2], sw[3]);
    assert_eq!(cin, cin_w, "conv2d channel mismatch");
    let (oh, ow) = (
        conv_out_dim(h, kh, stride, pad),
        conv_out_dim(wd, kw, stride, pad),
    );
    let mut out = vec![0.0f32; b * cout * oh * ow];
    let (xd, wdata) = (x.data(), w.data());
    for bi in 0..b {
        for co in 0..cout {
            let obase = (bi * cout + co) * oh * ow;
            for ci in 0..cin {
                let xbase = (bi * cin + ci) * h * wd;
                let wbase = (co * cin + ci) * kh * kw;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = 0.0f32;
                        for ki in 0..kh {
                            let ii = (oi * stride + ki) as isize - pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * stride + kj) as isize - pad as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                acc += xd[xbase + ii as usize * wd + jj as usize]
                                    * wdata[wbase + ki * kw + kj];
                            }
                        }
                        out[obase + oi * ow + oj] += acc;
                    }
                }
            }
        }
    }
    Tensor::new(vec![b, cout, oh, ow], out)
}

fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    gout: &Tensor,
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let (sx, sw) = (x.shape(), w.shape());
    let (b, cin, h, wd) = (sx[0], sx[1], sx[2], sx[3]);
    let (cout, _, kh, kw) = (sw[0], sw[1], sw[2], sw[3]);
    let (oh, ow) = (
        conv_out_dim(h, kh, stride, pad),
        conv_out_dim(wd, kw, stride, pad),
    );
    let mut gx = vec![0.0f32; x.numel()];
    let mut gw = vec![0.0f32; w.numel()];
    let (xd, wdata, gd) = (x.data(), w.data(), gout.data());
    for bi in 0..b {
        for co in 0..cout {
            let obase = (bi * cout + co) * oh * ow;
            for ci in 0..cin {
                let xbase = (bi * cin + ci) * h * wd;
                let wbase = (co * cin + ci) * kh * kw;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let g = gd[obase + oi * ow + oj];
                        if g == 0.0 {
                            continue;
                        }
                        for ki in 0..kh {
                            let ii = (oi * stride + ki) as isize - pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * stride + kj) as isize - pad as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xi = xbase + ii as usize * wd + jj as usize;
                                let wi = wbase + ki * kw + kj;
                                gx[xi] += g * wdata[wi];
                                gw[wi] += g * xd[xi];
                            }
                        }
                    }
                }
            }
        }
    }
    (Tensor::new(sx.to_vec(), gx), Tensor::new(sw.to_vec(), gw))
}
