//! Reverse-mode automatic differentiation on a per-forward-pass tape.
//!
//! A [`Graph`] is built eagerly: every op computes its value at
//! construction time and records what it needs for the backward pass.
//! Calling [`Graph::backward`] produces gradients for every node, from
//! which parameter gradients (by [`ParamId`]) or input gradients (for
//! latent-space search) can be extracted.
//!
//! Two performance layers sit underneath the tape, both bit-transparent:
//!
//! * Heavy ops (matmul forward/backward, conv2d forward/backward) run on
//!   the [`crate::gemm`] compute core — cache-blocked, pool-parallel
//!   kernels that are bit-identical to the retained naive references
//!   (DESIGN.md Contract 9). [`crate::gemm::set_reference_kernels`]
//!   routes them back to the naive kernels for A/B benchmarks.
//! * Every tensor buffer (node values, backward intermediates, kernel
//!   scratch) is drawn from a per-graph [`ScratchArena`]; [`Graph::reset`]
//!   recycles the whole tape, so a steady-state training loop allocates
//!   nothing after its first step.

use crate::arena::ScratchArena;
use crate::gemm::{self, ConvShape};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    // The scalar is recorded for debuggability; backward is identity.
    AddScalar(usize, #[allow(dead_code)] f32),
    MulScalar(usize, f32),
    Matmul(usize, usize),
    AddBias(usize, usize),
    AddChanBias(usize, usize),
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    Exp(usize),
    Sum(usize),
    RowScale(usize, usize),
    BceLogits {
        logits: usize,
        targets: usize,
    },
    Conv2d {
        x: usize,
        w: usize,
        stride: usize,
        pad: usize,
    },
    Upsample2x(usize),
    Crop2d {
        x: usize,
        h: usize,
        w: usize,
    },
    Reshape(usize),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients of one backward pass, indexed by node.
pub struct Grads {
    by_node: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss with respect to `var` (zeros if the node did
    /// not influence the loss).
    pub fn of(&self, var: Var, graph: &Graph) -> Tensor {
        self.by_node[var.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(graph.nodes[var.0].value.shape().to_vec()))
    }
}

/// A computation tape.
pub struct Graph {
    nodes: Vec<Node>,
    // RefCell: ops allocate through `&self` borrows of neighbour values;
    // the arena is an allocation detail, never part of observable state.
    scratch: RefCell<ScratchArena>,
}

impl Graph {
    /// Creates an empty tape with a fresh buffer arena.
    pub fn new() -> Self {
        Self::with_arena(ScratchArena::new())
    }

    /// Creates an empty tape that allocates from `arena` (e.g. one
    /// recovered from a previous graph via [`Graph::into_arena`]).
    pub fn with_arena(arena: ScratchArena) -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
            scratch: RefCell::new(arena),
        }
    }

    /// Clears the tape and recycles every node buffer into the arena, so
    /// the next forward pass reuses this graph's allocations. Handles
    /// ([`Var`]) from before the reset must not be used afterwards.
    pub fn reset(&mut self) {
        let scratch = self.scratch.get_mut();
        for node in self.nodes.drain(..) {
            scratch.give(node.value.into_data());
        }
    }

    /// Consumes the graph, returning its arena (tape buffers included)
    /// for reuse by a successor graph.
    pub fn into_arena(mut self) -> ScratchArena {
        self.reset();
        self.scratch.into_inner()
    }

    /// Recycles a [`Grads`] produced by [`Graph::backward`] into the
    /// arena once the caller has consumed it (e.g. after
    /// [`Graph::accumulate_param_grads`]).
    pub fn recycle_grads(&self, grads: Grads) {
        let mut scratch = self.scratch.borrow_mut();
        for t in grads.by_node.into_iter().flatten() {
            scratch.give(t.into_data());
        }
    }

    // In reference-kernel mode (`gemm::set_reference_kernels`) the
    // allocator helpers bypass the arena: the A/B baseline is the *seed*
    // engine, which allocated one fresh buffer per op. Values are
    // unaffected either way.

    fn alloc_empty(&self, cap: usize) -> Vec<f32> {
        if gemm::reference_kernels() {
            Vec::with_capacity(cap)
        } else {
            self.scratch.borrow_mut().take_empty(cap)
        }
    }

    fn alloc_zeroed(&self, len: usize) -> Vec<f32> {
        if gemm::reference_kernels() {
            vec![0.0; len]
        } else {
            self.scratch.borrow_mut().take_zeroed(len)
        }
    }

    fn give(&self, v: Vec<f32>) {
        if !gemm::reference_kernels() {
            self.scratch.borrow_mut().give(v);
        }
    }

    /// An arena-backed copy of `t`.
    fn copy_of(&self, t: &Tensor) -> Tensor {
        let mut data = self.alloc_empty(t.numel());
        data.extend_from_slice(t.data());
        Tensor::new(t.shape().to_vec(), data)
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Injects a constant/input tensor (gradients are still computed for
    /// it, enabling input-space optimization such as latent search).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Injects a parameter from `store`; its gradient can later be
    /// collected with [`Graph::accumulate_param_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = self.copy_of(store.value(id));
        self.push(value, Op::Param(id))
    }

    /// Elementwise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().zip(tb.data()).map(|(x, y)| x + y));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Add(a.0, b.0))
    }

    /// Elementwise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "sub shape mismatch");
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().zip(tb.data()).map(|(x, y)| x - y));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Sub(a.0, b.0))
    }

    /// Elementwise product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().zip(tb.data()).map(|(x, y)| x * y));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Mul(a.0, b.0))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| -x));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Neg(a.0))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| x + s));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::AddScalar(a.0, s))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| x * s));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::MulScalar(a.0, s))
    }

    /// Matrix product `[m,k] × [k,n] → [m,n]` on the compute core.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let (sa, sb) = (ta.shape(), tb.shape());
        assert!(
            sa.len() == 2 && sb.len() == 2 && sa[1] == sb[0],
            "matmul {sa:?} × {sb:?}"
        );
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let mut out = self.alloc_zeroed(m * n);
        if gemm::reference_kernels() {
            gemm::reference::gemm_nn(&mut out, ta.data(), tb.data(), m, k, n);
        } else {
            gemm::gemm_nn(&mut out, ta.data(), tb.data(), m, k, n);
        }
        let t = Tensor::new(vec![m, n], out);
        self.push(t, Op::Matmul(a.0, b.0))
    }

    /// Broadcast bias add: `[r, c] + [c]`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let (tx, tb) = (&self.nodes[x.0].value, &self.nodes[b.0].value);
        let (sx, sb) = (tx.shape(), tb.shape());
        assert!(
            sx.len() == 2 && sb.len() == 1 && sx[1] == sb[0],
            "add_bias {sx:?} + {sb:?}"
        );
        let c = sx[1];
        let mut data = self.alloc_empty(tx.numel());
        data.extend_from_slice(tx.data());
        if gemm::reference_kernels() {
            // Seed implementation (A/B baseline): flat modulo indexing.
            for (i, v) in data.iter_mut().enumerate() {
                *v += tb.data()[i % c];
            }
        } else {
            for row in data.chunks_exact_mut(c) {
                for (v, &bv) in row.iter_mut().zip(tb.data()) {
                    *v += bv;
                }
            }
        }
        let t = Tensor::new(sx.to_vec(), data);
        self.push(t, Op::AddBias(x.0, b.0))
    }

    /// Channel bias add: `[b, c, h, w] + [c]`.
    pub fn add_chan_bias(&mut self, x: Var, b: Var) -> Var {
        let (tx, tb) = (&self.nodes[x.0].value, &self.nodes[b.0].value);
        let (sx, sb) = (tx.shape().to_vec(), tb.shape());
        assert!(
            sx.len() == 4 && sb.len() == 1 && sx[1] == sb[0],
            "add_chan_bias {sx:?} + {sb:?}"
        );
        let hw = sx[2] * sx[3];
        let mut data = self.alloc_empty(tx.numel());
        data.extend_from_slice(tx.data());
        if gemm::reference_kernels() {
            // Seed implementation (A/B baseline): div/mod per element.
            for (i, v) in data.iter_mut().enumerate() {
                *v += tb.data()[(i / hw) % sx[1]];
            }
        } else if hw > 0 {
            for (idx, plane) in data.chunks_exact_mut(hw).enumerate() {
                let bv = tb.data()[idx % sx[1]];
                for v in plane {
                    *v += bv;
                }
            }
        }
        let t = Tensor::new(sx, data);
        self.push(t, Op::AddChanBias(x.0, b.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| x.max(0.0)));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Relu(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| x.tanh()));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Tanh(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| 1.0 / (1.0 + (-x).exp())));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Sigmoid(a.0))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut data = self.alloc_empty(ta.numel());
        data.extend(ta.data().iter().map(|x| x.exp()));
        let t = Tensor::new(ta.shape().to_vec(), data);
        self.push(t, Op::Exp(a.0))
    }

    /// Sum of all elements → scalar.
    pub fn sum(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.data().iter().sum();
        self.push(Tensor::scalar(s), Op::Sum(a.0))
    }

    /// Scales each row `i` of `x` (first axis) by `w[i]`.
    pub fn row_scale(&mut self, x: Var, w: Var) -> Var {
        let (tx, tw) = (&self.nodes[x.0].value, &self.nodes[w.0].value);
        let rows = tx.shape()[0];
        assert_eq!(tw.shape(), &[rows], "row_scale weight shape");
        let stride = tx.numel() / rows;
        let mut data = self.alloc_empty(tx.numel());
        data.extend_from_slice(tx.data());
        for r in 0..rows {
            let s = tw.data()[r];
            for v in &mut data[r * stride..(r + 1) * stride] {
                *v *= s;
            }
        }
        let t = Tensor::new(tx.shape().to_vec(), data);
        self.push(t, Op::RowScale(x.0, w.0))
    }

    /// Per-element binary cross-entropy with logits:
    /// `max(z,0) − z·y + ln(1 + e^(−|z|))`. Numerically stable.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Var) -> Var {
        let (tz, ty) = (&self.nodes[logits.0].value, &self.nodes[targets.0].value);
        assert_eq!(tz.shape(), ty.shape(), "bce shape mismatch");
        let mut data = self.alloc_empty(tz.numel());
        data.extend(
            tz.data()
                .iter()
                .zip(ty.data())
                .map(|(&z, &y)| z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln()),
        );
        let t = Tensor::new(tz.shape().to_vec(), data);
        self.push(
            t,
            Op::BceLogits {
                logits: logits.0,
                targets: targets.0,
            },
        )
    }

    /// 2-D convolution: `x [b, cin, h, w]` with `w [cout, cin, kh, kw]`,
    /// zero padding `pad`, stride `stride` — lowered onto the GEMM core
    /// through an im2col scratch path.
    pub fn conv2d(&mut self, x: Var, w: Var, stride: usize, pad: usize) -> Var {
        let (tx, tw) = (&self.nodes[x.0].value, &self.nodes[w.0].value);
        let shape = ConvShape::from_shapes(tx.shape(), tw.shape(), stride, pad);
        let out_shape = vec![shape.batch, shape.cout, shape.oh(), shape.ow()];
        let t = {
            let mut scratch = self.scratch.borrow_mut();
            let mut out = scratch.take_zeroed(shape.batch * shape.cout * shape.oh() * shape.ow());
            if gemm::reference_kernels() {
                gemm::reference::conv2d_forward(&mut out, tx.data(), tw.data(), &shape);
            } else {
                gemm::conv2d_forward_into(&mut out, tx.data(), tw.data(), &shape, &mut scratch);
            }
            Tensor::new(out_shape, out)
        };
        self.push(
            t,
            Op::Conv2d {
                x: x.0,
                w: w.0,
                stride,
                pad,
            },
        )
    }

    /// Nearest-neighbour 2× upsampling of `[b, c, h, w]`.
    pub fn upsample2x(&mut self, x: Var) -> Var {
        let tx = &self.nodes[x.0].value;
        let s = tx.shape();
        assert_eq!(s.len(), 4, "upsample2x expects 4-D input");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = (2 * h, 2 * w);
        let mut out = self.alloc_zeroed(b * c * 4 * h * w);
        for bc in 0..b * c {
            let src = &tx.data()[bc * h * w..(bc + 1) * h * w];
            let dst = &mut out[bc * oh * ow..(bc + 1) * oh * ow];
            if gemm::reference_kernels() {
                // Seed implementation (A/B baseline): divisions per cell.
                for i in 0..oh {
                    for j in 0..ow {
                        dst[i * ow + j] = src[(i / 2) * w + j / 2];
                    }
                }
            } else {
                for si in 0..h {
                    let srow = &src[si * w..(si + 1) * w];
                    let rows = &mut dst[2 * si * ow..(2 * si + 2) * ow];
                    let (d0, d1) = rows.split_at_mut(ow);
                    for (j, &v) in srow.iter().enumerate() {
                        d0[2 * j] = v;
                        d0[2 * j + 1] = v;
                    }
                    d1.copy_from_slice(d0);
                }
            }
        }
        let t = Tensor::new(vec![b, c, oh, ow], out);
        self.push(t, Op::Upsample2x(x.0))
    }

    /// Crops `[b, c, H, W]` to its top-left `[b, c, h, w]` corner.
    pub fn crop2d(&mut self, x: Var, h: usize, w: usize) -> Var {
        let tx = &self.nodes[x.0].value;
        let s = tx.shape();
        assert_eq!(s.len(), 4, "crop2d expects 4-D input");
        if h == s[2] && w == s[3] && !gemm::reference_kernels() {
            // No-op crop (even widths): forward is a copy and backward a
            // pass-through, so eliding the node is bit-transparent. The
            // reference baseline keeps the seed's materialized copy.
            return x;
        }
        assert!(
            h <= s[2] && w <= s[3],
            "crop {h}×{w} exceeds {}×{}",
            s[2],
            s[3]
        );
        let (b, c, ih, iw) = (s[0], s[1], s[2], s[3]);
        let mut out = self.alloc_empty(b * c * h * w);
        for bc in 0..b * c {
            let src = &tx.data()[bc * ih * iw..(bc + 1) * ih * iw];
            for i in 0..h {
                out.extend_from_slice(&src[i * iw..i * iw + w]);
            }
        }
        let t = Tensor::new(vec![b, c, h, w], out);
        self.push(t, Op::Crop2d { x: x.0, h, w })
    }

    /// Reinterprets shape without moving data.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Vec<usize>>) -> Var {
        let tx = &self.nodes[x.0].value;
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(numel, tx.numel(), "reshape {:?} -> {:?}", tx.shape(), shape);
        let mut data = self.alloc_empty(tx.numel());
        data.extend_from_slice(tx.data());
        let t = Tensor::new(shape, data);
        self.push(t, Op::Reshape(x.0))
    }

    /// Runs the backward pass from scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward from non-scalar"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));
        for idx in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[idx].take() else {
                continue;
            };
            self.propagate(idx, &gout, &mut grads);
            grads[idx] = Some(gout);
        }
        Grads { by_node: grads }
    }

    /// Adds each parameter node's gradient into `out[param_id]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the largest parameter id used.
    pub fn accumulate_param_grads(&self, grads: &Grads, out: &mut [Tensor]) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Param(pid) = node.op {
                if let Some(g) = &grads.by_node[idx] {
                    out[pid.index()].add_assign(g);
                }
            }
        }
    }

    /// Merges `delta` into the gradient slot for node `idx`, recycling
    /// the delta buffer when the slot already holds a tensor.
    fn accum(&self, grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
        match &mut grads[idx] {
            Some(t) => {
                t.add_assign(&delta);
                self.give(delta.into_data());
            }
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(&self, idx: usize, gout: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[idx];
        match node.op {
            Op::Input | Op::Param(_) => {}
            Op::Add(a, b) => {
                self.accum(grads, a, self.copy_of(gout));
                self.accum(grads, b, self.copy_of(gout));
            }
            Op::Sub(a, b) => {
                self.accum(grads, a, self.copy_of(gout));
                let mut gb = self.copy_of(gout);
                gb.scale(-1.0);
                self.accum(grads, b, gb);
            }
            Op::Mul(a, b) => {
                let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                let mut ga = self.alloc_empty(ta.numel());
                ga.extend(gout.data().iter().zip(tb.data()).map(|(g, y)| g * y));
                let mut gb = self.alloc_empty(tb.numel());
                gb.extend(gout.data().iter().zip(ta.data()).map(|(g, x)| g * x));
                self.accum(grads, a, Tensor::new(ta.shape().to_vec(), ga));
                self.accum(grads, b, Tensor::new(tb.shape().to_vec(), gb));
            }
            Op::Neg(a) => {
                let mut g = self.copy_of(gout);
                g.scale(-1.0);
                self.accum(grads, a, g);
            }
            Op::AddScalar(a, _) => self.accum(grads, a, self.copy_of(gout)),
            Op::MulScalar(a, s) => {
                let mut g = self.copy_of(gout);
                g.scale(s);
                self.accum(grads, a, g);
            }
            Op::Matmul(a, b) => {
                let (ta, tb) = (&self.nodes[a].value, &self.nodes[b].value);
                let (m, k) = (ta.shape()[0], ta.shape()[1]);
                let n = tb.shape()[1];
                // ga = gout × tbᵀ, gb = taᵀ × gout — on the compute core.
                let mut ga = self.alloc_zeroed(m * k);
                let mut gb = self.alloc_zeroed(k * n);
                if gemm::reference_kernels() {
                    gemm::reference::gemm_nt(&mut ga, gout.data(), tb.data(), m, n, k);
                    gemm::reference::gemm_tn(&mut gb, ta.data(), gout.data(), m, k, n);
                } else {
                    gemm::gemm_nt(&mut ga, gout.data(), tb.data(), m, n, k);
                    gemm::gemm_tn(&mut gb, ta.data(), gout.data(), m, k, n);
                }
                self.accum(grads, a, Tensor::new(vec![m, k], ga));
                self.accum(grads, b, Tensor::new(vec![k, n], gb));
            }
            Op::AddBias(x, b) => {
                self.accum(grads, x, self.copy_of(gout));
                let c = self.nodes[b].value.shape()[0];
                let mut gb = self.alloc_zeroed(c);
                if gemm::reference_kernels() {
                    for (i, g) in gout.data().iter().enumerate() {
                        gb[i % c] += g;
                    }
                } else {
                    // Row-structured reduction: for each column the adds
                    // run in ascending row order, exactly like the flat
                    // `i % c` indexing it replaces.
                    for row in gout.data().chunks_exact(c) {
                        for (a, g) in gb.iter_mut().zip(row) {
                            *a += g;
                        }
                    }
                }
                self.accum(grads, b, Tensor::new(vec![c], gb));
            }
            Op::AddChanBias(x, b) => {
                self.accum(grads, x, self.copy_of(gout));
                let sx = self.nodes[x].value.shape().to_vec();
                let hw = sx[2] * sx[3];
                let c = sx[1];
                let mut gb = self.alloc_zeroed(c);
                if gemm::reference_kernels() {
                    for (i, g) in gout.data().iter().enumerate() {
                        gb[(i / hw) % c] += g;
                    }
                } else if hw > 0 {
                    for (idx, plane) in gout.data().chunks_exact(hw).enumerate() {
                        let slot = &mut gb[idx % c];
                        let mut s = *slot;
                        for &g in plane {
                            s += g;
                        }
                        *slot = s;
                    }
                }
                self.accum(grads, b, Tensor::new(vec![c], gb));
            }
            Op::Relu(a) => {
                let ta = &self.nodes[a].value;
                let mut g = self.alloc_empty(ta.numel());
                g.extend(
                    gout.data()
                        .iter()
                        .zip(ta.data())
                        .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 }),
                );
                self.accum(grads, a, Tensor::new(ta.shape().to_vec(), g));
            }
            Op::Tanh(a) => {
                let ty = &node.value;
                let mut g = self.alloc_empty(ty.numel());
                g.extend(
                    gout.data()
                        .iter()
                        .zip(ty.data())
                        .map(|(g, y)| g * (1.0 - y * y)),
                );
                self.accum(grads, a, Tensor::new(ty.shape().to_vec(), g));
            }
            Op::Sigmoid(a) => {
                let ty = &node.value;
                let mut g = self.alloc_empty(ty.numel());
                g.extend(
                    gout.data()
                        .iter()
                        .zip(ty.data())
                        .map(|(g, y)| g * y * (1.0 - y)),
                );
                self.accum(grads, a, Tensor::new(ty.shape().to_vec(), g));
            }
            Op::Exp(a) => {
                let ty = &node.value;
                let mut g = self.alloc_empty(ty.numel());
                g.extend(gout.data().iter().zip(ty.data()).map(|(g, y)| g * y));
                self.accum(grads, a, Tensor::new(ty.shape().to_vec(), g));
            }
            Op::Sum(a) => {
                let s = gout.item();
                let src = &self.nodes[a].value;
                let mut data = self.alloc_empty(src.numel());
                data.resize(src.numel(), s);
                self.accum(grads, a, Tensor::new(src.shape().to_vec(), data));
            }
            #[allow(clippy::needless_range_loop)]
            Op::RowScale(x, w) => {
                let (tx, tw) = (&self.nodes[x].value, &self.nodes[w].value);
                let rows = tx.shape()[0];
                let stride = tx.numel() / rows;
                let mut gx = self.alloc_empty(tx.numel());
                gx.extend_from_slice(gout.data());
                let mut gw = self.alloc_zeroed(rows);
                for r in 0..rows {
                    let s = tw.data()[r];
                    for k in 0..stride {
                        let i = r * stride + k;
                        gw[r] += gout.data()[i] * tx.data()[i];
                        gx[i] *= s;
                    }
                }
                self.accum(grads, x, Tensor::new(tx.shape().to_vec(), gx));
                self.accum(grads, w, Tensor::new(vec![rows], gw));
            }
            Op::BceLogits { logits, targets } => {
                let (tz, ty) = (&self.nodes[logits].value, &self.nodes[targets].value);
                let mut gz = self.alloc_empty(tz.numel());
                gz.extend(
                    gout.data()
                        .iter()
                        .zip(tz.data().iter().zip(ty.data()))
                        .map(|(g, (&z, &y))| g * (1.0 / (1.0 + (-z).exp()) - y)),
                );
                self.accum(grads, logits, Tensor::new(tz.shape().to_vec(), gz));
                let mut gy = self.alloc_empty(ty.numel());
                gy.extend(gout.data().iter().zip(tz.data()).map(|(g, &z)| g * (-z)));
                self.accum(grads, targets, Tensor::new(ty.shape().to_vec(), gy));
            }
            Op::Conv2d { x, w, stride, pad } => {
                let (tx, tw) = (&self.nodes[x].value, &self.nodes[w].value);
                let shape = ConvShape::from_shapes(tx.shape(), tw.shape(), stride, pad);
                let (gx_t, gw_t) = {
                    let mut scratch = self.scratch.borrow_mut();
                    let mut gx = scratch.take_zeroed(tx.numel());
                    let mut gw = scratch.take_zeroed(tw.numel());
                    if gemm::reference_kernels() {
                        gemm::reference::conv2d_backward(
                            &mut gx,
                            &mut gw,
                            tx.data(),
                            tw.data(),
                            gout.data(),
                            &shape,
                        );
                    } else {
                        gemm::conv2d_backward_into(
                            &mut gx,
                            &mut gw,
                            tx.data(),
                            tw.data(),
                            gout.data(),
                            &shape,
                            &mut scratch,
                        );
                    }
                    (
                        Tensor::new(tx.shape().to_vec(), gx),
                        Tensor::new(tw.shape().to_vec(), gw),
                    )
                };
                self.accum(grads, x, gx_t);
                self.accum(grads, w, gw_t);
            }
            Op::Upsample2x(x) => {
                let s = self.nodes[x].value.shape().to_vec();
                let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
                let (oh, ow) = (2 * h, 2 * w);
                let mut gx = self.alloc_zeroed(b * c * h * w);
                for bc in 0..b * c {
                    let src = &gout.data()[bc * oh * ow..(bc + 1) * oh * ow];
                    let dst = &mut gx[bc * h * w..(bc + 1) * h * w];
                    if gemm::reference_kernels() {
                        for i in 0..oh {
                            for j in 0..ow {
                                dst[(i / 2) * w + j / 2] += src[i * ow + j];
                            }
                        }
                    } else {
                        // Row-structured 2×2 pooling of the gradient;
                        // each target element's adds keep the flat (i, j)
                        // order.
                        for i in 0..oh {
                            let srow = &src[i * ow..(i + 1) * ow];
                            let drow = &mut dst[(i / 2) * w..(i / 2 + 1) * w];
                            for (sj, d) in drow.iter_mut().enumerate() {
                                let a = *d + srow[2 * sj];
                                *d = a + srow[2 * sj + 1];
                            }
                        }
                    }
                }
                self.accum(grads, x, Tensor::new(s, gx));
            }
            Op::Crop2d { x, h, w } => {
                let s = self.nodes[x].value.shape().to_vec();
                let (b, c, ih, iw) = (s[0], s[1], s[2], s[3]);
                if h == ih && w == iw && !gemm::reference_kernels() {
                    // No-op crop (even widths): the gradient passes
                    // through unchanged.
                    let mut data = self.alloc_empty(gout.numel());
                    data.extend_from_slice(gout.data());
                    self.accum(grads, x, Tensor::new(s, data));
                    return;
                }
                let mut gx = self.alloc_zeroed(b * c * ih * iw);
                for bc in 0..b * c {
                    let src = &gout.data()[bc * h * w..(bc + 1) * h * w];
                    let dst = &mut gx[bc * ih * iw..(bc + 1) * ih * iw];
                    for i in 0..h {
                        dst[i * iw..i * iw + w].copy_from_slice(&src[i * w..(i + 1) * w]);
                    }
                }
                self.accum(grads, x, Tensor::new(s, gx));
            }
            Op::Reshape(x) => {
                let shape = self.nodes[x].value.shape().to_vec();
                let mut data = self.alloc_empty(gout.numel());
                data.extend_from_slice(gout.data());
                self.accum(grads, x, Tensor::new(shape, data));
            }
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}
