//! Explicit-SIMD microkernels for the compute core, runtime-dispatched by
//! CPU capability (DESIGN.md §11, Contract 12).
//!
//! # Tiers and dispatch
//!
//! Kernels come in three tiers — [`SimdLevel::Scalar`] (the portable
//! kernels in the parent module), [`SimdLevel::Sse2`] (128-bit, part of
//! the x86-64 baseline ISA) and [`SimdLevel::Avx2`] (256-bit, requires
//! `avx2`+`fma`). The active tier is chosen **once per process**: the
//! hardware probe ([`detected_level`], `is_x86_feature_detected!` behind
//! a `OnceLock`) clamped by the `CV_SIMD=scalar|sse2|avx2` environment
//! variable (requests above the detected capability are clamped with a
//! warning on stderr — never silently honored). Benches and tests can
//! override in-process with [`set_simd_level`] or bypass the global state
//! entirely through the per-level [`gemm_nn_at`]-family entry points.
//!
//! Dispatch happens per *block call* (one branch on a relaxed atomic
//! load), never inside an inner loop, and shapes whose vectorized axis is
//! narrower than one SIMD tile fall straight to the scalar kernels.
//!
//! # Strict vs relaxed (Contract 12)
//!
//! * **Strict** (the default): every kernel preserves the reference
//!   accumulation chain of every output element — vector lanes only ever
//!   carry *independent* chains, multiplies and adds stay separate (no
//!   FMA contraction), and zero-skip differences are covered by the ±0.0
//!   lemma of the parent module. Strict kernels are **bit-identical** to
//!   the scalar kernels and to [`super::reference`] at every tier and
//!   every pool size.
//! * **Relaxed** ([`set_relaxed_kernels`], explicit opt-in): the GEMM
//!   kernels may fuse multiply-adds and split reduction chains across
//!   lanes/accumulators (the NT kernel becomes a wide FMA dot product).
//!   Results are tolerance-equivalent, not bit-identical; the equivalence
//!   suite lives in `cv-tests/compute_core.rs`. The conv stencils and the
//!   conv im2col lowering stay strict even in relaxed mode, so Contract 9
//!   for convolution holds unconditionally.
//!
//! # Safety argument
//!
//! All `unsafe` is confined to this module and takes exactly two shapes:
//!
//! 1. **ISA availability.** AVX2 kernel bodies live behind
//!    `#[target_feature(enable = "avx2,fma")]` functions that are only
//!    reachable through a [`SimdLevel::Avx2`] dispatch, and that level is
//!    only ever produced by [`detected_level`] observing `avx2`+`fma` at
//!    runtime ([`set_simd_level`] and the `CV_SIMD` parser refuse
//!    unsupported requests). SSE2 needs no check: it is part of the
//!    x86-64 baseline, and every non-x86-64 build compiles to the scalar
//!    tier only.
//! 2. **In-bounds raw-pointer arithmetic.** Kernel bodies use unaligned
//!    vector loads/stores through raw pointers; every access is bounded
//!    by the slice lengths asserted (or guaranteed by the callers'
//!    dimension asserts) before the pointers are formed, and `&mut`
//!    borrow rules guarantee output/input slices never alias.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

/// One tier of the runtime-dispatched kernel family, ordered by
/// capability (`Scalar < Sse2 < Avx2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// The portable kernels of the parent module (compiler-autovectorized
    /// on most targets). Always available.
    Scalar = 0,
    /// 128-bit `std::arch` kernels. Part of the x86-64 baseline ISA, so
    /// always available on x86-64; unavailable elsewhere.
    Sse2 = 1,
    /// 256-bit `std::arch` kernels. Requires runtime-detected `avx2` and
    /// `fma` (FMA instructions are emitted only in relaxed mode, but the
    /// tier requires both so the mode toggle never changes dispatch).
    Avx2 = 2,
}

impl SimdLevel {
    /// Every tier in ascending capability order.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];

    /// The lowercase name used by `CV_SIMD`, perf reports, and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Parses a `CV_SIMD` value (case-insensitive, surrounding
    /// whitespace ignored).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// Whether this tier can run on the current hardware.
    pub fn is_supported(self) -> bool {
        self <= detected_level()
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            0 => SimdLevel::Scalar,
            1 => SimdLevel::Sse2,
            2 => SimdLevel::Avx2,
            _ => unreachable!("invalid SimdLevel encoding {v}"),
        }
    }
}

/// Whether a kernel must preserve the reference accumulation chains or
/// may trade them for throughput (Contract 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Chain-preserving: bit-identical to the scalar kernels and to
    /// [`super::reference`] for finite inputs.
    Strict,
    /// May fuse multiply-adds and reassociate reduction chains; results
    /// are tolerance-equivalent only. At [`SimdLevel::Scalar`] relaxed is
    /// identical to strict (the scalar kernels have no relaxed variant).
    Relaxed,
}

static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

/// The highest tier the hardware supports, probed once per process via
/// `is_x86_feature_detected!` and memoized (repeat calls are one
/// `OnceLock` load, never a CPUID re-probe).
pub fn detected_level() -> SimdLevel {
    *DETECTED.get_or_init(probe_level)
}

fn probe_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
        SimdLevel::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The tier the kernels are **actually using** — the detected capability
/// clamped by `CV_SIMD` (read once) or the last [`set_simd_level`]
/// override. This is what perf reports must record: the level used, not
/// the one requested.
pub fn simd_level() -> SimdLevel {
    match ACTIVE.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let lvl = initial_level();
            // A racing initializer computes the same value (the env var
            // is read-only and the probe is deterministic), so a plain
            // store is fine.
            ACTIVE.store(lvl as u8, Ordering::Relaxed);
            lvl
        }
        v => SimdLevel::from_u8(v),
    }
}

fn initial_level() -> SimdLevel {
    let detected = detected_level();
    let Ok(req) = std::env::var("CV_SIMD") else {
        return detected;
    };
    match SimdLevel::parse(&req) {
        Some(want) if want <= detected => want,
        Some(want) => {
            eprintln!(
                "cv-nn: CV_SIMD={} exceeds the detected capability ({}); clamping",
                want.name(),
                detected.name()
            );
            detected
        }
        None => {
            eprintln!(
                "cv-nn: unrecognized CV_SIMD={req:?} (expected scalar|sse2|avx2); using {}",
                detected.name()
            );
            detected
        }
    }
}

/// Overrides the active tier in-process (A/B benchmarking). Returns
/// `false` — and changes nothing — if `level` exceeds the detected
/// hardware capability. In strict mode (the default) flipping the level
/// can only change speed, never bits; use from concurrent tests only
/// with that in mind.
pub fn set_simd_level(level: SimdLevel) -> bool {
    if !level.is_supported() {
        return false;
    }
    ACTIVE.store(level as u8, Ordering::Relaxed);
    true
}

static RELAXED: AtomicBool = AtomicBool::new(false);

/// Opts the GEMM kernels into relaxed mode ([`KernelMode::Relaxed`]).
/// **This changes result bits** (tolerance-equivalent, not
/// bit-identical), so it is never enabled implicitly — no environment
/// variable, no auto-detection. Conv stays strict regardless.
pub fn set_relaxed_kernels(on: bool) {
    RELAXED.store(on, Ordering::Relaxed);
}

/// Whether [`set_relaxed_kernels`] has opted into relaxed GEMM kernels.
pub fn relaxed_kernels() -> bool {
    RELAXED.load(Ordering::Relaxed)
}

/// The ISA features relevant to kernel dispatch that the CPU reports,
/// for perf-report honesty (`cpu_features` in `bench_perf.json`).
pub fn cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut f = vec!["sse2"];
        if std::arch::is_x86_feature_detected!("avx") {
            f.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            f.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            f.push("fma");
        }
        f
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Tiny-shape guard: clamps the tier so a kernel whose vectorized axis
/// holds less than one 128-bit tile (or one 256-bit tile for AVX2) runs
/// scalar (resp. SSE2) instead — one branch here, none in the inner
/// loops.
fn level_for_width(level: SimdLevel, width: usize) -> SimdLevel {
    if width >= 8 {
        level
    } else if width >= 4 {
        level.min(SimdLevel::Sse2)
    } else {
        SimdLevel::Scalar
    }
}

// ---------------------------------------------------------------------
// Dispatch wrappers (called from the parent module's block kernels)
// ---------------------------------------------------------------------

#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn nn_run(
    level: SimdLevel,
    relaxed: bool,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    match level {
        SimdLevel::Scalar => super::nn_block_scalar(out, a, b, k, n),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::nn_sse2(relaxed, out, a, b, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only produced by a dispatch that observed
        // avx2+fma via `detected_level()` (see module safety argument).
        SimdLevel::Avx2 => unsafe { x86::nn_avx2(relaxed, out, a, b, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar SIMD level on a non-x86-64 build"),
    }
}

/// NN row block at the active tier and mode.
pub(super) fn dispatch_nn(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    nn_run(
        level_for_width(simd_level(), n),
        relaxed_kernels(),
        out,
        a,
        b,
        k,
        n,
    );
}

/// NN row block at the active tier, strict mode regardless of the
/// relaxed toggle — the conv im2col lowering uses this so convolution
/// stays bit-exact (Contract 9) even when GEMM has opted into relaxed.
pub(super) fn dispatch_nn_strict(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    nn_run(level_for_width(simd_level(), n), false, out, a, b, k, n);
}

#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn tn_run(
    level: SimdLevel,
    relaxed: bool,
    out: &mut [f32],
    a: &[f32],
    g: &[f32],
    p_off: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    match level {
        SimdLevel::Scalar => super::tn_block_scalar(out, a, g, p_off, m, k, n),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::tn_sse2(relaxed, out, a, g, p_off, m, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as for NN — Avx2 implies a successful runtime probe.
        SimdLevel::Avx2 => unsafe { x86::tn_avx2(relaxed, out, a, g, p_off, m, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar SIMD level on a non-x86-64 build"),
    }
}

/// TN output-row block at the active tier and mode.
pub(super) fn dispatch_tn(
    out: &mut [f32],
    a: &[f32],
    g: &[f32],
    p_off: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    tn_run(
        level_for_width(simd_level(), n),
        relaxed_kernels(),
        out,
        a,
        g,
        p_off,
        m,
        k,
        n,
    );
}

#[cfg(target_arch = "x86_64")]
std::thread_local! {
    /// Per-worker Bᵀ pack buffer for the strict NT kernel, reused across
    /// calls so steady-state training stays allocation-free.
    static NT_PACK: core::cell::RefCell<Vec<f32>> = const { core::cell::RefCell::new(Vec::new()) };
}

/// NT row block at the active tier and mode.
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub(super) fn dispatch_nt(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if relaxed_kernels() {
            // Relaxed NT vectorizes the reduction axis, so clamp on n.
            match level_for_width(simd_level(), n) {
                SimdLevel::Scalar => {}
                SimdLevel::Sse2 => return x86::nt_dot_sse2(out, g, b, n, kk),
                // SAFETY: as for NN — Avx2 implies a successful probe.
                SimdLevel::Avx2 => return unsafe { x86::nt_dot_avx2(out, g, b, n, kk) },
            }
        } else {
            // Strict NT vectorizes the output axis (kk) via a packed
            // transpose; a single-row block cannot amortize the pack.
            // At 128 bits the pack costs as much as it saves (measured
            // ~0.96x vs the autovectorized scalar dot), so the packed
            // path is AVX2-only; SSE2-class hosts run the scalar tier.
            if level_for_width(simd_level(), kk) == SimdLevel::Avx2 && out.len() / kk >= 2 {
                return NT_PACK.with(|cell| {
                    let pack = &mut cell.borrow_mut();
                    // SAFETY: as for NN — Avx2 implies a successful probe.
                    unsafe { x86::nt_avx2(out, g, b, n, kk, pack) }
                });
            }
        }
    }
    super::nt_block_scalar(out, g, b, n, kk);
}

#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
fn stencil3_run(
    level: SimdLevel,
    acc: bool,
    dst: &mut [f32],
    src: &[f32],
    t0: f32,
    t1: f32,
    t2: f32,
) {
    match level {
        SimdLevel::Scalar => stencil3_scalar(acc, dst, src, t0, t1, t2),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::stencil3_sse2(acc, dst, src, t0, t1, t2),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as for NN — Avx2 implies a successful runtime probe.
        SimdLevel::Avx2 => unsafe { x86::stencil3_avx2(acc, dst, src, t0, t1, t2) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar SIMD level on a non-x86-64 build"),
    }
}

/// 3-tap stencil `dst[i] (+)= src[i]·t0 + src[i+1]·t1 + src[i+2]·t2` at
/// the active tier — **always strict** (every tier is bit-identical; the
/// relaxed toggle is ignored), preserving the conv fused-path chains
/// `((d + s0·t0) + s1·t1) + s2·t2` (acc) and `(s0·t0 + s1·t1) + s2·t2`
/// (set).
///
/// # Panics
///
/// Panics unless `src.len() >= dst.len() + 2`.
pub(super) fn dispatch_stencil3(
    acc: bool,
    dst: &mut [f32],
    src: &[f32],
    t0: f32,
    t1: f32,
    t2: f32,
) {
    assert!(
        src.len() >= dst.len() + 2,
        "stencil3: src shorter than dst+2"
    );
    stencil3_run(
        level_for_width(simd_level(), dst.len()),
        acc,
        dst,
        src,
        t0,
        t1,
        t2,
    );
}

/// The scalar 3-tap stencil, written exactly like the conv fused-path
/// interior loops it replaces (same per-element chains).
fn stencil3_scalar(acc: bool, dst: &mut [f32], src: &[f32], t0: f32, t1: f32, t2: f32) {
    if acc {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = ((*d + src[i] * t0) + src[i + 1] * t1) + src[i + 2] * t2;
        }
    } else {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = (src[i] * t0 + src[i + 1] * t1) + src[i + 2] * t2;
        }
    }
}

// ---------------------------------------------------------------------
// Per-level entry points (test/bench A/B surface)
// ---------------------------------------------------------------------

/// `out[m,n] += a[m,k] × b[k,n]` through the kernel of one specific tier
/// and mode, single-threaded, bypassing the global dispatch state — the
/// race-free A/B surface for equivalence tests.
///
/// # Panics
///
/// Panics if `level` is unsupported on this hardware
/// ([`SimdLevel::is_supported`]) or if slice lengths do not match.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_at(
    level: SimdLevel,
    mode: KernelMode,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(
        level.is_supported(),
        "SIMD level {:?} unsupported here",
        level
    );
    assert_eq!(a.len(), m * k, "gemm_nn a length");
    assert_eq!(b.len(), k * n, "gemm_nn b length");
    assert_eq!(out.len(), m * n, "gemm_nn out length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    nn_run(level, mode == KernelMode::Relaxed, out, a, b, k, n);
}

/// `out[m,kk] = g[m,n] × b[kk,n]ᵀ` (fresh write) through one specific
/// tier and mode; see [`gemm_nn_at`].
///
/// # Panics
///
/// Panics if `level` is unsupported or slice lengths do not match.
#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
pub fn gemm_nt_at(
    level: SimdLevel,
    mode: KernelMode,
    out: &mut [f32],
    g: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    kk: usize,
) {
    assert!(
        level.is_supported(),
        "SIMD level {:?} unsupported here",
        level
    );
    assert_eq!(g.len(), m * n, "gemm_nt g length");
    assert_eq!(b.len(), kk * n, "gemm_nt b length");
    assert_eq!(out.len(), m * kk, "gemm_nt out length");
    if m == 0 || kk == 0 {
        return;
    }
    if n == 0 {
        out.fill(0.0);
        return;
    }
    match level {
        SimdLevel::Scalar => super::nt_block_scalar(out, g, b, n, kk),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => {
            if mode == KernelMode::Relaxed {
                x86::nt_dot_sse2(out, g, b, n, kk);
            } else {
                x86::nt_sse2(out, g, b, n, kk, &mut Vec::new());
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `is_supported` passed above, so avx2+fma were detected.
        SimdLevel::Avx2 => unsafe {
            if mode == KernelMode::Relaxed {
                x86::nt_dot_avx2(out, g, b, n, kk);
            } else {
                x86::nt_avx2(out, g, b, n, kk, &mut Vec::new());
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("is_supported admitted a non-scalar level off x86-64"),
    }
}

/// `out[k,n] += a[m,k]ᵀ × g[m,n]` through one specific tier and mode;
/// see [`gemm_nn_at`].
///
/// # Panics
///
/// Panics if `level` is unsupported or slice lengths do not match.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_at(
    level: SimdLevel,
    mode: KernelMode,
    out: &mut [f32],
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(
        level.is_supported(),
        "SIMD level {:?} unsupported here",
        level
    );
    assert_eq!(a.len(), m * k, "gemm_tn a length");
    assert_eq!(g.len(), m * n, "gemm_tn g length");
    assert_eq!(out.len(), k * n, "gemm_tn out length");
    if k == 0 || n == 0 || m == 0 {
        return;
    }
    tn_run(level, mode == KernelMode::Relaxed, out, a, g, 0, m, k, n);
}

/// The conv 3-tap stencil through one specific tier (always strict);
/// `acc` selects the accumulating form. See `dispatch_stencil3` for
/// the chain shapes.
///
/// # Panics
///
/// Panics if `level` is unsupported or `src.len() < dst.len() + 2`.
pub fn stencil3_at(level: SimdLevel, acc: bool, dst: &mut [f32], src: &[f32], taps: [f32; 3]) {
    assert!(
        level.is_supported(),
        "SIMD level {:?} unsupported here",
        level
    );
    assert!(
        src.len() >= dst.len() + 2,
        "stencil3: src shorter than dst+2"
    );
    stencil3_run(level, acc, dst, src, taps[0], taps[1], taps[2]);
}

// ---------------------------------------------------------------------
// x86-64 kernel bodies
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Lane-width abstraction over the x86-64 f32 vector ISAs. The
    /// generic kernel bodies below are written once against this trait
    /// and monomorphized into per-ISA entry functions.
    ///
    /// All methods are `unsafe`: they lower to intrinsics of the
    /// implementor's ISA (callable only when that ISA is active — see
    /// the module safety argument) and take raw pointers the caller must
    /// keep in bounds for `LANES` consecutive `f32`s.
    trait VecF32: Copy {
        /// The register type (`__m128` / `__m256`).
        type V: Copy;
        /// f32 lanes per register.
        const LANES: usize;
        unsafe fn splat(x: f32) -> Self::V;
        unsafe fn zero() -> Self::V;
        unsafe fn loadu(p: *const f32) -> Self::V;
        unsafe fn storeu(p: *mut f32, v: Self::V);
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
        /// `a·b + acc`, fused where the ISA has FMA (relaxed mode only —
        /// fusion changes rounding; SSE2 falls back to `add(mul(..))`).
        unsafe fn mul_add(a: Self::V, b: Self::V, acc: Self::V) -> Self::V;
        /// Horizontal sum (relaxed mode only — reassociates).
        unsafe fn reduce_add(v: Self::V) -> f32;
    }

    /// 128-bit tier (x86-64 baseline).
    #[derive(Clone, Copy)]
    struct Sse2;

    impl VecF32 for Sse2 {
        type V = __m128;
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m128 {
            _mm_set1_ps(x)
        }
        #[inline(always)]
        unsafe fn zero() -> __m128 {
            _mm_setzero_ps()
        }
        #[inline(always)]
        unsafe fn loadu(p: *const f32) -> __m128 {
            _mm_loadu_ps(p)
        }
        #[inline(always)]
        unsafe fn storeu(p: *mut f32, v: __m128) {
            _mm_storeu_ps(p, v)
        }
        #[inline(always)]
        unsafe fn add(a: __m128, b: __m128) -> __m128 {
            _mm_add_ps(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m128, b: __m128) -> __m128 {
            _mm_mul_ps(a, b)
        }
        #[inline(always)]
        unsafe fn mul_add(a: __m128, b: __m128, acc: __m128) -> __m128 {
            // No FMA in the SSE2 tier; unfused on purpose.
            _mm_add_ps(acc, _mm_mul_ps(a, b))
        }
        #[inline(always)]
        unsafe fn reduce_add(v: __m128) -> f32 {
            hsum128(v)
        }
    }

    /// `(v0+v1) + (v2+v3)` with SSE1/2 shuffles only.
    #[inline(always)]
    unsafe fn hsum128(v: __m128) -> f32 {
        let hi = _mm_movehl_ps(v, v); // [v2, v3, ..]
        let pair = _mm_add_ps(v, hi); // [v0+v2, v1+v3, ..]
        let odd = _mm_shuffle_ps(pair, pair, 0b01); // lane1 → lane0
        _mm_cvtss_f32(_mm_add_ss(pair, odd))
    }

    /// 256-bit tier (runtime-detected `avx2`+`fma`).
    #[derive(Clone, Copy)]
    struct Avx2;

    impl VecF32 for Avx2 {
        type V = __m256;
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m256 {
            _mm256_set1_ps(x)
        }
        #[inline(always)]
        unsafe fn zero() -> __m256 {
            _mm256_setzero_ps()
        }
        #[inline(always)]
        unsafe fn loadu(p: *const f32) -> __m256 {
            _mm256_loadu_ps(p)
        }
        #[inline(always)]
        unsafe fn storeu(p: *mut f32, v: __m256) {
            _mm256_storeu_ps(p, v)
        }
        #[inline(always)]
        unsafe fn add(a: __m256, b: __m256) -> __m256 {
            _mm256_add_ps(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m256, b: __m256) -> __m256 {
            _mm256_mul_ps(a, b)
        }
        #[inline(always)]
        unsafe fn mul_add(a: __m256, b: __m256, acc: __m256) -> __m256 {
            _mm256_fmadd_ps(a, b, acc)
        }
        #[inline(always)]
        unsafe fn reduce_add(v: __m256) -> f32 {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps(v, 1);
            hsum128(_mm_add_ps(lo, hi))
        }
    }

    // -----------------------------------------------------------------
    // Shared rank-update body (NN and TN)
    // -----------------------------------------------------------------

    /// One output row of the rank update, columns `js`:
    /// `out[j] (chain)+= Σ_t mult[t]·panel[t·n + j]`, chain ascending in
    /// `t` — exactly the reference chain of NN (`t = p`) and TN
    /// (`t = i`), with `±0.0` terms included (bit-safe, module lemma).
    ///
    /// Safety: `orow` must be valid for `js.end` writes, `mrow` for
    /// `red` reads at stride `mstride`, `panel` for `red·n` reads.
    #[inline(always)]
    unsafe fn row_update_v<V: VecF32, const FMA: bool>(
        orow: *mut f32,
        js: core::ops::Range<usize>,
        mrow: *const f32,
        mstride: usize,
        red: usize,
        panel: *const f32,
        n: usize,
    ) {
        let mut j = js.start;
        while j + V::LANES <= js.end {
            let mut acc = V::loadu(orow.add(j));
            for t in 0..red {
                let va = V::splat(*mrow.add(t * mstride));
                let vb = V::loadu(panel.add(t * n + j));
                acc = if FMA {
                    V::mul_add(va, vb, acc)
                } else {
                    V::add(acc, V::mul(va, vb))
                };
            }
            V::storeu(orow.add(j), acc);
            j += V::LANES;
        }
        while j < js.end {
            let mut o = *orow.add(j);
            for t in 0..red {
                let av = *mrow.add(t * mstride);
                o = if FMA {
                    av.mul_add(*panel.add(t * n + j), o)
                } else {
                    o + av * *panel.add(t * n + j)
                };
            }
            *orow.add(j) = o;
            j += 1;
        }
    }

    /// Register-blocked rank update `out[r,j] (chain)+= Σ_t mult[r,t] ·
    /// panel[t,j]` over 4-row × 2-register output tiles. Accumulators
    /// live in registers across the whole reduction, so each element's
    /// chain is one ascending-`t` sequence — the reference chain of both
    /// NN (`mult = a`, `t = p`) and TN (`mult = aᵀ`, `t = i`), with the
    /// scalar kernels' `±0.0` quad-skips simply not taken (bit-safe).
    /// The shared `panel` tile is loaded once per 4 rows, quartering the
    /// memory traffic that bounds the autovectorized scalar kernels.
    ///
    /// `mult[r,t]` is read at `mult + r·m_row + t·m_red`, so the same
    /// body serves NN (`m_row = k, m_red = 1`) and TN (`m_row = 1,
    /// m_red = k`).
    ///
    /// Safety: `out.len()` must be a multiple of `n`; `panel` valid for
    /// `red·n` reads; `mult` valid for reads at every
    /// `r·m_row + t·m_red`, `r < out.len()/n`, `t < red`.
    #[inline(always)]
    unsafe fn mm_block_v<V: VecF32, const FMA: bool>(
        out: &mut [f32],
        n: usize,
        red: usize,
        mult: *const f32,
        m_red: usize,
        m_row: usize,
        panel: *const f32,
    ) {
        let rows = out.len() / n;
        let tile = 2 * V::LANES;
        let mut r = 0;
        while r + 4 <= rows {
            let m0 = mult.add(r * m_row);
            let m1 = mult.add((r + 1) * m_row);
            let m2 = mult.add((r + 2) * m_row);
            let m3 = mult.add((r + 3) * m_row);
            let o0 = out.as_mut_ptr().add(r * n);
            let o1 = o0.add(n);
            let o2 = o1.add(n);
            let o3 = o2.add(n);
            let mut j = 0;
            while j + tile <= n {
                let mut a00 = V::loadu(o0.add(j));
                let mut a01 = V::loadu(o0.add(j + V::LANES));
                let mut a10 = V::loadu(o1.add(j));
                let mut a11 = V::loadu(o1.add(j + V::LANES));
                let mut a20 = V::loadu(o2.add(j));
                let mut a21 = V::loadu(o2.add(j + V::LANES));
                let mut a30 = V::loadu(o3.add(j));
                let mut a31 = V::loadu(o3.add(j + V::LANES));
                for t in 0..red {
                    let pb = panel.add(t * n + j);
                    let b0 = V::loadu(pb);
                    let b1 = V::loadu(pb.add(V::LANES));
                    let v0 = V::splat(*m0.add(t * m_red));
                    let v1 = V::splat(*m1.add(t * m_red));
                    let v2 = V::splat(*m2.add(t * m_red));
                    let v3 = V::splat(*m3.add(t * m_red));
                    if FMA {
                        a00 = V::mul_add(v0, b0, a00);
                        a01 = V::mul_add(v0, b1, a01);
                        a10 = V::mul_add(v1, b0, a10);
                        a11 = V::mul_add(v1, b1, a11);
                        a20 = V::mul_add(v2, b0, a20);
                        a21 = V::mul_add(v2, b1, a21);
                        a30 = V::mul_add(v3, b0, a30);
                        a31 = V::mul_add(v3, b1, a31);
                    } else {
                        a00 = V::add(a00, V::mul(v0, b0));
                        a01 = V::add(a01, V::mul(v0, b1));
                        a10 = V::add(a10, V::mul(v1, b0));
                        a11 = V::add(a11, V::mul(v1, b1));
                        a20 = V::add(a20, V::mul(v2, b0));
                        a21 = V::add(a21, V::mul(v2, b1));
                        a30 = V::add(a30, V::mul(v3, b0));
                        a31 = V::add(a31, V::mul(v3, b1));
                    }
                }
                V::storeu(o0.add(j), a00);
                V::storeu(o0.add(j + V::LANES), a01);
                V::storeu(o1.add(j), a10);
                V::storeu(o1.add(j + V::LANES), a11);
                V::storeu(o2.add(j), a20);
                V::storeu(o2.add(j + V::LANES), a21);
                V::storeu(o3.add(j), a30);
                V::storeu(o3.add(j + V::LANES), a31);
                j += tile;
            }
            if j < n {
                row_update_v::<V, FMA>(o0, j..n, m0, m_red, red, panel, n);
                row_update_v::<V, FMA>(o1, j..n, m1, m_red, red, panel, n);
                row_update_v::<V, FMA>(o2, j..n, m2, m_red, red, panel, n);
                row_update_v::<V, FMA>(o3, j..n, m3, m_red, red, panel, n);
            }
            r += 4;
        }
        while r < rows {
            row_update_v::<V, FMA>(
                out.as_mut_ptr().add(r * n),
                0..n,
                mult.add(r * m_row),
                m_red,
                red,
                panel,
                n,
            );
            r += 1;
        }
    }

    // -----------------------------------------------------------------
    // NT kernels
    // -----------------------------------------------------------------

    /// How many g-columns the strict NT kernel packs (transposes) at a
    /// time; 32 rows of Bᵀ keep the pack L2-resident for any `kk` the
    /// models use.
    const NT_JB: usize = 32;

    /// Strict NT: `out[i,p] = Σ_j g[i,j]·b[p,j]`, chains ascending in
    /// `j`. Vectorizing `j` would split the chain, so instead `b` is
    /// transposed in `NT_JB`-column blocks into `pack` and each `(i,j)`
    /// becomes a vector axpy over the contiguous output axis `p` —
    /// `j`-ascending per element, `gv == 0.0` skipped (bit-safe ±0.0
    /// skip, same as the scalar kernel; `g` is ReLU-sparse in backward).
    ///
    /// Safety: `out.len()` must be a multiple of `kk`; `g` valid for
    /// `rows·n` reads; `b` valid for `kk·n` reads.
    #[inline(always)]
    unsafe fn nt_packed_v<V: VecF32>(
        out: &mut [f32],
        g: &[f32],
        b: &[f32],
        n: usize,
        kk: usize,
        pack: &mut Vec<f32>,
    ) {
        let rows = out.len() / kk;
        out.fill(0.0);
        if pack.len() < NT_JB * kk {
            pack.resize(NT_JB * kk, 0.0);
        }
        let pk = pack.as_mut_ptr();
        let mut j0 = 0;
        while j0 < n {
            let jb = (n - j0).min(NT_JB);
            // pack[jj, p] = b[p, j0+jj]
            for p in 0..kk {
                let bp = b.as_ptr().add(p * n + j0);
                for jj in 0..jb {
                    *pk.add(jj * kk + p) = *bp.add(jj);
                }
            }
            for i in 0..rows {
                let grow = &g[i * n..(i + 1) * n];
                let orow = out.as_mut_ptr().add(i * kk);
                for jj in 0..jb {
                    let gv = grow[j0 + jj];
                    if gv == 0.0 {
                        continue;
                    }
                    let bt = pk.add(jj * kk) as *const f32;
                    let vg = V::splat(gv);
                    let mut p = 0;
                    while p + V::LANES <= kk {
                        let o = V::loadu(orow.add(p));
                        V::storeu(orow.add(p), V::add(o, V::mul(vg, V::loadu(bt.add(p)))));
                        p += V::LANES;
                    }
                    while p < kk {
                        *orow.add(p) += gv * *bt.add(p);
                        p += 1;
                    }
                }
            }
            j0 += jb;
        }
    }

    /// Relaxed NT: plain wide dot products — 4 vector accumulators per
    /// output element, FMA where available, horizontal reduce at the
    /// end. Branchless and fast, but the reduction chain is split across
    /// `4·LANES` partial chains: tolerance-equivalent only.
    ///
    /// Safety: as [`nt_packed_v`].
    #[inline(always)]
    unsafe fn nt_dot_v<V: VecF32>(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
        let rows = out.len() / kk;
        for i in 0..rows {
            let grow = g.as_ptr().add(i * n);
            let orow = &mut out[i * kk..(i + 1) * kk];
            for (p, o) in orow.iter_mut().enumerate() {
                let brow = b.as_ptr().add(p * n);
                let mut acc0 = V::zero();
                let mut acc1 = V::zero();
                let mut acc2 = V::zero();
                let mut acc3 = V::zero();
                let mut j = 0;
                while j + 4 * V::LANES <= n {
                    acc0 = V::mul_add(V::loadu(grow.add(j)), V::loadu(brow.add(j)), acc0);
                    acc1 = V::mul_add(
                        V::loadu(grow.add(j + V::LANES)),
                        V::loadu(brow.add(j + V::LANES)),
                        acc1,
                    );
                    acc2 = V::mul_add(
                        V::loadu(grow.add(j + 2 * V::LANES)),
                        V::loadu(brow.add(j + 2 * V::LANES)),
                        acc2,
                    );
                    acc3 = V::mul_add(
                        V::loadu(grow.add(j + 3 * V::LANES)),
                        V::loadu(brow.add(j + 3 * V::LANES)),
                        acc3,
                    );
                    j += 4 * V::LANES;
                }
                while j + V::LANES <= n {
                    acc0 = V::mul_add(V::loadu(grow.add(j)), V::loadu(brow.add(j)), acc0);
                    j += V::LANES;
                }
                let mut s = V::reduce_add(V::add(V::add(acc0, acc1), V::add(acc2, acc3)));
                while j < n {
                    s = (*grow.add(j)).mul_add(*brow.add(j), s);
                    j += 1;
                }
                *o = s;
            }
        }
    }

    // -----------------------------------------------------------------
    // 3-tap stencil
    // -----------------------------------------------------------------

    /// Vectorized conv 3-tap stencil: three shifted unaligned loads per
    /// tile, per-element chain identical to the scalar fused paths
    /// (separate mul/add — always strict).
    ///
    /// Safety: `src` must be valid for `dst.len() + 2` reads (asserted
    /// by every dispatch wrapper); `dst`/`src` cannot alias (distinct
    /// `&mut`/`&` borrows).
    #[inline(always)]
    unsafe fn stencil3_v<V: VecF32, const ACC: bool>(
        dst: &mut [f32],
        src: &[f32],
        t0: f32,
        t1: f32,
        t2: f32,
    ) {
        let len = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let v0 = V::splat(t0);
        let v1 = V::splat(t1);
        let v2 = V::splat(t2);
        let mut i = 0;
        while i + V::LANES <= len {
            let s0 = V::loadu(sp.add(i));
            let s1 = V::loadu(sp.add(i + 1));
            let s2 = V::loadu(sp.add(i + 2));
            let r = if ACC {
                V::add(
                    V::add(V::add(V::loadu(dp.add(i)), V::mul(s0, v0)), V::mul(s1, v1)),
                    V::mul(s2, v2),
                )
            } else {
                V::add(V::add(V::mul(s0, v0), V::mul(s1, v1)), V::mul(s2, v2))
            };
            V::storeu(dp.add(i), r);
            i += V::LANES;
        }
        while i < len {
            let (s0, s1, s2) = (*sp.add(i), *sp.add(i + 1), *sp.add(i + 2));
            *dp.add(i) = if ACC {
                ((*dp.add(i) + s0 * t0) + s1 * t1) + s2 * t2
            } else {
                (s0 * t0 + s1 * t1) + s2 * t2
            };
            i += 1;
        }
    }

    // -----------------------------------------------------------------
    // Monomorphic entry points
    // -----------------------------------------------------------------
    //
    // SSE2 entries are safe functions: the ISA is unconditionally
    // available on x86-64 and all pointer accesses stay inside the
    // argument slices (kernel safety comments above). AVX2 entries are
    // `unsafe fn` behind `#[target_feature(enable = "avx2,fma")]`; the
    // caller contract for every one of them is the same single line:
    //
    // # Safety: requires runtime-detected `avx2` and `fma` (guaranteed
    // by dispatching through `SimdLevel::Avx2`, which only
    // `detected_level()` can produce).

    pub(super) fn nn_sse2(
        relaxed: bool,
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
    ) {
        debug_assert!(a.len() >= (out.len() / n) * k && b.len() >= k * n);
        // SAFETY: baseline ISA; bounds per the dimension asserts of the
        // public callers (see mm_block_v safety notes).
        unsafe {
            if relaxed {
                mm_block_v::<Sse2, true>(out, n, k, a.as_ptr(), 1, k, b.as_ptr());
            } else {
                mm_block_v::<Sse2, false>(out, n, k, a.as_ptr(), 1, k, b.as_ptr());
            }
        }
    }

    /// # Safety
    ///
    /// Requires runtime-detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn nn_avx2(
        relaxed: bool,
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
    ) {
        debug_assert!(a.len() >= (out.len() / n) * k && b.len() >= k * n);
        if relaxed {
            mm_block_v::<Avx2, true>(out, n, k, a.as_ptr(), 1, k, b.as_ptr());
        } else {
            mm_block_v::<Avx2, false>(out, n, k, a.as_ptr(), 1, k, b.as_ptr());
        }
    }

    pub(super) fn tn_sse2(
        relaxed: bool,
        out: &mut [f32],
        a: &[f32],
        g: &[f32],
        p_off: usize,
        m: usize,
        n: usize,
    ) {
        let k = a.len() / m.max(1);
        debug_assert!(g.len() >= m * n && a.len() >= m * k);
        // SAFETY: baseline ISA; mult reads hit a[t·k + p_off + r],
        // r < out.len()/n ≤ k − p_off, t < m — inside `a`.
        unsafe {
            if relaxed {
                mm_block_v::<Sse2, true>(out, n, m, a.as_ptr().add(p_off), k, 1, g.as_ptr());
            } else {
                mm_block_v::<Sse2, false>(out, n, m, a.as_ptr().add(p_off), k, 1, g.as_ptr());
            }
        }
    }

    /// # Safety
    ///
    /// Requires runtime-detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tn_avx2(
        relaxed: bool,
        out: &mut [f32],
        a: &[f32],
        g: &[f32],
        p_off: usize,
        m: usize,
        n: usize,
    ) {
        let k = a.len() / m.max(1);
        debug_assert!(g.len() >= m * n && a.len() >= m * k);
        if relaxed {
            mm_block_v::<Avx2, true>(out, n, m, a.as_ptr().add(p_off), k, 1, g.as_ptr());
        } else {
            mm_block_v::<Avx2, false>(out, n, m, a.as_ptr().add(p_off), k, 1, g.as_ptr());
        }
    }

    pub(super) fn nt_sse2(
        out: &mut [f32],
        g: &[f32],
        b: &[f32],
        n: usize,
        kk: usize,
        pack: &mut Vec<f32>,
    ) {
        // SAFETY: baseline ISA; bounds per nt_packed_v's safety notes.
        unsafe { nt_packed_v::<Sse2>(out, g, b, n, kk, pack) }
    }

    /// # Safety
    ///
    /// Requires runtime-detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn nt_avx2(
        out: &mut [f32],
        g: &[f32],
        b: &[f32],
        n: usize,
        kk: usize,
        pack: &mut Vec<f32>,
    ) {
        nt_packed_v::<Avx2>(out, g, b, n, kk, pack);
    }

    pub(super) fn nt_dot_sse2(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
        // SAFETY: baseline ISA; bounds per nt_dot_v's safety notes.
        unsafe { nt_dot_v::<Sse2>(out, g, b, n, kk) }
    }

    /// # Safety
    ///
    /// Requires runtime-detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn nt_dot_avx2(out: &mut [f32], g: &[f32], b: &[f32], n: usize, kk: usize) {
        nt_dot_v::<Avx2>(out, g, b, n, kk);
    }

    pub(super) fn stencil3_sse2(
        acc: bool,
        dst: &mut [f32],
        src: &[f32],
        t0: f32,
        t1: f32,
        t2: f32,
    ) {
        debug_assert!(src.len() >= dst.len() + 2);
        // SAFETY: baseline ISA; src length asserted by every caller.
        unsafe {
            if acc {
                stencil3_v::<Sse2, true>(dst, src, t0, t1, t2);
            } else {
                stencil3_v::<Sse2, false>(dst, src, t0, t1, t2);
            }
        }
    }

    /// # Safety
    ///
    /// Requires runtime-detected `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn stencil3_avx2(
        acc: bool,
        dst: &mut [f32],
        src: &[f32],
        t0: f32,
        t1: f32,
        t2: f32,
    ) {
        debug_assert!(src.len() >= dst.len() + 2);
        if acc {
            stencil3_v::<Avx2, true>(dst, src, t0, t1, t2);
        } else {
            stencil3_v::<Avx2, false>(dst, src, t0, t1, t2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                match s % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((s % 2000) as f32 - 1000.0) / 64.0,
                }
            })
            .collect()
    }

    fn supported() -> Vec<SimdLevel> {
        SimdLevel::ALL
            .into_iter()
            .filter(|l| l.is_supported())
            .collect()
    }

    #[test]
    fn level_names_and_parse_roundtrip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
            assert_eq!(SimdLevel::parse(&l.name().to_uppercase()), Some(l));
        }
        assert_eq!(SimdLevel::parse(" avx2\n"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("avx512"), None);
    }

    #[test]
    fn detection_is_sane() {
        let d = detected_level();
        #[cfg(target_arch = "x86_64")]
        assert!(d >= SimdLevel::Sse2, "SSE2 is the x86-64 baseline");
        assert!(d.is_supported());
        assert!(SimdLevel::Scalar.is_supported());
        // The active level never exceeds the hardware.
        assert!(simd_level() <= d);
        // Memoized probes agree with themselves.
        assert_eq!(detected_level(), d);
    }

    #[test]
    fn relaxed_defaults_off() {
        assert!(
            !relaxed_kernels(),
            "relaxed kernels must be explicit opt-in"
        );
    }

    #[test]
    fn cpu_features_match_detection() {
        let f = cpu_features();
        if detected_level() == SimdLevel::Avx2 {
            assert!(f.contains(&"avx2") && f.contains(&"fma"));
        }
        #[cfg(target_arch = "x86_64")]
        assert!(f.contains(&"sse2"));
    }

    #[test]
    fn tiny_shape_guard_clamps() {
        assert_eq!(level_for_width(SimdLevel::Avx2, 3), SimdLevel::Scalar);
        assert_eq!(level_for_width(SimdLevel::Avx2, 4), SimdLevel::Sse2);
        assert_eq!(level_for_width(SimdLevel::Avx2, 8), SimdLevel::Avx2);
        assert_eq!(level_for_width(SimdLevel::Sse2, 100), SimdLevel::Sse2);
        assert_eq!(level_for_width(SimdLevel::Scalar, 100), SimdLevel::Scalar);
    }

    #[test]
    fn strict_levels_are_bit_identical_on_gemm() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 32, 9),
            (8, 257, 13),
            (5, 300, 33),
            (2, 7, 16),
            (6, 130, 11),
        ] {
            let a = vals(m * k, 21);
            let b = vals(k * n, 22);
            let mut base = vec![0.0f32; m * n];
            gemm_nn_at(
                SimdLevel::Scalar,
                KernelMode::Strict,
                &mut base,
                &a,
                &b,
                m,
                k,
                n,
            );
            for level in supported() {
                let mut out = vec![0.0f32; m * n];
                gemm_nn_at(level, KernelMode::Strict, &mut out, &a, &b, m, k, n);
                assert!(
                    out.iter()
                        .zip(&base)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "nn {level:?} ({m},{k},{n})"
                );
                // NT reuses the same shapes with n as the reduction axis.
                let g = vals(m * n, 23);
                let bt = vals(k * n, 24);
                let mut nt_base = vec![0.0f32; m * k];
                let mut nt_out = vec![0.0f32; m * k];
                gemm_nt_at(
                    SimdLevel::Scalar,
                    KernelMode::Strict,
                    &mut nt_base,
                    &g,
                    &bt,
                    m,
                    n,
                    k,
                );
                gemm_nt_at(level, KernelMode::Strict, &mut nt_out, &g, &bt, m, n, k);
                assert!(
                    nt_out
                        .iter()
                        .zip(&nt_base)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "nt {level:?} ({m},{n},{k})"
                );
                let mut tn_base = vec![0.0f32; k * n];
                let mut tn_out = vec![0.0f32; k * n];
                gemm_tn_at(
                    SimdLevel::Scalar,
                    KernelMode::Strict,
                    &mut tn_base,
                    &a,
                    &g,
                    m,
                    k,
                    n,
                );
                gemm_tn_at(level, KernelMode::Strict, &mut tn_out, &a, &g, m, k, n);
                assert!(
                    tn_out
                        .iter()
                        .zip(&tn_base)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "tn {level:?} ({m},{k},{n})"
                );
            }
        }
    }

    #[test]
    fn stencil_levels_are_bit_identical() {
        for len in [0usize, 1, 2, 3, 5, 8, 13, 31, 64, 100] {
            let src = vals(len + 2, 31);
            let taps = [0.5f32, -1.25, 2.0];
            for acc in [false, true] {
                let mut base = vals(len, 32);
                stencil3_at(SimdLevel::Scalar, acc, &mut base, &src, taps);
                for level in supported() {
                    let mut out = vals(len, 32);
                    stencil3_at(level, acc, &mut out, &src, taps);
                    assert!(
                        out.iter()
                            .zip(&base)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "stencil {level:?} len={len} acc={acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn relaxed_is_close_to_strict() {
        let (m, k, n) = (5, 300, 17);
        let a = vals(m * k, 41);
        let b = vals(k * n, 42);
        for level in supported() {
            let mut strict = vec![0.0f32; m * n];
            let mut relaxed = vec![0.0f32; m * n];
            gemm_nn_at(level, KernelMode::Strict, &mut strict, &a, &b, m, k, n);
            gemm_nn_at(level, KernelMode::Relaxed, &mut relaxed, &a, &b, m, k, n);
            for (i, (x, y)) in strict.iter().zip(&relaxed).enumerate() {
                let tol = 1e-3 * (1.0 + x.abs());
                assert!((x - y).abs() <= tol, "{level:?} nn[{i}]: {x} vs {y}");
            }
            let g = vals(m * n, 43);
            let mut s2 = vec![0.0f32; m * k];
            let mut r2 = vec![0.0f32; m * k];
            gemm_nt_at(level, KernelMode::Strict, &mut s2, &g, &b[..k * n], m, n, k);
            gemm_nt_at(
                level,
                KernelMode::Relaxed,
                &mut r2,
                &g,
                &b[..k * n],
                m,
                n,
                k,
            );
            for (i, (x, y)) in s2.iter().zip(&r2).enumerate() {
                let tol = 1e-3 * (1.0 + x.abs());
                assert!((x - y).abs() <= tol, "{level:?} nt[{i}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn set_simd_level_rejects_unsupported_and_roundtrips() {
        let initial = simd_level();
        for level in SimdLevel::ALL {
            if level.is_supported() {
                assert!(set_simd_level(level));
                assert_eq!(simd_level(), level);
            } else {
                assert!(!set_simd_level(level));
            }
        }
        assert!(set_simd_level(initial));
        assert_eq!(simd_level(), initial);
    }
}
