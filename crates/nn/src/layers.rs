//! Reusable layers: fully connected and convolutional.
//!
//! Both layer kinds build their forward passes from [`Graph`] ops, so
//! the dense (`matmul` + bias) and convolution paths run on the
//! deterministic parallel compute core ([`crate::gemm`]) in both
//! directions — layers never touch kernels directly.

use crate::graph::{Graph, Var};
use crate::init::{he_init, xavier_init};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = x·Wᵀ... (stored as [in, out]) + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl Linear {
    /// Registers parameters with He initialization (ReLU-friendly).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(he_init([in_features, out_features], in_features, rng));
        let b = store.add(Tensor::zeros([out_features]));
        Linear {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Registers parameters with Xavier initialization (tanh-friendly or
    /// output heads).
    pub fn new_xavier<R: Rng + ?Sized>(
        store: &mut ParamStore,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(xavier_init(
            [in_features, out_features],
            in_features,
            out_features,
            rng,
        ));
        let b = store.add(Tensor::zeros([out_features]));
        Linear {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Applies the layer to a `[batch, in_features]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_bias(xw, b)
    }
}

/// A 2-D convolution layer with stride and padding.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Conv2d {
    /// Registers parameters with He initialization.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = store.add(he_init(
            [out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let b = store.add(Tensor::zeros([out_channels]));
        Conv2d {
            w,
            b,
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
        }
    }

    /// Applies the layer to a `[batch, in_channels, h, w]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let y = g.conv2d(x, w, self.stride, self.pad);
        g.add_chan_bias(y, b)
    }

    /// Output spatial size for a square input of side `n`.
    pub fn out_size(&self, n: usize) -> usize {
        (n + 2 * self.pad - self.kernel) / self.stride + 1
    }
}

/// A plain multi-layer perceptron with ReLU activations between layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[64, 128, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(store: &mut ParamStore, sizes: &[usize], rng: &mut R) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Applies the network (ReLU between layers, linear output).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i + 1 < self.layers.len() {
                h = g.relu(h);
            }
        }
        h
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").out_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, 8, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([5, 8]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[5, 3]);
    }

    #[test]
    fn conv_shapes_with_odd_input() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(&mut store, 1, 4, 3, 2, 1, &mut rng);
        assert_eq!(conv.out_size(31), 16);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 1, 31, 31]));
        let y = conv.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), &[2, 4, 16, 16]);
    }

    #[test]
    fn mlp_end_to_end_gradients_flow() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, &[4, 16, 1], &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::new([2, 4], vec![0.5; 8]));
        let y = mlp.forward(&mut g, &store, x);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        let mut buf = store.zero_grads();
        g.accumulate_param_grads(&grads, &mut buf);
        let total: f32 = buf.iter().map(Tensor::norm).sum();
        assert!(total > 0.0, "gradients must reach the parameters");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn tiny_mlp_rejected() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&mut store, &[4], &mut rng);
    }
}
