//! Parameter storage and the Adam optimizer.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index (used to address gradient buffers).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns all trainable tensors of a model plus Adam moment estimates.
///
/// Serializable with serde, so models can be checkpointed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Tensor>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step: u64,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore {
            values: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            step: 0,
        }
    }

    /// Registers a parameter; returns its handle.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        self.m.push(Tensor::zeros(value.shape().to_vec()));
        self.v.push(Tensor::zeros(value.shape().to_vec()));
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access (rarely needed; prefer the optimizer).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// A zeroed gradient buffer aligned with this store, for use with
    /// [`crate::Graph::accumulate_param_grads`].
    pub fn zero_grads(&self) -> Vec<Tensor> {
        self.values
            .iter()
            .map(|t| Tensor::zeros(t.shape().to_vec()))
            .collect()
    }

    /// Number of optimizer steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Raw access to a parameter's (value, adam_m, adam_v) for
    /// checkpointing.
    pub(crate) fn raw_parts(&self, i: usize) -> (&Tensor, &Tensor, &Tensor) {
        (&self.values[i], &self.m[i], &self.v[i])
    }

    /// Replaces the whole store contents during checkpoint restore.
    pub(crate) fn restore(&mut self, step: u64, parts: Vec<(Tensor, Tensor, Tensor)>) {
        self.values.clear();
        self.m.clear();
        self.v.clear();
        for (value, m, v) in parts {
            self.values.push(value);
            self.m.push(m);
            self.v.push(v);
        }
        self.step = step;
    }

    /// One Adam step (Kingma & Ba 2014) over all parameters.
    ///
    /// # Panics
    ///
    /// Panics if `grads` is not aligned with the store.
    pub fn adam_step(&mut self, grads: &[Tensor], cfg: &AdamConfig) {
        assert_eq!(grads.len(), self.values.len(), "gradient buffer misaligned");
        self.step += 1;
        let t = self.step as f64;
        let bc1 = 1.0 - cfg.beta1.powf(t as f32);
        let bc2 = 1.0 - cfg.beta2.powf(t as f32);
        for ((value, grad), (m, v)) in self
            .values
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(value.shape(), grad.shape(), "gradient shape misaligned");
            let vd = value.data_mut();
            let md = m.data_mut();
            let vvd = v.data_mut();
            for i in 0..vd.len() {
                let mut g = grad.data()[i];
                if !g.is_finite() {
                    g = 0.0; // drop pathological gradients rather than poisoning weights
                }
                let gc = g.clamp(-cfg.grad_clip, cfg.grad_clip);
                md[i] = cfg.beta1 * md[i] + (1.0 - cfg.beta1) * gc;
                vvd[i] = cfg.beta2 * vvd[i] + (1.0 - cfg.beta2) * gc * gc;
                let mhat = md[i] / bc1;
                let vhat = vvd[i] / bc2;
                vd[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        }
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// Per-element gradient clip (absolute value).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut store = ParamStore::new();
        let w = store.add(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let b = store.add(Tensor::zeros([2]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 6);
        assert_eq!(store.value(w).data()[3], 4.0);
        assert_eq!(store.value(b).numel(), 2);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 by handing Adam the analytic gradient.
        let mut store = ParamStore::new();
        let w = store.add(Tensor::scalar(0.0));
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        for _ in 0..300 {
            let wv = store.value(w).item();
            let grads = vec![Tensor::scalar(2.0 * (wv - 3.0))];
            store.adam_step(&grads, &cfg);
        }
        assert!((store.value(w).item() - 3.0).abs() < 0.05);
        assert_eq!(store.steps(), 300);
    }

    #[test]
    fn nan_gradients_are_dropped() {
        let mut store = ParamStore::new();
        let w = store.add(Tensor::scalar(1.0));
        store.adam_step(&[Tensor::scalar(f32::NAN)], &AdamConfig::default());
        assert!(store.value(w).item().is_finite());
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_grads_panic() {
        let mut store = ParamStore::new();
        let _ = store.add(Tensor::scalar(1.0));
        store.adam_step(&[], &AdamConfig::default());
    }
}
