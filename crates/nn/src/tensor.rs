//! A minimal dense `f32` tensor.

use serde::{Deserialize, Serialize};

/// A row-major dense tensor of `f32`.
///
/// Shapes are dynamic (`Vec<usize>`); all autodiff ops validate shapes at
/// graph-construction time so mismatches fail fast with a clear message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn new(shape: impl Into<Vec<usize>>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} != shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Vec<usize>>, value: f32) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; numel],
        }
    }

    /// A 1-element scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: impl Into<Vec<usize>>) -> Tensor {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.numel(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Elementwise in-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale: `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::zeros([4]).data(), &[0.0; 4]);
        assert_eq!(Tensor::full([2], 3.0).data(), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn shape_mismatch_panics() {
        let _ = Tensor::new([2, 2], vec![1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshaped([3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::new([3], vec![1., 2., 3.]);
        a.add_assign(&Tensor::new([3], vec![10., 10., 10.]));
        assert_eq!(a.data(), &[11., 12., 13.]);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 6., 6.5]);
        assert!((Tensor::new([2], vec![3., 4.]).norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!Tensor::zeros([3]).has_non_finite());
        assert!(Tensor::new([2], vec![1.0, f32::NAN]).has_non_finite());
        assert!(Tensor::new([2], vec![1.0, f32::INFINITY]).has_non_finite());
    }
}
