//! Numerical gradient checking for every autodiff op.
//!
//! Each check builds a scalar loss from an op, perturbs each input
//! element by ±ε, and compares the finite-difference slope against the
//! analytic gradient. f32 and central differences give ~1e-2 relative
//! agreement on well-scaled inputs.

use cv_nn::{Graph, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Builds loss = scalar-valued `f(inputs)` twice per element for finite
/// differences, and once for the analytic gradient, then compares.
fn gradcheck(inputs: &[Tensor], f: impl Fn(&mut Graph, &[Var]) -> Var) {
    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.input(t.clone())).collect();
    let out = f(&mut g, &vars);
    let loss = g.sum(out);
    let grads = g.backward(loss);

    for (which, input) in inputs.iter().enumerate() {
        let analytic = grads.of(vars[which], &g);
        for elem in 0..input.numel() {
            let eval = |delta: f32| -> f32 {
                let mut perturbed: Vec<Tensor> = inputs.to_vec();
                perturbed[which].data_mut()[elem] += delta;
                let mut g = Graph::new();
                let vars: Vec<Var> = perturbed.iter().map(|t| g.input(t.clone())).collect();
                let out = f(&mut g, &vars);
                let loss = g.sum(out);
                g.value(loss).item()
            };
            let numeric = (eval(EPS) - eval(-EPS)) / (2.0 * EPS);
            let a = analytic.data()[elem];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            assert!(
                (a - numeric).abs() / denom < TOL,
                "input {which} elem {elem}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let numel: usize = shape.iter().product();
    Tensor::new(
        shape.to_vec(),
        (0..numel).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

#[test]
fn elementwise_ops() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = rand_tensor(&[3, 4], &mut rng);
    let b = rand_tensor(&[3, 4], &mut rng);
    gradcheck(&[a.clone(), b.clone()], |g, v| g.add(v[0], v[1]));
    gradcheck(&[a.clone(), b.clone()], |g, v| g.sub(v[0], v[1]));
    gradcheck(&[a.clone(), b.clone()], |g, v| g.mul(v[0], v[1]));
    gradcheck(std::slice::from_ref(&a), |g, v| g.neg(v[0]));
    gradcheck(std::slice::from_ref(&a), |g, v| g.add_scalar(v[0], 0.7));
    gradcheck(std::slice::from_ref(&a), |g, v| g.mul_scalar(v[0], -1.3));
}

#[test]
fn activations() {
    let mut rng = StdRng::seed_from_u64(2);
    // Keep ReLU inputs away from the kink at 0.
    let mut a = rand_tensor(&[4, 4], &mut rng);
    for v in a.data_mut() {
        if v.abs() < 0.1 {
            *v += 0.2;
        }
    }
    gradcheck(std::slice::from_ref(&a), |g, v| g.relu(v[0]));
    gradcheck(std::slice::from_ref(&a), |g, v| g.tanh(v[0]));
    gradcheck(std::slice::from_ref(&a), |g, v| g.sigmoid(v[0]));
    gradcheck(&[a], |g, v| g.exp(v[0]));
}

#[test]
fn matmul_and_bias() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = rand_tensor(&[3, 5], &mut rng);
    let b = rand_tensor(&[5, 2], &mut rng);
    gradcheck(&[a.clone(), b], |g, v| g.matmul(v[0], v[1]));
    let bias = rand_tensor(&[5], &mut rng);
    gradcheck(&[a, bias], |g, v| g.add_bias(v[0], v[1]));
}

#[test]
fn chan_bias_and_row_scale() {
    let mut rng = StdRng::seed_from_u64(4);
    let x = rand_tensor(&[2, 3, 2, 2], &mut rng);
    let b = rand_tensor(&[3], &mut rng);
    gradcheck(&[x, b], |g, v| g.add_chan_bias(v[0], v[1]));

    let x = rand_tensor(&[4, 3], &mut rng);
    let w = rand_tensor(&[4], &mut rng);
    gradcheck(&[x, w], |g, v| g.row_scale(v[0], v[1]));
}

#[test]
fn bce_with_logits() {
    let mut rng = StdRng::seed_from_u64(5);
    let logits = rand_tensor(&[3, 3], &mut rng);
    let targets = Tensor::new([3, 3], (0..9).map(|i| (i % 2) as f32).collect());
    // Only check the logits gradient path (targets are data).
    gradcheck(&[logits], |g, v| {
        let t = g.input(Tensor::new(
            [3, 3],
            (0..9).map(|i| (i % 2) as f32).collect(),
        ));
        g.bce_with_logits(v[0], t)
    });
    let _ = targets;
}

#[test]
fn conv2d_all_paths() {
    let mut rng = StdRng::seed_from_u64(6);
    for (stride, pad) in [(1usize, 0usize), (1, 1), (2, 1)] {
        let x = rand_tensor(&[2, 2, 5, 5], &mut rng);
        let w = rand_tensor(&[3, 2, 3, 3], &mut rng);
        gradcheck(&[x, w], |g, v| g.conv2d(v[0], v[1], stride, pad));
    }
}

#[test]
fn upsample_crop_reshape() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = rand_tensor(&[1, 2, 3, 3], &mut rng);
    gradcheck(std::slice::from_ref(&x), |g, v| g.upsample2x(v[0]));
    let big = rand_tensor(&[1, 2, 4, 4], &mut rng);
    gradcheck(&[big], |g, v| g.crop2d(v[0], 3, 2));
    gradcheck(&[x], |g, v| g.reshape(v[0], [2, 9]));
}

#[test]
fn composite_vae_style_loss() {
    // mu + eps*exp(0.5*logvar) reparameterization into a quadratic —
    // checks a chain like the real VAE loss end to end.
    let mut rng = StdRng::seed_from_u64(8);
    let mu = rand_tensor(&[2, 3], &mut rng);
    let logvar = rand_tensor(&[2, 3], &mut rng);
    let eps_data = rand_tensor(&[2, 3], &mut rng);
    gradcheck(&[mu, logvar], |g, v| {
        let eps = g.input(eps_data.clone());
        let half_lv = g.mul_scalar(v[1], 0.5);
        let std = g.exp(half_lv);
        let noise = g.mul(eps, std);
        let z = g.add(v[0], noise);
        let z2 = g.mul(z, z);
        // KL term: 0.5*(exp(lv) + mu^2 - 1 - lv)
        let var = g.exp(v[1]);
        let mu2 = g.mul(v[0], v[0]);
        let s1 = g.add(var, mu2);
        let s2 = g.add_scalar(s1, -1.0);
        let s3 = g.sub(s2, v[1]);
        let kl = g.mul_scalar(s3, 0.5);
        g.add(z2, kl)
    });
}

#[test]
fn grads_of_uninvolved_nodes_are_zero() {
    let mut g = Graph::new();
    let a = g.input(Tensor::scalar(1.0));
    let b = g.input(Tensor::scalar(2.0)); // never used
    let loss = g.mul(a, a);
    let grads = g.backward(loss);
    assert_eq!(grads.of(b, &g).data(), &[0.0]);
    assert!((grads.of(a, &g).data()[0] - 2.0).abs() < 1e-6);
}

#[test]
fn diamond_graph_accumulates() {
    // loss = (a + a*a); d/da = 1 + 2a.
    let mut g = Graph::new();
    let a = g.input(Tensor::scalar(3.0));
    let sq = g.mul(a, a);
    let s = g.add(a, sq);
    let loss = g.sum(s);
    let grads = g.backward(loss);
    assert!((grads.of(a, &g).data()[0] - 7.0).abs() < 1e-5);
}
