//! Property-based tests for the prefix-graph substrate.

use cv_prefix::{bitvec, mutate, topologies, PrefixGrid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random (possibly illegal) grid of width `n` built by
/// setting each free cell independently.
fn arb_grid(n: usize) -> impl Strategy<Value = PrefixGrid> {
    let free = (n - 1) * (n - 2) / 2;
    prop::collection::vec(any::<bool>(), free).prop_map(move |bits| {
        bitvec::decode_bits(n, &bits).expect("strategy generates correct lengths")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn legalize_produces_legal_grids(grid in arb_grid(16)) {
        let legal = grid.legalized();
        prop_assert!(legal.is_legal());
    }

    #[test]
    fn legalize_is_idempotent(grid in arb_grid(16)) {
        let mut once = grid.legalized();
        let again = once.legalize();
        prop_assert_eq!(again, 0, "second legalize must insert nothing");
    }

    #[test]
    fn legalize_only_adds_cells(grid in arb_grid(12)) {
        let legal = grid.legalized();
        for (i, j) in grid.cells() {
            prop_assert!(legal.get(i, j), "legalize must not remove ({}, {})", i, j);
        }
        prop_assert!(legal.node_count() >= grid.node_count());
    }

    #[test]
    fn legal_grids_have_consistent_spans(grid in arb_grid(12)) {
        let graph = grid.legalized().to_graph();
        prop_assert!(graph.spans_consistent());
        // Every output [i:0] must resolve.
        for i in 0..12 {
            let node = &graph.nodes()[graph.output_node(i)];
            prop_assert_eq!(node.span.msb, i);
            prop_assert_eq!(node.span.lsb, 0);
        }
    }

    #[test]
    fn bitvec_roundtrip(grid in arb_grid(14)) {
        let enc = bitvec::encode_f32(&grid);
        let back = bitvec::decode_f32(14, &enc).unwrap();
        prop_assert_eq!(back, grid.clone());
        let dense = bitvec::encode_dense(&grid);
        let back = bitvec::decode_dense(14, &dense).unwrap();
        prop_assert_eq!(back, grid);
    }

    #[test]
    fn depth_bounds(grid in arb_grid(16)) {
        let graph = grid.legalized().to_graph();
        // Depth is at least ceil(log2 n) (information-theoretic lower
        // bound for span [n-1:0]) and at most n-1 (ripple).
        prop_assert!(graph.depth() >= 4);
        prop_assert!(graph.depth() <= 15);
    }

    #[test]
    fn crossover_always_legal(a in arb_grid(12), b in arb_grid(12), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (la, lb) = (a.legalized(), b.legalized());
        prop_assert!(mutate::uniform_crossover(&la, &lb, &mut rng).is_legal());
        prop_assert!(mutate::rectangle_crossover(&la, &lb, &mut rng).is_legal());
    }

    #[test]
    fn neighbour_always_legal(grid in arb_grid(12), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let legal = grid.legalized();
        prop_assert!(mutate::neighbour(&legal, &mut rng).is_legal());
    }

    #[test]
    fn op_count_at_least_n_minus_1(grid in arb_grid(12)) {
        // Any legal prefix graph needs at least n-1 operators to cover all
        // output spans.
        let legal = grid.legalized();
        prop_assert!(legal.op_count() >= 11);
    }
}

#[test]
fn classical_topologies_match_known_op_counts() {
    // Kogge-Stone op count: n*ceil(log2 n) - 2^ceil(log2 n) + 1.
    for n in [8usize, 16, 32, 64] {
        let l = (n as f64).log2().ceil() as u32;
        let expected = n * l as usize - 2usize.pow(l) + 1;
        assert_eq!(
            topologies::kogge_stone(n).op_count(),
            expected,
            "kogge-stone ops at width {n}"
        );
        // Sklansky: n/2 * log2 n for powers of two.
        assert_eq!(topologies::sklansky(n).op_count(), n / 2 * l as usize);
        // Brent-Kung: 2n - 2 - log2 n for powers of two.
        assert_eq!(topologies::brent_kung(n).op_count(), 2 * n - 2 - l as usize);
    }
}
