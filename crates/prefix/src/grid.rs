//! The `N×N` bit-matrix representation of a prefix graph.

use crate::error::PrefixError;
use serde::{Deserialize, Serialize};

/// Maximum supported bitwidth.
pub const MAX_WIDTH: usize = 512;
/// Minimum supported bitwidth.
pub const MIN_WIDTH: usize = 2;

/// A prefix circuit skeleton: a lower-triangular boolean matrix.
///
/// Cell `(i, j)` with `i ≥ j` means the circuit materializes the span
/// `[i:j]` — the associative reduction of inputs `j..=i`. Two cell classes
/// are *mandatory* and can never be cleared:
///
/// * diagonal cells `(i, i)` — the circuit inputs;
/// * column-0 cells `(i, 0)` — the circuit outputs.
///
/// Everything else (`0 < j < i`) is a *free cell* that search algorithms
/// may toggle.
///
/// # Examples
///
/// ```
/// use cv_prefix::PrefixGrid;
///
/// let mut g = PrefixGrid::ripple(8); // mandatory cells only
/// assert!(g.is_legal());
/// g.set(5, 3, true)?;                // add span [5:3]
/// assert!(!g.is_legal());            // its lower parent (4, 3) is absent
/// g.legalize();                      // inserts (4, 3)
/// assert!(g.is_legal());
/// # Ok::<(), cv_prefix::PrefixError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefixGrid {
    n: usize,
    /// Row-major bit storage, `words_per_row` u64 words per row.
    words: Vec<u64>,
    words_per_row: usize,
}

impl PrefixGrid {
    /// Creates the minimal legal grid: mandatory cells only.
    ///
    /// This is exactly the ripple-carry structure (also available as
    /// [`crate::topologies::ripple`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `MIN_WIDTH..=MAX_WIDTH`.
    pub fn ripple(n: usize) -> Self {
        Self::try_ripple(n).expect("bitwidth out of supported range")
    }

    /// Fallible variant of [`PrefixGrid::ripple`].
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::BadWidth`] if `n` is outside the supported
    /// range.
    pub fn try_ripple(n: usize) -> Result<Self, PrefixError> {
        if !(MIN_WIDTH..=MAX_WIDTH).contains(&n) {
            return Err(PrefixError::BadWidth(n));
        }
        let words_per_row = n.div_ceil(64);
        let mut grid = PrefixGrid {
            n,
            words: vec![0u64; n * words_per_row],
            words_per_row,
        };
        for i in 0..n {
            grid.set_unchecked(i, i, true);
            grid.set_unchecked(i, 0, true);
        }
        Ok(grid)
    }

    /// The bitwidth `N` of this circuit.
    #[inline]
    pub fn width(&self) -> usize {
        self.n
    }

    /// Returns whether cell `(row, col)` is present.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is outside the lower triangle.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.n && col <= row,
            "cell ({row}, {col}) outside lower triangle of width {}",
            self.n
        );
        self.get_unchecked(row, col)
    }

    #[inline]
    fn get_unchecked(&self, row: usize, col: usize) -> bool {
        let w = self.words[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set_unchecked(&mut self, row: usize, col: usize, val: bool) {
        let w = &mut self.words[row * self.words_per_row + col / 64];
        if val {
            *w |= 1u64 << (col % 64);
        } else {
            *w &= !(1u64 << (col % 64));
        }
    }

    /// Sets or clears a cell.
    ///
    /// Mandatory cells (diagonal and column 0) may be "set" (a no-op) but
    /// never cleared; attempting to clear one returns an error.
    ///
    /// # Errors
    ///
    /// * [`PrefixError::OutOfTriangle`] if `col > row` or `row >= N`.
    /// * [`PrefixError::MissingMandatory`] when clearing a mandatory cell.
    pub fn set(&mut self, row: usize, col: usize, val: bool) -> Result<(), PrefixError> {
        if row >= self.n || col > row {
            return Err(PrefixError::OutOfTriangle { row, col });
        }
        if !val && (col == row || col == 0) {
            return Err(PrefixError::MissingMandatory { row, col });
        }
        self.set_unchecked(row, col, val);
        Ok(())
    }

    /// Toggles a free cell, returning the new value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrefixGrid::set`]; mandatory cells cannot be
    /// toggled.
    pub fn toggle(&mut self, row: usize, col: usize) -> Result<bool, PrefixError> {
        let new = !self.get(row, col);
        self.set(row, col, new)?;
        Ok(new)
    }

    /// Number of present cells (circuit nodes, counting inputs).
    pub fn node_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of non-input nodes (present cells off the diagonal); this is
    /// the number of prefix operators the circuit instantiates.
    pub fn op_count(&self) -> usize {
        self.node_count() - self.n
    }

    /// Iterates over all present cells as `(row, col)` pairs, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..=i)
                .filter(move |&j| self.get_unchecked(i, j))
                .map(move |j| (i, j))
        })
    }

    /// The column of the *upper parent* of `(row, col)`: the smallest
    /// `m > col` with `(row, m)` present. For non-diagonal nodes this
    /// always exists because the diagonal is mandatory.
    ///
    /// Returns `None` for diagonal (input) cells.
    pub fn upper_parent_col(&self, row: usize, col: usize) -> Option<usize> {
        if col >= row {
            return None;
        }
        ((col + 1)..=row).find(|&m| self.get_unchecked(row, m))
    }

    /// The parents of node `(row, col)`: upper parent `(row, k)` and lower
    /// parent `(k-1, col)`. `None` for inputs.
    pub fn parents(&self, row: usize, col: usize) -> Option<((usize, usize), (usize, usize))> {
        let k = self.upper_parent_col(row, col)?;
        Some(((row, k), (k - 1, col)))
    }

    /// Checks legality: every non-input present cell's lower parent is
    /// present. (Upper parents always exist.)
    pub fn is_legal(&self) -> bool {
        self.first_illegal().is_none()
    }

    /// Returns the first illegal node and its missing parent, if any.
    pub fn first_illegal(&self) -> Option<PrefixError> {
        for i in 1..self.n {
            for j in 0..i {
                if !self.get_unchecked(i, j) {
                    continue;
                }
                let k = self
                    .upper_parent_col(i, j)
                    .expect("non-diagonal cell must have an upper parent");
                if !self.get_unchecked(k - 1, j) {
                    return Some(PrefixError::MissingParent {
                        node: (i, j),
                        parent: (k - 1, j),
                    });
                }
            }
        }
        None
    }

    /// Legalizes in place by inserting missing lower parents; returns the
    /// number of cells inserted.
    ///
    /// Rows are processed from `N-1` downward. A node in row `i` can only
    /// require insertions in rows strictly below `i` (its lower parent's
    /// row is `k-1 < i`), so a single descending pass converges.
    pub fn legalize(&mut self) -> usize {
        let mut inserted = 0;
        for i in (1..self.n).rev() {
            // Collect the present columns of row i once; insertions never
            // target row i itself.
            for j in 0..i {
                if !self.get_unchecked(i, j) {
                    continue;
                }
                let k = self
                    .upper_parent_col(i, j)
                    .expect("non-diagonal cell must have an upper parent");
                if !self.get_unchecked(k - 1, j) {
                    self.set_unchecked(k - 1, j, true);
                    inserted += 1;
                }
            }
        }
        debug_assert!(self.is_legal());
        inserted
    }

    /// Returns a legalized copy, leaving `self` untouched.
    #[must_use]
    pub fn legalized(&self) -> Self {
        let mut g = self.clone();
        g.legalize();
        g
    }

    /// Number of free (non-mandatory) cells: `(n-1)(n-2)/2`.
    pub fn free_cell_count(&self) -> usize {
        (self.n - 1) * (self.n - 2) / 2
    }

    /// Iterates the free-cell coordinates in canonical (row-major) order.
    pub fn free_cells(n: usize) -> impl Iterator<Item = (usize, usize)> {
        (2..n).flat_map(move |i| (1..i).map(move |j| (i, j)))
    }

    /// Validates invariants after deserialization: storage shape and
    /// mandatory cells.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), PrefixError> {
        if !(MIN_WIDTH..=MAX_WIDTH).contains(&self.n) {
            return Err(PrefixError::BadWidth(self.n));
        }
        for i in 0..self.n {
            if !self.get_unchecked(i, i) {
                return Err(PrefixError::MissingMandatory { row: i, col: i });
            }
            if !self.get_unchecked(i, 0) {
                return Err(PrefixError::MissingMandatory { row: i, col: 0 });
            }
            // No bits above the diagonal.
            for j in (i + 1)..self.n {
                if self.get_unchecked(i, j) {
                    return Err(PrefixError::OutOfTriangle { row: i, col: j });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for PrefixGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrefixGrid(n={}, nodes={})", self.n, self.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_is_minimal_and_legal() {
        for n in [2, 3, 8, 16, 33, 64] {
            let g = PrefixGrid::ripple(n);
            assert_eq!(g.width(), n);
            // Mandatory cells: n diagonal + n column-0, overlapping at (0,0).
            assert_eq!(g.node_count(), 2 * n - 1);
            assert!(g.is_legal(), "ripple {n} must be legal");
            g.validate().unwrap();
        }
    }

    #[test]
    fn width_bounds_enforced() {
        assert_eq!(
            PrefixGrid::try_ripple(1).unwrap_err(),
            PrefixError::BadWidth(1)
        );
        assert_eq!(
            PrefixGrid::try_ripple(0).unwrap_err(),
            PrefixError::BadWidth(0)
        );
        assert_eq!(
            PrefixGrid::try_ripple(513).unwrap_err(),
            PrefixError::BadWidth(513)
        );
        assert!(PrefixGrid::try_ripple(512).is_ok());
    }

    #[test]
    fn mandatory_cells_cannot_be_cleared() {
        let mut g = PrefixGrid::ripple(8);
        assert!(matches!(
            g.set(3, 3, false),
            Err(PrefixError::MissingMandatory { .. })
        ));
        assert!(matches!(
            g.set(3, 0, false),
            Err(PrefixError::MissingMandatory { .. })
        ));
        // Setting them true is a fine no-op.
        g.set(3, 3, true).unwrap();
        g.set(3, 0, true).unwrap();
    }

    #[test]
    fn out_of_triangle_rejected() {
        let mut g = PrefixGrid::ripple(8);
        assert!(matches!(
            g.set(2, 5, true),
            Err(PrefixError::OutOfTriangle { .. })
        ));
        assert!(matches!(
            g.set(9, 0, true),
            Err(PrefixError::OutOfTriangle { .. })
        ));
    }

    #[test]
    fn parents_follow_nearest_right_rule() {
        let mut g = PrefixGrid::ripple(8);
        // Row 5 contains (5,0), (5,5). Adding (5,3): upper parent is (5,5),
        // lower parent is (4,3).
        g.set(5, 3, true).unwrap();
        assert_eq!(g.parents(5, 3), Some(((5, 5), (4, 3))));
        // Adding (5,4) changes (5,3)'s upper parent to (5,4).
        g.set(5, 4, true).unwrap();
        assert_eq!(g.parents(5, 3), Some(((5, 4), (3, 3))));
        // Inputs have no parents.
        assert_eq!(g.parents(5, 5), None);
    }

    #[test]
    fn legalize_inserts_missing_parents() {
        let mut g = PrefixGrid::ripple(8);
        g.set(5, 3, true).unwrap();
        assert!(!g.is_legal());
        let inserted = g.legalize();
        assert!(inserted >= 1);
        assert!(g.is_legal());
        assert!(g.get(4, 3), "lower parent (4,3) must have been inserted");
    }

    #[test]
    fn legalize_cascades_to_lower_rows() {
        // A single far-reaching node forces a chain of insertions.
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        g.legalize();
        assert!(g.is_legal());
        // (15,8)'s upper parent is the diagonal (15,15); lower parent
        // (14,8) must exist, which itself requires (13,8), etc.
        assert!(g.get(14, 8));
    }

    #[test]
    fn legalized_leaves_original_untouched() {
        let mut g = PrefixGrid::ripple(8);
        g.set(6, 2, true).unwrap();
        let fixed = g.legalized();
        assert!(fixed.is_legal());
        assert!(!g.is_legal());
    }

    #[test]
    fn free_cell_count_matches_iterator() {
        for n in [2, 3, 4, 8, 17] {
            let g = PrefixGrid::ripple(n);
            assert_eq!(PrefixGrid::free_cells(n).count(), g.free_cell_count());
        }
    }

    #[test]
    fn cells_iterator_matches_node_count() {
        let mut g = PrefixGrid::ripple(12);
        g.set(7, 4, true).unwrap();
        g.legalize();
        assert_eq!(g.cells().count(), g.node_count());
        for (i, j) in g.cells() {
            assert!(g.get(i, j));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_grid() {
        let mut g = PrefixGrid::ripple(10);
        g.set(7, 3, true).unwrap();
        g.legalize();
        let json = serde_json_like(&g);
        assert_eq!(json, g);
    }

    /// Round-trips through serde's in-memory representation by cloning via
    /// the Serialize/Deserialize impls would need a format crate; we use
    /// bincode-free manual check: Serialize derives exist (compile check)
    /// and Clone equality.
    fn serde_json_like(g: &PrefixGrid) -> PrefixGrid {
        g.clone()
    }

    #[test]
    fn hash_eq_consistent() {
        use std::collections::HashSet;
        let a = PrefixGrid::ripple(8);
        let mut b = PrefixGrid::ripple(8);
        b.set(5, 3, true).unwrap();
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }

    #[test]
    fn large_width_crossing_word_boundary() {
        let mut g = PrefixGrid::ripple(130);
        g.set(129, 64, true).unwrap();
        assert!(g.get(129, 64));
        assert!(!g.get(129, 63));
        g.legalize();
        assert!(g.is_legal());
    }
}
