//! Parallel prefix graph representation and manipulation.
//!
//! Many circuits — binary adders, gray-to-binary converters, leading-zero
//! detectors — can be expressed as *parallel prefix computations*: the
//! circuit computes, for every output index `i`, an associative reduction
//! of the inputs `i, i-1, ..., 0`. The shape of the reduction tree (the
//! *prefix graph*) determines the circuit's area and delay.
//!
//! This crate implements the grid representation used by PrefixRL
//! (Roy et al., DAC 2021) and CircuitVAE (Song et al., DAC 2024):
//! an `N`-bit prefix circuit is an `N×N` lower-triangular boolean matrix
//! where cell `(i, j)` (with `i ≥ j`) means the circuit materializes the
//! span `[i:j]` (the reduction of inputs `j..=i`).
//!
//! # Quick start
//!
//! ```
//! use cv_prefix::{PrefixGrid, topologies};
//!
//! // A classical 16-bit Sklansky adder skeleton:
//! let grid = topologies::sklansky(16);
//! assert!(grid.is_legal());
//! let graph = grid.to_graph();
//! assert_eq!(graph.depth(), 4); // log2(16) levels
//! ```
//!
//! The central invariant is *legality*: every non-input node `(i, j)` has
//! an upper parent `(i, k)` (the nearest present node to its right in the
//! same row) and a lower parent `(k-1, j)` which must also be present.
//! [`PrefixGrid::legalize`] inserts missing parents; every legalized grid
//! is a valid circuit.

#![deny(missing_docs)]

pub mod bitvec;
pub mod error;
pub mod graph;
pub mod grid;
pub mod metrics;
pub mod mutate;
pub mod render;
pub mod task;
pub mod topologies;

pub use error::PrefixError;
pub use graph::{Node, PrefixGraph, Span};
pub use grid::PrefixGrid;
pub use metrics::GridMetrics;
pub use task::CircuitKind;
