//! Flat bitvector encoding of the free cells of a grid.
//!
//! The VAE, the GA, and the RL baseline all operate on a fixed-length
//! vector view of the `(n-1)(n-2)/2` free cells (mandatory cells carry no
//! information). Cells are ordered row-major: `(2,1), (3,1), (3,2), ...`.

use crate::error::PrefixError;
use crate::grid::PrefixGrid;

/// Encodes the free cells of `grid` into a `0.0/1.0` float vector.
///
/// The output has length `grid.free_cell_count()` and pairs with
/// [`decode_f32`]. Floats (rather than bools) are used because the VAE
/// decoder produces Bernoulli probabilities in the same layout.
pub fn encode_f32(grid: &PrefixGrid) -> Vec<f32> {
    PrefixGrid::free_cells(grid.width())
        .map(|(i, j)| if grid.get(i, j) { 1.0 } else { 0.0 })
        .collect()
}

/// Encodes the free cells of `grid` into a bool vector.
pub fn encode_bits(grid: &PrefixGrid) -> Vec<bool> {
    PrefixGrid::free_cells(grid.width())
        .map(|(i, j)| grid.get(i, j))
        .collect()
}

/// Decodes a float vector (e.g. decoder probabilities) into a grid by
/// thresholding at 0.5. The result is *not* legalized.
///
/// # Errors
///
/// Returns [`PrefixError::BadBitvecLen`] when `bits.len()` does not match
/// the free-cell count for width `n`, or [`PrefixError::BadWidth`] for an
/// unsupported width.
pub fn decode_f32(n: usize, bits: &[f32]) -> Result<PrefixGrid, PrefixError> {
    let mut grid = PrefixGrid::try_ripple(n)?;
    let expected = grid.free_cell_count();
    if bits.len() != expected {
        return Err(PrefixError::BadBitvecLen {
            expected,
            actual: bits.len(),
        });
    }
    for ((i, j), &b) in PrefixGrid::free_cells(n).zip(bits) {
        if b >= 0.5 {
            grid.set(i, j, true)?;
        }
    }
    Ok(grid)
}

/// Decodes a bool vector into a grid. The result is *not* legalized.
///
/// # Errors
///
/// Same conditions as [`decode_f32`].
pub fn decode_bits(n: usize, bits: &[bool]) -> Result<PrefixGrid, PrefixError> {
    let mut grid = PrefixGrid::try_ripple(n)?;
    let expected = grid.free_cell_count();
    if bits.len() != expected {
        return Err(PrefixError::BadBitvecLen {
            expected,
            actual: bits.len(),
        });
    }
    for ((i, j), &b) in PrefixGrid::free_cells(n).zip(bits) {
        if b {
            grid.set(i, j, true)?;
        }
    }
    Ok(grid)
}

/// Encodes the *full* `n×n` dense grid (all cells, including mandatory
/// ones) as row-major floats — the image-like input format the CNN
/// encoder consumes (`N×N` matrix per the paper, §5.1).
pub fn encode_dense(grid: &PrefixGrid) -> Vec<f32> {
    let n = grid.width();
    let mut out = vec![0.0f32; n * n];
    for (i, j) in grid.cells() {
        out[i * n + j] = 1.0;
    }
    out
}

/// Decodes a dense `n×n` float matrix (thresholded at 0.5) into a grid.
/// Cells above the diagonal are ignored; mandatory cells are always set.
/// The result is *not* legalized.
///
/// # Errors
///
/// Returns [`PrefixError::BadBitvecLen`] when `dense.len() != n*n`, or
/// [`PrefixError::BadWidth`] for an unsupported width.
pub fn decode_dense(n: usize, dense: &[f32]) -> Result<PrefixGrid, PrefixError> {
    if dense.len() != n * n {
        return Err(PrefixError::BadBitvecLen {
            expected: n * n,
            actual: dense.len(),
        });
    }
    let mut grid = PrefixGrid::try_ripple(n)?;
    for (i, j) in PrefixGrid::free_cells(n) {
        if dense[i * n + j] >= 0.5 {
            grid.set(i, j, true)?;
        }
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn roundtrip_f32() {
        for n in [4, 8, 16, 31] {
            for (_, g) in topologies::all_classical(n) {
                let enc = encode_f32(&g);
                assert_eq!(enc.len(), g.free_cell_count());
                let back = decode_f32(n, &enc).unwrap();
                assert_eq!(back, g);
            }
        }
    }

    #[test]
    fn roundtrip_bits() {
        let g = topologies::han_carlson(16);
        let back = decode_bits(16, &encode_bits(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_dense() {
        for n in [4, 16, 26] {
            let g = topologies::sklansky(n);
            let dense = encode_dense(&g);
            assert_eq!(dense.len(), n * n);
            let back = decode_dense(n, &dense).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn dense_mandatory_cells_always_present() {
        let n = 8;
        let zeros = vec![0.0f32; n * n];
        let g = decode_dense(n, &zeros).unwrap();
        assert_eq!(g, PrefixGrid::ripple(n));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            decode_f32(8, &[0.0; 3]),
            Err(PrefixError::BadBitvecLen { .. })
        ));
        assert!(matches!(
            decode_dense(8, &[0.0; 63]),
            Err(PrefixError::BadBitvecLen { .. })
        ));
    }

    #[test]
    fn threshold_behaviour() {
        let n = 4;
        let count = PrefixGrid::ripple(n).free_cell_count();
        let probs = vec![0.49f32; count];
        let g = decode_f32(n, &probs).unwrap();
        assert_eq!(
            g.node_count(),
            2 * n - 1,
            "0.49 < threshold keeps cells clear"
        );
        let probs = vec![0.5f32; count];
        let g = decode_f32(n, &probs).unwrap();
        assert_eq!(g.node_count(), 2 * n - 1 + count, "0.5 sets all free cells");
    }
}
