//! Error types for prefix-graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or validating prefix graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The requested bitwidth is outside the supported range (2..=512).
    BadWidth(usize),
    /// A cell index `(row, col)` was outside the lower triangle of the grid.
    OutOfTriangle {
        /// Row (span MSB).
        row: usize,
        /// Column (span LSB).
        col: usize,
    },
    /// A mandatory cell (diagonal input or column-0 output) was absent.
    MissingMandatory {
        /// Row (span MSB).
        row: usize,
        /// Column (span LSB).
        col: usize,
    },
    /// A node's lower parent is absent, so the grid is not legal.
    MissingParent {
        /// The node whose parent is missing.
        node: (usize, usize),
        /// The absent lower parent.
        parent: (usize, usize),
    },
    /// A bitvector had the wrong length for the requested width.
    BadBitvecLen {
        /// Expected length (`(n-1)(n-2)/2` free cells).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadWidth(n) => {
                write!(f, "unsupported prefix width {n} (expected 2..=512)")
            }
            PrefixError::OutOfTriangle { row, col } => {
                write!(f, "cell ({row}, {col}) outside lower triangle")
            }
            PrefixError::MissingMandatory { row, col } => {
                write!(f, "mandatory cell ({row}, {col}) absent")
            }
            PrefixError::MissingParent { node, parent } => write!(
                f,
                "node ({}, {}) requires lower parent ({}, {}) which is absent",
                node.0, node.1, parent.0, parent.1
            ),
            PrefixError::BadBitvecLen { expected, actual } => {
                write!(
                    f,
                    "bitvector length {actual} does not match expected {expected}"
                )
            }
        }
    }
}

impl Error for PrefixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            PrefixError::BadWidth(1),
            PrefixError::OutOfTriangle { row: 0, col: 3 },
            PrefixError::MissingMandatory { row: 2, col: 2 },
            PrefixError::MissingParent {
                node: (3, 0),
                parent: (1, 0),
            },
            PrefixError::BadBitvecLen {
                expected: 6,
                actual: 5,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PrefixError>();
    }
}
