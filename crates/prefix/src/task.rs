//! Circuit task definitions shared across the workspace.

use serde::{Deserialize, Serialize};

/// The kind of prefix computation being optimized.
///
/// All kinds share the same grid search space; they differ only in how
/// a prefix node is technology-mapped:
///
/// * [`CircuitKind::Adder`] — each node carries a (generate, propagate)
///   pair and maps to an AO21 + AND2 pair (Brent-Kung carry operator),
///   plus XOR pre/post stages.
/// * [`CircuitKind::GrayToBinary`] — the prefix operator is a plain XOR,
///   so each node maps to a single XOR2 (Doran 2007; paper §5.5).
/// * [`CircuitKind::LeadingZero`] — the prefix operator is OR: the
///   circuit computes, for every bit, whether any higher-order input bit
///   is set — the carry network of a leading-zero detector. This is the
///   extension the paper's conclusion names ("optimize other prefix
///   computations, such as leading zero detectors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CircuitKind {
    /// Binary adder (carry-lookahead prefix graph).
    Adder,
    /// Gray-code to binary converter (XOR prefix graph).
    GrayToBinary,
    /// Leading-zero detector flag network (OR prefix graph).
    LeadingZero,
}

impl CircuitKind {
    /// Short machine-friendly name (used in CSV output and filenames).
    pub fn name(self) -> &'static str {
        match self {
            CircuitKind::Adder => "adder",
            CircuitKind::GrayToBinary => "gray2bin",
            CircuitKind::LeadingZero => "lzd",
        }
    }
}

impl std::fmt::Display for CircuitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names = [
            CircuitKind::Adder.name(),
            CircuitKind::GrayToBinary.name(),
            CircuitKind::LeadingZero.name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(CircuitKind::Adder.to_string(), "adder");
    }
}
