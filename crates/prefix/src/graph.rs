//! Node/DAG view of a legal prefix grid.

use crate::grid::PrefixGrid;
use serde::{Deserialize, Serialize};

/// A bit span `[msb:lsb]` (inclusive on both ends, `msb >= lsb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Most significant bit of the span.
    pub msb: usize,
    /// Least significant bit of the span.
    pub lsb: usize,
}

impl Span {
    /// Creates a span; `msb` must be `>= lsb`.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn new(msb: usize, lsb: usize) -> Self {
        assert!(msb >= lsb, "span msb {msb} < lsb {lsb}");
        Span { msb, lsb }
    }

    /// Number of input bits covered by this span (always at least 1,
    /// so there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.msb - self.lsb + 1
    }

    /// Whether this is a single-bit (input) span.
    pub fn is_input(&self) -> bool {
        self.msb == self.lsb
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}:{}]", self.msb, self.lsb)
    }
}

/// One node of a [`PrefixGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The span this node computes.
    pub span: Span,
    /// Indices of (upper, lower) parent nodes; `None` for inputs.
    pub parents: Option<(usize, usize)>,
    /// Logic level: 0 for inputs, `1 + max(parent levels)` otherwise.
    pub level: usize,
    /// Number of nodes that consume this node's output.
    pub fanout: usize,
}

/// An explicit DAG extracted from a legal [`PrefixGrid`].
///
/// Nodes are stored in topological order (all parents precede children),
/// which downstream passes (netlist mapping, timing) rely on.
///
/// # Examples
///
/// ```
/// use cv_prefix::topologies;
///
/// let graph = topologies::kogge_stone(8).to_graph();
/// assert_eq!(graph.width(), 8);
/// // Kogge-Stone has log2(8) = 3 levels of prefix operators.
/// assert_eq!(graph.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixGraph {
    n: usize,
    nodes: Vec<Node>,
    /// `output_nodes[i]` is the node index computing span `[i:0]`.
    output_nodes: Vec<usize>,
}

impl PrefixGraph {
    /// Builds the DAG from a grid. The grid must be legal.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not legal. Use [`PrefixGrid::legalize`] first
    /// when legality is not guaranteed.
    pub fn from_grid(grid: &PrefixGrid) -> Self {
        assert!(
            grid.is_legal(),
            "PrefixGraph::from_grid requires a legal grid"
        );
        let n = grid.width();
        // Index map from (row, col) to node index. Emit nodes in an order
        // that is automatically topological: by increasing row, and within
        // a row by decreasing column. A node (i, j)'s parents are (i, k)
        // with k > j (same row, later emitted earlier because larger col)
        // and (k-1, j) (earlier row).
        let mut index = vec![usize::MAX; n * n];
        let mut nodes: Vec<Node> = Vec::with_capacity(grid.node_count());
        for i in 0..n {
            for j in (0..=i).rev() {
                if !grid.get(i, j) {
                    continue;
                }
                let parents = grid.parents(i, j).map(|((ur, uc), (lr, lc))| {
                    let up = index[ur * n + uc];
                    let lo = index[lr * n + lc];
                    debug_assert!(up != usize::MAX && lo != usize::MAX);
                    (up, lo)
                });
                let level = match parents {
                    None => 0,
                    Some((u, l)) => 1 + nodes[u].level.max(nodes[l].level),
                };
                index[i * n + j] = nodes.len();
                nodes.push(Node {
                    span: Span::new(i, j),
                    parents,
                    level,
                    fanout: 0,
                });
            }
        }
        // Fanout accounting: each child contributes one load to each parent.
        let parent_pairs: Vec<(usize, usize)> = nodes.iter().filter_map(|nd| nd.parents).collect();
        for (u, l) in parent_pairs {
            nodes[u].fanout += 1;
            nodes[l].fanout += 1;
        }
        let output_nodes = (0..n).map(|i| index[i * n]).collect();
        PrefixGraph {
            n,
            nodes,
            output_nodes,
        }
    }

    /// The bitwidth `N`.
    pub fn width(&self) -> usize {
        self.n
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node index computing output span `[bit:0]`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= N`.
    pub fn output_node(&self, bit: usize) -> usize {
        self.output_nodes[bit]
    }

    /// Number of non-input operator nodes.
    pub fn op_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.parents.is_some()).count()
    }

    /// Maximum logic level over all nodes (0 for a 1-bit circuit).
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Maximum fanout over all nodes.
    pub fn max_fanout(&self) -> usize {
        self.nodes.iter().map(|n| n.fanout).max().unwrap_or(0)
    }

    /// Verifies functional correctness structurally: each output node's
    /// transitive span decomposition covers exactly `[i:0]` with adjacent,
    /// non-overlapping pieces. Returns `true` when every node's parents
    /// tile its span.
    pub fn spans_consistent(&self) -> bool {
        self.nodes.iter().all(|node| match node.parents {
            None => true,
            Some((u, l)) => {
                let us = self.nodes[u].span;
                let ls = self.nodes[l].span;
                us.msb == node.span.msb && ls.lsb == node.span.lsb && us.lsb == ls.msb + 1
            }
        })
    }
}

impl PrefixGrid {
    /// Convenience wrapper for [`PrefixGraph::from_grid`].
    ///
    /// # Panics
    ///
    /// Panics if the grid is not legal.
    pub fn to_graph(&self) -> PrefixGraph {
        PrefixGraph::from_grid(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn span_basics() {
        let s = Span::new(5, 2);
        assert_eq!(s.len(), 4);
        assert!(!s.is_input());
        assert!(Span::new(3, 3).is_input());
        assert_eq!(s.to_string(), "[5:2]");
    }

    #[test]
    #[should_panic(expected = "span msb")]
    fn span_rejects_inverted() {
        let _ = Span::new(1, 2);
    }

    #[test]
    fn ripple_graph_structure() {
        let g = PrefixGrid::ripple(6);
        let graph = PrefixGraph::from_grid(&g);
        assert_eq!(graph.width(), 6);
        assert_eq!(graph.op_count(), 5); // (i,0) for i=1..=5
        assert_eq!(graph.depth(), 5); // serial chain
        assert!(graph.spans_consistent());
    }

    #[test]
    fn outputs_resolve_to_full_spans() {
        let graph = topologies::sklansky(16).to_graph();
        for i in 0..16 {
            let node = &graph.nodes()[graph.output_node(i)];
            assert_eq!(node.span, Span::new(i, 0));
        }
    }

    #[test]
    fn topological_order_holds() {
        let graph = topologies::brent_kung(32).to_graph();
        for (idx, node) in graph.nodes().iter().enumerate() {
            if let Some((u, l)) = node.parents {
                assert!(u < idx && l < idx, "parents must precede children");
            }
        }
    }

    #[test]
    fn fanout_sums_to_twice_ops() {
        let graph = topologies::kogge_stone(16).to_graph();
        let total: usize = graph.nodes().iter().map(|n| n.fanout).sum();
        // Every operator node consumes exactly two parent outputs. Final
        // outputs feed the sum stage, which is not counted here.
        assert_eq!(total, 2 * graph.op_count());
    }

    #[test]
    #[should_panic(expected = "requires a legal grid")]
    fn illegal_grid_panics() {
        let mut g = PrefixGrid::ripple(8);
        g.set(6, 3, true).unwrap();
        let _ = PrefixGraph::from_grid(&g);
    }

    #[test]
    fn levels_are_consistent() {
        let graph = topologies::han_carlson(16).to_graph();
        for node in graph.nodes() {
            match node.parents {
                None => assert_eq!(node.level, 0),
                Some((u, l)) => assert_eq!(
                    node.level,
                    1 + graph.nodes()[u].level.max(graph.nodes()[l].level)
                ),
            }
        }
    }
}
