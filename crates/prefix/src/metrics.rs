//! Cheap structural metrics of a grid, useful as analytic cost proxies
//! and as features for diagnostics.

use crate::grid::PrefixGrid;
use serde::{Deserialize, Serialize};

/// Summary of a grid's structural properties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridMetrics {
    /// Bitwidth.
    pub width: usize,
    /// Total present cells (including inputs).
    pub nodes: usize,
    /// Operator (non-input) nodes.
    pub ops: usize,
    /// Logic depth (levels of operators on the longest path).
    pub depth: usize,
    /// Maximum fanout of any node.
    pub max_fanout: usize,
    /// Mean fanout over operator-feeding nodes.
    pub mean_fanout: f64,
}

impl GridMetrics {
    /// Computes metrics for a grid. Illegal grids are legalized first
    /// (matching the paper: legalization is part of the objective).
    pub fn of(grid: &PrefixGrid) -> Self {
        let legal = if grid.is_legal() {
            grid.clone()
        } else {
            grid.legalized()
        };
        let graph = legal.to_graph();
        let ops = graph.op_count();
        let fan_sum: usize = graph.nodes().iter().map(|n| n.fanout).sum();
        let fan_count = graph.nodes().iter().filter(|n| n.fanout > 0).count();
        GridMetrics {
            width: legal.width(),
            nodes: legal.node_count(),
            ops,
            depth: graph.depth(),
            max_fanout: graph.max_fanout(),
            mean_fanout: if fan_count == 0 {
                0.0
            } else {
                fan_sum as f64 / fan_count as f64
            },
        }
    }

    /// A quick analytic cost proxy (`ops + width·depth` scaled), used only
    /// for tests and sanity checks — the real objective is physical
    /// synthesis in `cv-synth`.
    pub fn analytic_proxy(&self) -> f64 {
        self.ops as f64 + 0.5 * (self.width * self.depth) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn metrics_of_classicals() {
        let m = GridMetrics::of(&topologies::ripple(16));
        assert_eq!(m.ops, 15);
        assert_eq!(m.depth, 15);
        let m = GridMetrics::of(&topologies::sklansky(16));
        assert_eq!(m.depth, 4);
        assert!(m.max_fanout >= 4);
    }

    #[test]
    fn illegal_grids_are_measured_after_legalization() {
        let mut g = PrefixGrid::ripple(16);
        g.set(15, 8, true).unwrap();
        let m = GridMetrics::of(&g);
        assert!(
            m.nodes > g.node_count(),
            "legalization adds nodes before measuring"
        );
    }

    #[test]
    fn proxy_orders_ripple_vs_sklansky() {
        let r = GridMetrics::of(&topologies::ripple(32)).analytic_proxy();
        let s = GridMetrics::of(&topologies::sklansky(32)).analytic_proxy();
        assert!(
            s < r,
            "sklansky proxy {s} should beat ripple {r} at width 32"
        );
    }
}
