//! Random perturbations of grids — the building blocks of the GA and RL
//! baselines and of initial-dataset generation.

use crate::grid::PrefixGrid;
use rand::Rng;

/// Toggles `count` uniformly random free cells. The result may be
/// illegal; callers decide whether to legalize (the paper treats
/// legalization as part of the objective).
pub fn toggle_random_cells<R: Rng + ?Sized>(grid: &mut PrefixGrid, count: usize, rng: &mut R) {
    let n = grid.width();
    if n < 3 {
        return; // no free cells below width 3
    }
    for _ in 0..count {
        let (i, j) = random_free_cell(n, rng);
        let _ = grid.toggle(i, j);
    }
}

/// Samples a uniformly random free-cell coordinate for width `n`.
///
/// # Panics
///
/// Panics if `n < 3` (no free cells exist).
pub fn random_free_cell<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (usize, usize) {
    assert!(n >= 3, "width {n} has no free cells");
    let i = rng.gen_range(2..n);
    let j = rng.gen_range(1..i);
    (i, j)
}

/// Generates a random grid by flipping each free cell on with probability
/// `density`, then legalizing. Useful for seeding initial datasets.
pub fn random_grid<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    if n >= 3 {
        for (i, j) in PrefixGrid::free_cells(n) {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                let _ = g.set(i, j, true);
            }
        }
    }
    g.legalize();
    g
}

/// A random neighbour of `grid`: toggle 1–3 free cells and legalize.
/// This is the move kernel for simulated annealing and GA mutation.
pub fn neighbour<R: Rng + ?Sized>(grid: &PrefixGrid, rng: &mut R) -> PrefixGrid {
    let mut g = grid.clone();
    let flips = rng.gen_range(1..=3);
    toggle_random_cells(&mut g, flips, rng);
    g.legalize();
    g
}

/// Uniform crossover of two parents in bitvector space, then legalize.
///
/// # Panics
///
/// Panics if the parents have different widths.
pub fn uniform_crossover<R: Rng + ?Sized>(
    a: &PrefixGrid,
    b: &PrefixGrid,
    rng: &mut R,
) -> PrefixGrid {
    assert_eq!(a.width(), b.width(), "crossover requires equal widths");
    let n = a.width();
    let mut child = PrefixGrid::ripple(n);
    for (i, j) in PrefixGrid::free_cells(n) {
        let bit = if rng.gen_bool(0.5) {
            a.get(i, j)
        } else {
            b.get(i, j)
        };
        if bit {
            let _ = child.set(i, j, true);
        }
    }
    child.legalize();
    child
}

/// Rectangle crossover: copies a random axis-aligned rectangle of cells
/// from `b` onto `a`. Preserves local sub-structures better than uniform
/// crossover for grid phenotypes.
pub fn rectangle_crossover<R: Rng + ?Sized>(
    a: &PrefixGrid,
    b: &PrefixGrid,
    rng: &mut R,
) -> PrefixGrid {
    assert_eq!(a.width(), b.width(), "crossover requires equal widths");
    let n = a.width();
    let mut child = a.clone();
    if n < 3 {
        return child;
    }
    let r0 = rng.gen_range(0..n);
    let r1 = rng.gen_range(r0..n);
    let c0 = rng.gen_range(0..n);
    let c1 = rng.gen_range(c0..n);
    for i in r0..=r1 {
        for j in c0..=c1.min(i) {
            if j > 0 && j < i {
                let _ = child.set(i, j, b.get(i, j));
            }
        }
    }
    child.legalize();
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_grid_is_legal_and_density_scales() {
        let mut rng = StdRng::seed_from_u64(7);
        let sparse = random_grid(32, 0.05, &mut rng);
        let dense = random_grid(32, 0.8, &mut rng);
        assert!(sparse.is_legal());
        assert!(dense.is_legal());
        assert!(dense.node_count() > sparse.node_count());
    }

    #[test]
    fn neighbour_is_legal_and_usually_different() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = topologies::sklansky(16);
        let mut changed = 0;
        for _ in 0..20 {
            let nb = neighbour(&base, &mut rng);
            assert!(nb.is_legal());
            if nb != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "most neighbours should differ ({changed}/20)");
    }

    #[test]
    fn crossover_children_legal() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = topologies::kogge_stone(16);
        let b = topologies::brent_kung(16);
        for _ in 0..10 {
            assert!(uniform_crossover(&a, &b, &mut rng).is_legal());
            assert!(rectangle_crossover(&a, &b, &mut rng).is_legal());
        }
    }

    #[test]
    fn crossover_of_identical_parents_after_legalize_is_parent() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = topologies::han_carlson(16);
        let child = uniform_crossover(&a, &a, &mut rng);
        assert_eq!(child, a);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn crossover_width_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform_crossover(&topologies::ripple(8), &topologies::ripple(16), &mut rng);
    }

    #[test]
    fn width_two_has_no_free_cells() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = PrefixGrid::ripple(2);
        toggle_random_cells(&mut g, 10, &mut rng);
        assert_eq!(g, PrefixGrid::ripple(2));
        let rg = random_grid(2, 0.9, &mut rng);
        assert_eq!(rg, PrefixGrid::ripple(2));
    }
}
