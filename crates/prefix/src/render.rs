//! ASCII rendering of prefix grids, used to regenerate the qualitative
//! figures (Fig. 1 design-evolution strip and Fig. 8 best-design
//! comparison).

use crate::grid::PrefixGrid;

/// Renders the lower-triangular grid: `█` for operator nodes, `·` for
/// empty cells, `◆` for inputs (diagonal), `▙` for outputs (column 0).
///
/// Row 0 (bit 0) is printed at the top to match the matrix convention in
/// the paper's figures.
pub fn grid_ascii(grid: &PrefixGrid) -> String {
    let n = grid.width();
    let mut out = String::with_capacity(n * (2 * n + 1));
    for i in 0..n {
        for j in 0..=i {
            let ch = if !grid.get(i, j) {
                '·'
            } else if i == j {
                '◆'
            } else if j == 0 {
                '▙'
            } else {
                '█'
            };
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// Renders the DAG level-by-level: one line per logic level listing the
/// spans computed at that level. Good for comparing structural shapes
/// (Fig. 8) in text output.
pub fn levels_ascii(grid: &PrefixGrid) -> String {
    let legal = if grid.is_legal() {
        grid.clone()
    } else {
        grid.legalized()
    };
    let graph = legal.to_graph();
    let depth = graph.depth();
    let mut out = String::new();
    for level in 1..=depth {
        let spans: Vec<String> = graph
            .nodes()
            .iter()
            .filter(|n| n.level == level)
            .map(|n| n.span.to_string())
            .collect();
        out.push_str(&format!("L{level:2}: {}\n", spans.join(" ")));
    }
    out
}

/// A one-line structural summary: `width=32 ops=80 depth=5 maxfo=9`.
pub fn summary_line(grid: &PrefixGrid) -> String {
    let m = crate::metrics::GridMetrics::of(grid);
    format!(
        "width={} ops={} depth={} maxfo={}",
        m.width, m.ops, m.depth, m.max_fanout
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn ascii_has_one_line_per_row() {
        let g = topologies::sklansky(8);
        let art = grid_ascii(&g);
        assert_eq!(art.lines().count(), 8);
        // Inputs on the diagonal.
        assert!(art.contains('◆'));
        // Outputs in column 0.
        assert!(art.contains('▙'));
    }

    #[test]
    fn levels_listing_counts_match() {
        let g = topologies::brent_kung(16);
        let graph = g.to_graph();
        let listing = levels_ascii(&g);
        assert_eq!(listing.lines().count(), graph.depth());
        let total_spans: usize = listing.lines().map(|l| l.matches('[').count()).sum();
        assert_eq!(total_spans, graph.op_count());
    }

    #[test]
    fn summary_is_stable() {
        let s = summary_line(&topologies::ripple(8));
        // In a ripple chain every node feeds exactly one consumer.
        assert_eq!(s, "width=8 ops=7 depth=7 maxfo=1");
    }

    #[test]
    fn different_topologies_render_differently() {
        assert_ne!(
            grid_ascii(&topologies::sklansky(16)),
            grid_ascii(&topologies::kogge_stone(16))
        );
    }
}
