//! Classical prefix-adder topologies.
//!
//! These serve three roles in the reproduction: seeds for search
//! algorithms (the paper starts CircuitVAE trajectories from Sklansky in
//! one ablation), "human designs" for the Fig. 6 Pareto comparison, and
//! the candidate pool for the emulated commercial tool.

use crate::grid::PrefixGrid;

/// Ripple-carry: mandatory cells only. Minimum area, maximum depth.
pub fn ripple(n: usize) -> PrefixGrid {
    PrefixGrid::ripple(n)
}

/// Sklansky (divide-and-conquer): minimum depth `⌈log2 n⌉`, high fanout.
pub fn sklansky(n: usize) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    let mut block = 2usize;
    while block <= n.next_power_of_two() {
        let half = block / 2;
        let mut b = 0;
        while b < n {
            for i in (b + half)..(b + block).min(n) {
                if b > 0 {
                    let _ = g.set(i, b, true);
                }
            }
            b += block;
        }
        block *= 2;
    }
    g.legalize();
    g
}

/// Kogge-Stone: minimum depth and minimum fanout, maximum wiring/area.
pub fn kogge_stone(n: usize) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    let mut dist = 1usize;
    while dist < n {
        for i in 0..n {
            let j = i.saturating_sub(2 * dist - 1);
            if j > 0 && j < i {
                let _ = g.set(i, j, true);
            }
        }
        dist *= 2;
    }
    g.legalize();
    g
}

/// Brent-Kung: near-minimum area with `2·log2(n) − 1` depth.
pub fn brent_kung(n: usize) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    // Up-sweep: spans of size 2^l ending at rows i with (i+1) % 2^l == 0.
    let mut size = 2usize;
    while size <= n {
        let mut i = size - 1;
        while i < n {
            let j = i + 1 - size;
            if j > 0 {
                let _ = g.set(i, j, true);
            }
            i += size;
        }
        size *= 2;
    }
    // Down-sweep nodes are the mandatory (i, 0) cells: their parents
    // resolve to up-sweep nodes via the nearest-right rule. Legalize to
    // insert any remaining connective tissue.
    g.legalize();
    g
}

/// Han-Carlson: Kogge-Stone over odd bits plus one final combining level.
/// A common sparsity-2 compromise between Kogge-Stone and Brent-Kung.
pub fn han_carlson(n: usize) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    // Level 1: pair nodes (i, i-1) for odd i.
    for i in (1..n).step_by(2) {
        if i - 1 > 0 {
            let _ = g.set(i, i - 1, true);
        }
    }
    // Levels >= 2: Kogge-Stone in pair space. Pair p covers bits
    // {2p, 2p+1}; aggregating pairs q..=p is the span [2p+1 : 2q].
    let pairs = n / 2;
    let mut dist = 1usize;
    while dist < pairs {
        for p in 0..pairs {
            let q = p.saturating_sub(2 * dist - 1);
            let i = 2 * p + 1;
            let j = if q == 0 { 0 } else { 2 * q };
            if i < n && j < i && j > 0 {
                let _ = g.set(i, j, true);
            }
        }
        dist *= 2;
    }
    // Even rows combine via their mandatory (i, 0) cells.
    g.legalize();
    g
}

/// Ladner-Fischer (here: the sparsity-2 variant with a Sklansky core over
/// odd bits) — lower fanout than Sklansky, less wiring than Han-Carlson.
pub fn ladner_fischer(n: usize) -> PrefixGrid {
    let mut g = PrefixGrid::ripple(n);
    for i in (1..n).step_by(2) {
        if i - 1 > 0 {
            let _ = g.set(i, i - 1, true);
        }
    }
    // Sklansky in pair space.
    let pairs = n.div_ceil(2);
    let mut block = 2usize;
    while block <= pairs.next_power_of_two() {
        let half = block / 2;
        let mut b = 0;
        while b < pairs {
            for p in (b + half)..(b + block).min(pairs) {
                let i = 2 * p + 1;
                let j = if b == 0 { 0 } else { 2 * b };
                if i < n && j > 0 && j < i {
                    let _ = g.set(i, j, true);
                }
            }
            b += block;
        }
        block *= 2;
    }
    g.legalize();
    g
}

/// The set of named classical designs, used as the "human designs"
/// population in the Fig. 6 comparison.
pub fn all_classical(n: usize) -> Vec<(&'static str, PrefixGrid)> {
    vec![
        ("ripple", ripple(n)),
        ("sklansky", sklansky(n)),
        ("kogge-stone", kogge_stone(n)),
        ("brent-kung", brent_kung(n)),
        ("han-carlson", han_carlson(n)),
        ("ladner-fischer", ladner_fischer(n)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depths(n: usize) -> Vec<(&'static str, usize, usize)> {
        all_classical(n)
            .into_iter()
            .map(|(name, g)| {
                let graph = g.to_graph();
                (name, graph.depth(), graph.op_count())
            })
            .collect()
    }

    #[test]
    fn all_topologies_legal_across_widths() {
        for n in [2, 3, 4, 7, 8, 16, 26, 31, 32, 64, 100] {
            for (name, g) in all_classical(n) {
                assert!(g.is_legal(), "{name} at width {n} must be legal");
                assert!(g.to_graph().spans_consistent(), "{name} at width {n} spans");
            }
        }
    }

    #[test]
    fn sklansky_has_log_depth() {
        for n in [8, 16, 32, 64] {
            let d = sklansky(n).to_graph().depth();
            assert_eq!(
                d,
                (n as f64).log2().ceil() as usize,
                "sklansky depth at {n}"
            );
        }
    }

    #[test]
    fn kogge_stone_has_log_depth_and_max_area() {
        for n in [8, 16, 32] {
            let ks = kogge_stone(n).to_graph();
            assert_eq!(ks.depth(), (n as f64).log2().ceil() as usize);
            // KS has more operators than any other classical design here.
            for (name, g) in all_classical(n) {
                if name != "kogge-stone" {
                    assert!(
                        g.to_graph().op_count() <= ks.op_count(),
                        "{name} should not exceed kogge-stone ops at {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn kogge_stone_fanout_is_bounded() {
        // KS's defining property is bounded fanout; in this grid
        // convention the saturated column-0 region adds a couple of extra
        // consumers, but fanout stays small and far below Sklansky's.
        let ks = kogge_stone(32).to_graph();
        assert!(ks.max_fanout() <= 6, "KS fanout {}", ks.max_fanout());
        let sk = sklansky(32).to_graph();
        assert!(
            sk.max_fanout() > ks.max_fanout(),
            "sklansky fans out more than KS"
        );
    }

    #[test]
    fn brent_kung_depth_near_2log() {
        for n in [8, 16, 32, 64] {
            let d = brent_kung(n).to_graph().depth();
            let log = (n as f64).log2().ceil() as usize;
            assert!(d >= log && d <= 2 * log, "bk depth {d} at width {n}");
        }
    }

    #[test]
    fn ripple_extremes() {
        let r = ripple(16).to_graph();
        assert_eq!(r.depth(), 15);
        assert_eq!(r.op_count(), 15);
    }

    #[test]
    fn area_depth_tradeoff_visible() {
        // The classical family must exhibit the area/delay trade-off the
        // paper's search exploits: ripple = min ops & max depth,
        // kogge-stone = max ops & min depth.
        let d = depths(32);
        let ripple = d.iter().find(|x| x.0 == "ripple").unwrap();
        let ks = d.iter().find(|x| x.0 == "kogge-stone").unwrap();
        assert!(ripple.1 > ks.1);
        assert!(ripple.2 < ks.2);
    }

    #[test]
    fn odd_widths_work() {
        for n in [5, 9, 21, 31] {
            for (name, g) in all_classical(n) {
                let graph = g.to_graph();
                assert!(graph.depth() < n, "{name} at odd width {n}");
            }
        }
    }
}
