//! The audited durable write path.
//!
//! Every persistent artifact of a campaign — checkpoints, results,
//! JSONL telemetry, journal segments, summary CSVs — flows through the
//! primitives here, which enforce the durability contract (Contract 10,
//! DESIGN.md §9):
//!
//! * **Unique tmp names.** [`write_atomic`] stages into
//!   `.<name>.<pid>.<seq>.tmp` — two writers aiming at the same
//!   destination can never clobber each other's staging file, and a
//!   crash-orphaned tmp is recognizable (and swept by [`sweep_tmp`])
//!   without ever matching a real artifact's name.
//! * **fsync before publish.** The staged file is `sync_all`ed before
//!   the rename, and the parent directory is synced after it, so a
//!   crash can never durably publish an empty or torn file: the
//!   destination either keeps its old content or has the complete new
//!   content.
//! * **Fault observability.** Every step announces itself to
//!   [`crate::failpoint`], which is how the deterministic crash tests
//!   tear writes at byte boundaries and kill runs between steps.

use crate::failpoint::{self, FailOp, Verdict};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The suffix every staging file carries (see [`sweep_tmp`]).
const TMP_SUFFIX: &str = ".tmp";

/// A process-unique staging path next to `path`: hidden, suffixed
/// `.tmp`, and disambiguated by pid + a global sequence number.
fn unique_tmp(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{name}.{}.{seq}{TMP_SUFFIX}", std::process::id()))
}

/// Creates (truncating) `path` through the failpoint harness.
pub(crate) fn create(path: &Path) -> io::Result<File> {
    match failpoint::begin_op(FailOp::Create, 0) {
        Verdict::Proceed => File::create(path),
        _ => Err(failpoint::enforce_crash(FailOp::Create)),
    }
}

/// Writes `bytes` to `file` through the failpoint harness; a torn
/// verdict lands exactly the surviving prefix before the crash.
pub(crate) fn write_all(file: &mut File, bytes: &[u8]) -> io::Result<()> {
    match failpoint::begin_op(FailOp::Write, bytes.len()) {
        Verdict::Proceed => file.write_all(bytes),
        Verdict::Torn(k) => {
            let k = k.min(bytes.len());
            let _ = file.write_all(&bytes[..k]);
            let _ = file.sync_all(); // the torn prefix is what survives
            Err(failpoint::enforce_crash(FailOp::Write))
        }
        Verdict::Crash => Err(failpoint::enforce_crash(FailOp::Write)),
    }
}

/// `sync_all`s `file` through the failpoint harness.
pub(crate) fn sync(file: &File) -> io::Result<()> {
    match failpoint::begin_op(FailOp::Fsync, 0) {
        Verdict::Proceed => file.sync_all(),
        _ => Err(failpoint::enforce_crash(FailOp::Fsync)),
    }
}

/// Renames `from` → `to` through the failpoint harness.
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match failpoint::begin_op(FailOp::Rename, 0) {
        Verdict::Proceed => std::fs::rename(from, to),
        _ => Err(failpoint::enforce_crash(FailOp::Rename)),
    }
}

/// Best-effort fsync of `path`'s parent directory (making a completed
/// rename durable). Platforms where directories cannot be opened tick
/// the failpoint but skip the sync.
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if failpoint::begin_op(FailOp::DirSync, 0) != Verdict::Proceed {
        return Err(failpoint::enforce_crash(FailOp::DirSync));
    }
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Truncates `file` to `len` through the failpoint harness (recovery's
/// torn-tail cut).
pub(crate) fn truncate(file: &File, len: u64) -> io::Result<()> {
    match failpoint::begin_op(FailOp::Truncate, 0) {
        Verdict::Proceed => file.set_len(len),
        _ => Err(failpoint::enforce_crash(FailOp::Truncate)),
    }
}

/// Atomically and durably replaces `path` with `bytes`.
///
/// The audited sequence: stage into a unique tmp name, write, fsync the
/// staged file, rename over the destination, fsync the parent
/// directory. A crash at any step leaves either the old content or the
/// complete new content at `path` — never a torn or empty file — plus
/// at most one orphaned `.tmp` staging file (swept by [`sweep_tmp`]).
///
/// # Errors
///
/// Any underlying I/O failure, or an injected crash when a failpoint is
/// armed in [`crate::failpoint::Mode::Error`].
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = unique_tmp(path);
    let result = (|| {
        let mut f = create(&tmp)?;
        write_all(&mut f, bytes)?;
        sync(&f)?;
        drop(f);
        rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if result.is_err() {
        // Leave crash-injected state untouched — the orphaned tmp *is*
        // the state a kill leaves behind, and recovery must sweep it.
        if !failpoint::crashed() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
    result
}

/// Removes orphaned staging files (`.<name>.<pid>.<seq>.tmp`) from
/// `dir`. Recovery runs this before trusting directory contents; it is
/// what keeps a crash-then-resume directory byte-identical to a clean
/// run's.
///
/// # Errors
///
/// Propagates directory-read failures; a missing `dir` is fine.
pub fn sweep_tmp(dir: &Path) -> io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') && name.ends_with(TMP_SUFFIX) {
            std::fs::remove_file(entry.path())?;
            swept += 1;
        }
    }
    Ok(swept)
}
