//! Crash-safe durability substrate for long-running campaigns.
//!
//! This crate is the load-bearing layer under the campaign orchestrator
//! (and the future `campaignd` service, ROADMAP item 3): everything a
//! campaign persists flows through an **audited write path** ([`fs`]),
//! and every task's life is recorded in an **append-only, checksummed
//! event journal** ([`Journal`]) whose replay reconstructs the exact
//! state the orchestrator held at the last durable record. A
//! deterministic **fault-injection harness** ([`failpoint`]) can kill
//! the run at any byte of any write — the crash-recovery proptests and
//! the CI `crash-smoke` job drive it to prove that every injected crash
//! point resumes to outputs byte-identical to an uninterrupted run
//! (Contract 10, DESIGN.md §9).
//!
//! ## Journal format
//!
//! A journal segment is a single file:
//!
//! ```text
//! [8-byte magic "CVJL0001"]
//! [u32 len | u32 crc32(payload) | payload]   — record 0
//! [u32 len | u32 crc32(payload) | payload]   — record 1
//! ...
//! ```
//!
//! Appends write one frame and `fsync`. On open, the segment is scanned
//! front to back; the first frame that is incomplete or fails its CRC
//! marks the **torn tail**, which is truncated away — everything before
//! it is the durable prefix, everything after it never happened.
//! [`Journal::rotate`] atomically replaces the segment (staged tmp +
//! fsync + rename + directory sync) with a compacted set of records, so
//! a journal never grows without bound and rotation can never lose the
//! previous durable state to a crash.
//!
//! Payloads are opaque bytes: the campaign layer encodes its own events
//! (task started / simulated-N / checkpointed / completed) through the
//! `cv_synth::ckpt` codec and replays them into orchestrator state.

#![deny(missing_docs)]

pub mod failpoint;
pub mod fs;

use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal segment.
pub const JOURNAL_MAGIC: &[u8; 8] = b"CVJL0001";

/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_OVERHEAD: usize = 8;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, dependency-free.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// The CRC-32 (IEEE) checksum of `bytes` — the per-record integrity
/// check that makes torn journal tails detectable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

/// An open append-only journal segment (see the crate docs for the
/// format and recovery discipline).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    len: u64,
}

/// The outcome of opening a journal: the handle plus the decoded
/// durable records and what recovery had to do to get them.
#[derive(Debug)]
pub struct Opened {
    /// The journal, positioned for appends.
    pub journal: Journal,
    /// Every durable record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail (or mid-file corruption) truncated away; `0`
    /// for a clean segment.
    pub truncated_bytes: u64,
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&crc32(payload).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

impl Journal {
    fn append_handle(path: &Path) -> io::Result<File> {
        OpenOptions::new().read(true).append(true).open(path)
    }

    /// Opens (or creates) the journal at `path`, scanning the segment
    /// and truncating any torn tail so the returned records are exactly
    /// the durable prefix.
    ///
    /// A file that does not even carry the journal magic (pre-journal
    /// garbage or a torn segment rotation on a filesystem without
    /// atomic rename) is reset to an empty segment — recovery never
    /// panics on corrupt input; callers fall back to their checkpoint.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures and injected crashes only; corruption is
    /// recovered, not reported.
    pub fn open(path: &Path) -> io::Result<Opened> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Fresh segment: magic, durably published.
                let mut f = fs::create(path)?;
                fs::write_all(&mut f, JOURNAL_MAGIC)?;
                fs::sync(&f)?;
                drop(f);
                fs::sync_parent_dir(path)?;
                return Ok(Opened {
                    journal: Journal {
                        file: Self::append_handle(path)?,
                        path: path.to_path_buf(),
                        len: JOURNAL_MAGIC.len() as u64,
                    },
                    records: Vec::new(),
                    truncated_bytes: 0,
                });
            }
            Err(e) => return Err(e),
        };

        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            // Not a journal segment at all: reset to empty rather than
            // trusting (or panicking on) foreign bytes.
            fs::write_atomic(path, JOURNAL_MAGIC)?;
            return Ok(Opened {
                journal: Journal {
                    file: Self::append_handle(path)?,
                    path: path.to_path_buf(),
                    len: JOURNAL_MAGIC.len() as u64,
                },
                records: Vec::new(),
                truncated_bytes: bytes.len() as u64,
            });
        }

        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        loop {
            let rest = bytes.len() - pos;
            if rest == 0 {
                break;
            }
            if rest < FRAME_OVERHEAD {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
            if rest - FRAME_OVERHEAD < len {
                break; // torn payload
            }
            let payload = &bytes[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
            if crc32(payload) != crc {
                break; // corrupt record: distrust it and everything after
            }
            records.push(payload.to_vec());
            pos += FRAME_OVERHEAD + len;
        }

        let truncated_bytes = (bytes.len() - pos) as u64;
        let file = Self::append_handle(path)?;
        if truncated_bytes > 0 {
            fs::truncate(&file, pos as u64)?;
            fs::sync(&file)?;
        }
        Ok(Opened {
            journal: Journal {
                file,
                path: path.to_path_buf(),
                len: pos as u64,
            },
            records,
            truncated_bytes,
        })
    }

    /// Appends one record and makes it durable (single write + fsync).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures and injected crashes; on error the
    /// on-disk tail may be torn, which the next [`Journal::open`]
    /// truncates away.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_all(&[payload])
    }

    /// Appends several records as one durable write + fsync batch.
    ///
    /// # Errors
    ///
    /// As [`Journal::append`].
    pub fn append_all(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        let mut bytes = Vec::new();
        for p in payloads {
            bytes.extend_from_slice(&frame(p));
        }
        fs::write_all(&mut self.file, &bytes)?;
        fs::sync(&self.file)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Atomically replaces the whole segment with `payloads` (staged
    /// tmp + fsync + rename + directory sync) — compaction for a
    /// journal that would otherwise grow without bound. A crash leaves
    /// either the old segment or the complete new one.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures and injected crashes.
    pub fn rotate(self, payloads: &[&[u8]]) -> io::Result<Journal> {
        let mut bytes = Vec::from(JOURNAL_MAGIC.as_slice());
        for p in payloads {
            bytes.extend_from_slice(&frame(p));
        }
        let path = self.path.clone();
        drop(self); // release the handle before replacing the file
        fs::write_atomic(&path, &bytes)?;
        Ok(Journal {
            file: Self::append_handle(&path)?,
            len: bytes.len() as u64,
            path,
        })
    }

    /// The segment's durable length in bytes (header + intact frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= JOURNAL_MAGIC.len() as u64
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-reads and re-scans the segment from disk (test/debug aid):
    /// the records a fresh recovery would see, without touching the
    /// file.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    pub fn read_back(path: &Path) -> io::Result<Vec<Vec<u8>>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len().min(bytes.len());
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Ok(records);
        }
        while bytes.len() - pos >= FRAME_OVERHEAD {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
            if bytes.len() - pos - FRAME_OVERHEAD < len {
                break;
            }
            let payload = &bytes[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            pos += FRAME_OVERHEAD + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }
}
