//! Deterministic fault injection for the durable write path.
//!
//! Every durable primitive in [`crate::fs`] and [`crate::Journal`]
//! announces itself here before touching the filesystem. When a
//! failpoint is **armed**, the announced operations are metered and the
//! run "crashes" at a precisely reproducible point:
//!
//! * **Tick trigger** — every operation costs ticks (`Write` costs one
//!   tick *per byte*, everything else costs one tick). The crash fires
//!   when the cumulative tick budget is exhausted, which lets a test
//!   kill a run *in the middle of a write*: the write is torn at the
//!   exact surviving-byte boundary, just like a power cut between
//!   `write(2)` and `fsync(2)`.
//! * **Op trigger** — the crash fires immediately *before* the N-th
//!   occurrence of one [`FailOp`] kind, encoding the classic crash
//!   points by name: before an `Fsync` (bytes written but not durable),
//!   before a `Rename` (tmp file complete but never published), and so
//!   on.
//!
//! Three failure modes:
//!
//! * [`Mode::Abort`] — the process dies via [`std::process::abort`].
//!   This is the real-kill mode the CI `crash-smoke` job drives through
//!   the `CV_FAILPOINT` environment variable (see [`arm_from_env`]).
//! * [`Mode::Error`] — the current operation returns a crash error and
//!   **every subsequent durable operation fails too**, so an in-process
//!   test observes exactly the on-disk state a killed process would
//!   have left behind. The harness stays in this dead state until
//!   [`disarm`] is called.
//! * [`Mode::TransientError`] — a bounded IO brown-out rather than a
//!   death: once the trigger fires, the next `window` announced
//!   operations (including the firing one, which may tear a write at
//!   its byte boundary) fail with a *transient* error, then the harness
//!   disarms itself and durable writes succeed again. [`crashed`] stays
//!   `false` throughout, and the injected errors answer to
//!   [`is_transient`], not [`is_crash`] — callers are expected to
//!   degrade (park the affected work, heal torn journal tails) instead
//!   of treating the process as dead.
//!
//! The global tick counter runs even while disarmed (at negligible
//! cost), so a test can measure the tick length of a clean run with
//! [`ticks`] and then replay crashes at every interesting offset.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The kinds of durable operation the write path announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOp {
    /// Creating (or truncating) a file.
    Create,
    /// Writing payload bytes (tick cost = byte count).
    Write,
    /// `File::sync_all` on a data file.
    Fsync,
    /// Atomically renaming a tmp file over its destination.
    Rename,
    /// Syncing the parent directory after a rename.
    DirSync,
    /// Truncating a journal's torn tail during recovery.
    Truncate,
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    Ticks(u64),
    Op {
        op: FailOp,
        remaining: u64,
    },
    /// A fired [`Mode::TransientError`] window: this many more announced
    /// operations fail transiently, then the harness disarms itself.
    Window(u64),
}

/// What happens when an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Kill the process (`std::process::abort`) — a real crash.
    Abort,
    /// Fail the operation and every later one — a simulated crash.
    Error,
    /// Fail the operation and a bounded window of later ones, then
    /// recover — a simulated IO brown-out, not a death.
    TransientError,
}

#[derive(Debug)]
struct Armed {
    trigger: Trigger,
    mode: Mode,
    /// Total ops that fail once a [`Mode::TransientError`] trigger
    /// fires, counting the firing op itself. Unused in other modes.
    window: u64,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);
static CRASHED: AtomicBool = AtomicBool::new(false);
static TICKS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether the most recent fired verdict on this thread came from a
    /// transient window (each op's `begin_op`/`enforce_crash` pair runs
    /// on one thread, so this safely routes the error kind between
    /// them).
    static FIRED_TRANSIENT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The verdict for one announced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Proceed with the full operation.
    Proceed,
    /// Write only this many leading bytes, then crash (only for
    /// [`FailOp::Write`]; `0` tears the write before any byte lands).
    Torn(usize),
    /// Crash before performing the operation at all.
    Crash,
}

/// Announces a durable operation of kind `op` touching `bytes` payload
/// bytes (0 for non-write ops) and returns the injection verdict.
pub(crate) fn begin_op(op: FailOp, bytes: usize) -> Verdict {
    let cost = match op {
        FailOp::Write => (bytes as u64).max(1),
        _ => 1,
    };
    TICKS.fetch_add(cost, Ordering::Relaxed);
    FIRED_TRANSIENT.with(|f| f.set(false));
    if CRASHED.load(Ordering::SeqCst) {
        // The simulated process is already dead: nothing else lands.
        return Verdict::Crash;
    }
    let mut armed = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = armed.as_mut() else {
        return Verdict::Proceed;
    };
    if let Trigger::Window(remaining) = &mut state.trigger {
        // An open transient window: this op fails cleanly; the harness
        // disarms itself once the window is spent.
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            *armed = None;
        }
        FIRED_TRANSIENT.with(|f| f.set(true));
        return Verdict::Crash;
    }
    let verdict = match &mut state.trigger {
        Trigger::Ticks(remaining) => {
            if *remaining > cost {
                *remaining -= cost;
                Verdict::Proceed
            } else if op == FailOp::Write {
                // Tear the write at the exact byte the budget allows.
                Verdict::Torn((*remaining).saturating_sub(1) as usize)
            } else {
                Verdict::Crash
            }
        }
        Trigger::Op {
            op: target,
            remaining,
        } => {
            if op != *target {
                Verdict::Proceed
            } else if *remaining > 1 {
                *remaining -= 1;
                Verdict::Proceed
            } else {
                Verdict::Crash
            }
        }
        Trigger::Window(_) => unreachable!("handled above"),
    };
    if verdict != Verdict::Proceed {
        if state.mode == Mode::TransientError {
            // The firing op consumes the first slot of the window.
            FIRED_TRANSIENT.with(|f| f.set(true));
            if state.window <= 1 {
                *armed = None;
            } else {
                state.trigger = Trigger::Window(state.window - 1);
            }
        } else {
            CRASHED.store(true, Ordering::SeqCst);
        }
    }
    verdict
}

/// Carries out a fired crash: aborts the process in [`Mode::Abort`]
/// (after any torn bytes already landed), or reports the crash error in
/// [`Mode::Error`]. Callers invoke this *after* performing the torn
/// prefix of a write, so a real kill and a simulated one leave the same
/// bytes on disk.
pub(crate) fn enforce_crash(op: FailOp) -> std::io::Error {
    if FIRED_TRANSIENT.with(std::cell::Cell::get) {
        return transient_error();
    }
    let mode = {
        let armed = ARMED.lock().unwrap_or_else(|e| e.into_inner());
        armed.as_ref().map_or(Mode::Error, |a| a.mode)
    };
    if mode == Mode::Abort {
        eprintln!("cv-journal failpoint: injected crash at {op:?} — aborting");
        std::process::abort();
    }
    crash_error()
}

fn arm(trigger: Trigger, mode: Mode, window: u64) {
    let mut armed = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    CRASHED.store(false, Ordering::SeqCst);
    *armed = Some(Armed {
        trigger,
        mode,
        window,
    });
}

/// Arms a tick-budget failpoint: the run crashes once `ticks` durable
/// ticks have been spent (writes cost one tick per byte).
pub fn arm_ticks(ticks: u64, mode: Mode) {
    arm(Trigger::Ticks(ticks.max(1)), mode, 1);
}

/// Arms an operation failpoint: the run crashes immediately before the
/// `nth` (1-based) occurrence of `op`.
pub fn arm_op(op: FailOp, nth: u64, mode: Mode) {
    arm(
        Trigger::Op {
            op,
            remaining: nth.max(1),
        },
        mode,
        1,
    );
}

/// Arms a transient IO brown-out: once `ticks` durable ticks have been
/// spent, the next `window` announced operations (including the firing
/// one) fail with a transient error — see [`is_transient`] — then the
/// harness disarms itself and durable writes succeed again. [`crashed`]
/// never becomes `true` on this path.
pub fn arm_transient_ticks(ticks: u64, window: u64) {
    arm(
        Trigger::Ticks(ticks.max(1)),
        Mode::TransientError,
        window.max(1),
    );
}

/// Disarms the harness and clears the crashed state.
pub fn disarm() {
    let mut armed = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    *armed = None;
    CRASHED.store(false, Ordering::SeqCst);
}

/// Whether an armed [`Mode::Abort`]/[`Mode::Error`] failpoint has fired
/// since the last [`disarm`] (transient windows never set this — the
/// simulated process survives them).
pub fn crashed() -> bool {
    CRASHED.load(Ordering::SeqCst)
}

/// Cumulative durable ticks spent by this process (counted even while
/// disarmed) — the yardstick tests use to enumerate crash points.
pub fn ticks() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Arms the real-kill mode from the `CV_FAILPOINT` environment variable
/// (a tick budget), as the `campaign` binary does on startup for the CI
/// `crash-smoke` job. Returns `true` when a failpoint was armed.
///
/// # Panics
///
/// Panics when `CV_FAILPOINT` is set but not a positive integer — a
/// misconfigured harness must fail loudly, not run clean.
pub fn arm_from_env() -> bool {
    match std::env::var("CV_FAILPOINT") {
        Ok(v) => {
            let ticks: u64 = v
                .parse()
                .unwrap_or_else(|_| panic!("CV_FAILPOINT must be a positive integer, got `{v}`"));
            assert!(ticks > 0, "CV_FAILPOINT must be positive");
            arm_ticks(ticks, Mode::Abort);
            true
        }
        Err(_) => false,
    }
}

/// Arms a transient IO brown-out from the `CV_TRANSIENT_IO` environment
/// variable (`<ticks>:<window>`), as the `campaignd` binary does on
/// startup for the CI `chaos-smoke` job. Returns `true` when a
/// failpoint was armed.
///
/// # Panics
///
/// Panics when `CV_TRANSIENT_IO` is set but not `<ticks>:<window>` with
/// two positive integers — a misconfigured harness must fail loudly,
/// not run clean.
pub fn arm_transient_from_env() -> bool {
    match std::env::var("CV_TRANSIENT_IO") {
        Ok(v) => {
            let parsed = v
                .split_once(':')
                .and_then(|(t, w)| Some((t.parse::<u64>().ok()?, w.parse::<u64>().ok()?)));
            let Some((ticks, window)) = parsed else {
                panic!("CV_TRANSIENT_IO must be `<ticks>:<window>`, got `{v}`");
            };
            assert!(
                ticks > 0 && window > 0,
                "CV_TRANSIENT_IO ticks and window must be positive"
            );
            arm_transient_ticks(ticks, window);
            true
        }
        Err(_) => false,
    }
}

/// The error payload carried by crash-injected [`std::io::Error`]s.
pub(crate) const CRASH_MSG: &str = "cv-journal failpoint: injected crash";

/// The error payload carried by transient-injected [`std::io::Error`]s.
pub(crate) const TRANSIENT_MSG: &str = "cv-journal failpoint: injected transient IO error";

/// The `io::Error` a torn/crashed operation reports in [`Mode::Error`].
pub(crate) fn crash_error() -> std::io::Error {
    std::io::Error::other(CRASH_MSG)
}

/// The `io::Error` an operation reports inside a transient window.
pub(crate) fn transient_error() -> std::io::Error {
    std::io::Error::other(TRANSIENT_MSG)
}

/// Whether `err` is a crash injected by this harness (as opposed to a
/// genuine filesystem failure).
pub fn is_crash(err: &std::io::Error) -> bool {
    err.get_ref().is_some_and(|e| e.to_string() == CRASH_MSG)
}

/// Whether `err` was injected by a [`Mode::TransientError`] window — an
/// IO failure the caller should degrade around, not die from.
pub fn is_transient(err: &std::io::Error) -> bool {
    err.get_ref()
        .is_some_and(|e| e.to_string() == TRANSIENT_MSG)
}
